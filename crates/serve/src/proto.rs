//! Wire protocol: length-prefixed frames of length-prefixed sections.
//!
//! The daemon speaks the repo's existing *text* formats — printed IR,
//! CSV stat rows, the validator's `Display` lines — so the protocol
//! adds nothing but delimiting. A **frame** is one request or response:
//!
//! ```text
//! brs1 <kind> <payload-len>\n
//! <payload-len bytes of payload>
//! ```
//!
//! `brs1` is the protocol version tag; bumping it invalidates every
//! client at connect time instead of at parse time. The payload of a
//! structured frame is a sequence of **sections**, each length-prefixed
//! the same way:
//!
//! ```text
//! <name> <len>\n
//! <len bytes>\n
//! ```
//!
//! Length prefixes mean arbitrary bytes (training inputs, program
//! output) and multi-line text (printed IR) travel unescaped, and a
//! reader never scans for a terminator that the payload might contain.
//!
//! Request kinds: `reorder`, `measure`, `profile`, `health`, `metrics`,
//! `shutdown`, and (only when the daemon enables debug endpoints)
//! `sleep` and `panic`. Response kinds: `ok`, `error`, `overloaded`.

use std::io::{self, Read, Write};

/// Protocol version tag; the first token of every frame header.
pub const PROTOCOL: &str = "brs1";

/// Upper bound on an accepted payload, a defense against a garbage
/// header committing the daemon to a multi-gigabyte read.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// One request or response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind (request verb or response status).
    pub kind: String,
    /// Raw payload bytes; structured kinds hold [`Section`]s.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a section-structured payload.
    pub fn structured(kind: &str, sections: &[Section<'_>]) -> Frame {
        let mut payload = Vec::new();
        for s in sections {
            s.write_to(&mut payload);
        }
        Frame {
            kind: kind.to_string(),
            payload,
        }
    }

    /// A frame whose payload is one human-readable text blob (used by
    /// `error`, `overloaded`, and the health/metrics responses).
    pub fn text(kind: &str, text: &str) -> Frame {
        Frame {
            kind: kind.to_string(),
            payload: text.as_bytes().to_vec(),
        }
    }

    /// The payload as UTF-8 text (lossy; payloads we emit are UTF-8).
    pub fn payload_text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }

    /// Parse the payload as sections.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed section header.
    pub fn sections(&self) -> Result<Vec<OwnedSection>, String> {
        read_sections(&self.payload)
    }

    /// Serialize onto a writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{PROTOCOL} {} {}", self.kind, self.payload.len())?;
        w.write_all(&self.payload)?;
        w.flush()
    }

    /// Read one frame, or `Ok(None)` on a clean EOF before any header
    /// byte (the peer hung up between requests).
    ///
    /// # Errors
    ///
    /// An I/O error, a malformed header, or an oversized payload, all
    /// as `io::Error` so connection loops have a single error path.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        let Some(header) = read_line(r)? else {
            return Ok(None);
        };
        let mut parts = header.split(' ');
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad header: {header:?}"),
            )
        };
        if parts.next() != Some(PROTOCOL) {
            return Err(bad());
        }
        let kind = parts.next().ok_or_else(bad)?.to_string();
        let len: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Ok(Some(Frame { kind, payload }))
    }
}

/// A named byte run inside a structured payload (borrowed, for writing).
#[derive(Clone, Copy, Debug)]
pub struct Section<'a> {
    /// Section name (no spaces or newlines).
    pub name: &'a str,
    /// Section bytes, written verbatim.
    pub bytes: &'a [u8],
}

impl Section<'_> {
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(format!(" {}\n", self.bytes.len()).as_bytes());
        out.extend_from_slice(self.bytes);
        out.push(b'\n');
    }
}

/// A parsed section (owned, from reading).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedSection {
    /// Section name.
    pub name: String,
    /// Section bytes.
    pub bytes: Vec<u8>,
}

impl OwnedSection {
    /// The bytes as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Names the section when it is not valid UTF-8.
    pub fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes).map_err(|_| format!("section {} is not UTF-8", self.name))
    }
}

/// Find `name` among parsed sections.
pub fn section<'a>(sections: &'a [OwnedSection], name: &str) -> Result<&'a OwnedSection, String> {
    sections
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("missing section {name}"))
}

fn read_sections(mut bytes: &[u8]) -> Result<Vec<OwnedSection>, String> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("section header is not newline-terminated")?;
        let header =
            std::str::from_utf8(&bytes[..nl]).map_err(|_| "section header is not UTF-8")?;
        let (name, len) = header
            .split_once(' ')
            .ok_or_else(|| format!("bad section header: {header:?}"))?;
        let len: usize = len
            .parse()
            .map_err(|_| format!("bad section length: {header:?}"))?;
        let body = bytes
            .get(nl + 1..nl + 1 + len)
            .ok_or_else(|| format!("section {name} truncated"))?;
        if bytes.get(nl + 1 + len) != Some(&b'\n') {
            return Err(format!("section {name} missing trailing newline"));
        }
        out.push(OwnedSection {
            name: name.to_string(),
            bytes: body.to_vec(),
        });
        bytes = &bytes[nl + 2 + len..];
    }
    Ok(out)
}

/// A blocking request/response client over one TCP connection.
///
/// The protocol is strictly request–response per connection, so the
/// client is a thin wrapper: write a frame, read a frame.
pub struct Client {
    stream: std::net::TcpStream,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send `request` and wait for the response frame.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unexpected EOF in place of a response.
    pub fn call(&mut self, request: &Frame) -> io::Result<Frame> {
        request.write_to(&mut self.stream)?;
        Frame::read_from(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

/// Read one `\n`-terminated line byte-by-byte (frames are small enough
/// that header reads never dominate; payloads use `read_exact`).
/// `Ok(None)` on EOF before the first byte.
fn read_line(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) if line.is_empty() => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                if line.len() > 256 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame header exceeds 256 bytes",
                    ));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame header is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let frame = Frame::structured(
            "reorder",
            &[
                Section {
                    name: "module",
                    bytes: b"func main() {\n}\n",
                },
                Section {
                    name: "train",
                    bytes: &[0, 255, b'\n', 7],
                },
            ],
        );
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, frame);
        let sections = back.sections().unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(section(&sections, "train").unwrap().bytes, [0, 255, 10, 7]);
        assert_eq!(
            section(&sections, "module").unwrap().text().unwrap(),
            "func main() {\n}\n"
        );
        assert!(section(&sections, "absent").is_err());
    }

    #[test]
    fn empty_payload_and_eof() {
        let frame = Frame::text("health", "");
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back.kind, "health");
        assert!(back.payload.is_empty());
        // Clean EOF between frames is a None, not an error.
        assert!(Frame::read_from(&mut (&[] as &[u8])).unwrap().is_none());
    }

    #[test]
    fn malformed_headers_are_errors() {
        for wire in [
            "nope reorder 4\nabcd",
            "brs1 reorder\n",
            "brs1 reorder four\n",
            "brs1 reorder 4 junk\nabcd",
        ] {
            assert!(Frame::read_from(&mut wire.as_bytes()).is_err(), "{wire:?}");
        }
        // Truncated payload: EOF mid-read.
        assert!(Frame::read_from(&mut "brs1 ok 10\nabc".as_bytes()).is_err());
        // Oversized payload is rejected before allocation.
        let huge = format!("brs1 ok {}\n", MAX_PAYLOAD + 1);
        assert!(Frame::read_from(&mut huge.as_bytes()).is_err());
    }

    #[test]
    fn torn_sections_are_errors() {
        let mut payload = Vec::new();
        Section {
            name: "module",
            bytes: b"text",
        }
        .write_to(&mut payload);
        payload.truncate(payload.len() - 2);
        let frame = Frame {
            kind: "ok".into(),
            payload,
        };
        assert!(frame.sections().is_err());
    }
}
