//! Wire protocol: length-prefixed frames of length-prefixed sections.
//!
//! The daemon speaks the repo's existing *text* formats — printed IR,
//! CSV stat rows, the validator's `Display` lines — so the protocol
//! adds nothing but delimiting. A **frame** is one request or response:
//!
//! ```text
//! brs1 <kind> <payload-len>\n
//! <payload-len bytes of payload>
//! ```
//!
//! `brs1` is the protocol version tag; bumping it invalidates every
//! client at connect time instead of at parse time. The payload of a
//! structured frame is a sequence of **sections**, each length-prefixed
//! the same way:
//!
//! ```text
//! <name> <len>\n
//! <len bytes>\n
//! ```
//!
//! Length prefixes mean arbitrary bytes (training inputs, program
//! output) and multi-line text (printed IR) travel unescaped, and a
//! reader never scans for a terminator that the payload might contain.
//!
//! Request kinds: `reorder`, `measure`, `profile`, `health`, `metrics`,
//! `shutdown`, and (only when the daemon enables debug endpoints)
//! `sleep` and `panic`. Response kinds: `ok`, `error`, `overloaded`.

use std::io::{self, Read, Write};

/// Protocol version tag; the first token of every frame header.
pub const PROTOCOL: &str = "brs1";

/// Upper bound on an accepted payload, a defense against a garbage
/// header committing the daemon to a multi-gigabyte read.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// One request or response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind (request verb or response status).
    pub kind: String,
    /// Raw payload bytes; structured kinds hold [`Section`]s.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a section-structured payload.
    pub fn structured(kind: &str, sections: &[Section<'_>]) -> Frame {
        let mut payload = Vec::new();
        for s in sections {
            s.write_to(&mut payload);
        }
        Frame {
            kind: kind.to_string(),
            payload,
        }
    }

    /// A frame whose payload is one human-readable text blob (used by
    /// `error`, `overloaded`, and the health/metrics responses).
    pub fn text(kind: &str, text: &str) -> Frame {
        Frame {
            kind: kind.to_string(),
            payload: text.as_bytes().to_vec(),
        }
    }

    /// The payload as UTF-8 text (lossy; payloads we emit are UTF-8).
    pub fn payload_text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }

    /// Parse the payload as sections.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed section header.
    pub fn sections(&self) -> Result<Vec<OwnedSection>, String> {
        read_sections(&self.payload)
    }

    /// Serialize onto a writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{PROTOCOL} {} {}", self.kind, self.payload.len())?;
        w.write_all(&self.payload)?;
        w.flush()
    }

    /// Read one frame, or `Ok(None)` on a clean EOF before any header
    /// byte (the peer hung up between requests).
    ///
    /// # Errors
    ///
    /// An I/O error, a malformed header, or an oversized payload, all
    /// as `io::Error` so connection loops have a single error path.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        let Some(header) = read_line(r)? else {
            return Ok(None);
        };
        let mut parts = header.split(' ');
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad header: {header:?}"),
            )
        };
        if parts.next() != Some(PROTOCOL) {
            return Err(bad());
        }
        let kind = parts.next().ok_or_else(bad)?.to_string();
        let len: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Ok(Some(Frame { kind, payload }))
    }
}

/// A named byte run inside a structured payload (borrowed, for writing).
#[derive(Clone, Copy, Debug)]
pub struct Section<'a> {
    /// Section name (no spaces or newlines).
    pub name: &'a str,
    /// Section bytes, written verbatim.
    pub bytes: &'a [u8],
}

impl Section<'_> {
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(format!(" {}\n", self.bytes.len()).as_bytes());
        out.extend_from_slice(self.bytes);
        out.push(b'\n');
    }
}

/// A parsed section (owned, from reading).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedSection {
    /// Section name.
    pub name: String,
    /// Section bytes.
    pub bytes: Vec<u8>,
}

impl OwnedSection {
    /// The bytes as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Names the section when it is not valid UTF-8.
    pub fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes).map_err(|_| format!("section {} is not UTF-8", self.name))
    }
}

/// Find `name` among parsed sections.
pub fn section<'a>(sections: &'a [OwnedSection], name: &str) -> Result<&'a OwnedSection, String> {
    sections
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("missing section {name}"))
}

fn read_sections(mut bytes: &[u8]) -> Result<Vec<OwnedSection>, String> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("section header is not newline-terminated")?;
        let header =
            std::str::from_utf8(&bytes[..nl]).map_err(|_| "section header is not UTF-8")?;
        let (name, len) = header
            .split_once(' ')
            .ok_or_else(|| format!("bad section header: {header:?}"))?;
        let len: usize = len
            .parse()
            .map_err(|_| format!("bad section length: {header:?}"))?;
        let body = bytes
            .get(nl + 1..nl + 1 + len)
            .ok_or_else(|| format!("section {name} truncated"))?;
        if bytes.get(nl + 1 + len) != Some(&b'\n') {
            return Err(format!("section {name} missing trailing newline"));
        }
        out.push(OwnedSection {
            name: name.to_string(),
            bytes: body.to_vec(),
        });
        bytes = &bytes[nl + 2 + len..];
    }
    Ok(out)
}

/// One frame read by a version-agnostic endpoint: either protocol, or
/// a well-formed header whose payload was too large to accept.
///
/// The oversized variants exist so a server can *answer* an oversized
/// frame instead of tearing the connection down: the header was valid,
/// the declared payload has been read and discarded, and the stream is
/// positioned exactly at the next frame.
pub enum AnyFrame {
    /// A `brs1` text frame.
    V1(Frame),
    /// A `brs2` binary frame.
    V2(crate::proto2::Frame2),
    /// A valid `brs1` header declaring more than [`MAX_PAYLOAD`] bytes;
    /// the payload was drained and the connection is still in sync.
    OversizedV1 {
        /// The declared frame kind.
        kind: String,
        /// The declared payload length.
        len: u64,
    },
    /// A valid `brs2` header declaring more than [`MAX_PAYLOAD`] bytes;
    /// the payload was drained and the connection is still in sync.
    OversizedV2 {
        /// The declared opcode.
        kind: u8,
        /// The declared payload length.
        len: u64,
    },
}

/// Ceiling on how much oversized payload a server will read-and-discard
/// to keep a connection usable. A frame declaring more than this is
/// hostile or corrupt; the reader errors and the caller hangs up.
pub const DRAIN_LIMIT: u64 = 4 * MAX_PAYLOAD as u64;

/// Read one frame of *either* protocol version, or `Ok(None)` on a
/// clean EOF before any header byte. The 4-byte frame prefix
/// disambiguates: `brs1` headers begin `brs1 ` (text), `brs2` frames
/// begin with the binary magic `brs2`.
///
/// Oversized payloads under valid headers are drained (up to
/// [`DRAIN_LIMIT`]) and reported as [`AnyFrame::OversizedV1`] /
/// [`AnyFrame::OversizedV2`] so the caller can answer with an error
/// frame and keep the connection; everything else that is malformed is
/// an `InvalidData` error, after which the stream position is
/// unknowable and the caller must hang up.
///
/// # Errors
///
/// I/O failure, a malformed header, or an undrainable oversized frame.
pub fn read_any(r: &mut impl Read) -> io::Result<Option<AnyFrame>> {
    use crate::proto2;
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < magic.len() {
        match r.read(&mut magic[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if &magic == proto2::MAGIC2 {
        let (kind, flags, code, aux, len) = proto2::read_header_after_magic(r)?;
        if len > MAX_PAYLOAD as u64 {
            drain_exact(r, len)?;
            return Ok(Some(AnyFrame::OversizedV2 { kind, len }));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        return Ok(Some(AnyFrame::V2(proto2::Frame2 {
            kind,
            flags,
            code,
            aux,
            payload,
        })));
    }
    if &magic != b"brs1" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unrecognized frame prefix {magic:?} (not brs1 or brs2)"),
        ));
    }
    // brs1: the rest of the text header line is `<space><kind> <len>\n`.
    let rest = read_line(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside frame header"))?;
    let bad = || {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad header: {:?}", format!("brs1{rest}")),
        )
    };
    let rest = rest.strip_prefix(' ').ok_or_else(bad)?;
    let (kind, len) = rest.split_once(' ').ok_or_else(bad)?;
    if kind.is_empty() || kind.contains(' ') {
        return Err(bad());
    }
    let len: u64 = len.parse().map_err(|_| bad())?;
    if len > MAX_PAYLOAD as u64 {
        drain_exact(r, len)?;
        return Ok(Some(AnyFrame::OversizedV1 {
            kind: kind.to_string(),
            len,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(AnyFrame::V1(Frame {
        kind: kind.to_string(),
        payload,
    })))
}

/// Read and discard exactly `n` payload bytes (bounded by
/// [`DRAIN_LIMIT`]) so the stream stays frame-aligned.
fn drain_exact(r: &mut impl Read, n: u64) -> io::Result<()> {
    if n > DRAIN_LIMIT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oversized payload of {n} bytes exceeds the {DRAIN_LIMIT}-byte drain limit"),
        ));
    }
    let mut remaining = n;
    let mut buf = [0u8; 16 * 1024];
    while remaining > 0 {
        let take = buf.len().min(remaining as usize);
        match r.read(&mut buf[..take]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF while draining oversized payload",
                ))
            }
            Ok(got) => remaining -= got as u64,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A blocking request/response client over one TCP connection.
///
/// The protocol is strictly request–response per connection, so the
/// client is a thin wrapper: write a frame, read a frame.
pub struct Client {
    stream: std::net::TcpStream,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send `request` and wait for the response frame.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unexpected EOF in place of a response.
    pub fn call(&mut self, request: &Frame) -> io::Result<Frame> {
        request.write_to(&mut self.stream)?;
        Frame::read_from(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

/// Read one `\n`-terminated line byte-by-byte (frames are small enough
/// that header reads never dominate; payloads use `read_exact`).
/// `Ok(None)` on EOF before the first byte.
fn read_line(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) if line.is_empty() => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                if line.len() > 256 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame header exceeds 256 bytes",
                    ));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame header is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let frame = Frame::structured(
            "reorder",
            &[
                Section {
                    name: "module",
                    bytes: b"func main() {\n}\n",
                },
                Section {
                    name: "train",
                    bytes: &[0, 255, b'\n', 7],
                },
            ],
        );
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, frame);
        let sections = back.sections().unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(section(&sections, "train").unwrap().bytes, [0, 255, 10, 7]);
        assert_eq!(
            section(&sections, "module").unwrap().text().unwrap(),
            "func main() {\n}\n"
        );
        assert!(section(&sections, "absent").is_err());
    }

    #[test]
    fn empty_payload_and_eof() {
        let frame = Frame::text("health", "");
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back.kind, "health");
        assert!(back.payload.is_empty());
        // Clean EOF between frames is a None, not an error.
        assert!(Frame::read_from(&mut (&[] as &[u8])).unwrap().is_none());
    }

    #[test]
    fn malformed_headers_are_errors() {
        for wire in [
            "nope reorder 4\nabcd",
            "brs1 reorder\n",
            "brs1 reorder four\n",
            "brs1 reorder 4 junk\nabcd",
        ] {
            assert!(Frame::read_from(&mut wire.as_bytes()).is_err(), "{wire:?}");
        }
        // Truncated payload: EOF mid-read.
        assert!(Frame::read_from(&mut "brs1 ok 10\nabc".as_bytes()).is_err());
        // Oversized payload is rejected before allocation.
        let huge = format!("brs1 ok {}\n", MAX_PAYLOAD + 1);
        assert!(Frame::read_from(&mut huge.as_bytes()).is_err());
    }

    #[test]
    fn read_any_speaks_both_protocols_on_one_stream() {
        use crate::proto2::{self, Frame2};
        let mut wire = Vec::new();
        Frame::text("health", "").write_to(&mut wire).unwrap();
        Frame2::request(proto2::kind::HEALTH, &[])
            .write_to(&mut wire)
            .unwrap();
        let mut r = wire.as_slice();
        match read_any(&mut r).unwrap().unwrap() {
            AnyFrame::V1(f) => assert_eq!(f.kind, "health"),
            _ => panic!("expected a v1 frame"),
        }
        match read_any(&mut r).unwrap().unwrap() {
            AnyFrame::V2(f) => assert_eq!(f.kind, proto2::kind::HEALTH),
            _ => panic!("expected a v2 frame"),
        }
        assert!(read_any(&mut r).unwrap().is_none());
        // Unknown prefixes are InvalidData, not silence.
        assert!(read_any(&mut "brsX nope 0\n".as_bytes()).is_err());
    }

    #[test]
    fn read_any_drains_oversized_frames_and_stays_in_sync() {
        use crate::proto2::{self, Frame2};
        // A v1 frame declaring MAX_PAYLOAD+3 bytes, actually carrying
        // them, followed by a well-formed frame: the reader must report
        // the oversize and then read the next frame cleanly.
        let len = MAX_PAYLOAD + 3;
        let mut wire = format!("brs1 reorder {len}\n").into_bytes();
        wire.resize(wire.len() + len, b'x');
        Frame::text("health", "").write_to(&mut wire).unwrap();
        let mut r = wire.as_slice();
        match read_any(&mut r).unwrap().unwrap() {
            AnyFrame::OversizedV1 { kind, len: l } => {
                assert_eq!(kind, "reorder");
                assert_eq!(l, len as u64);
            }
            _ => panic!("expected oversized v1"),
        }
        assert!(matches!(
            read_any(&mut r).unwrap(),
            Some(AnyFrame::V1(f)) if f.kind == "health"
        ));

        // Same for v2.
        let mut wire = Vec::new();
        let big = Frame2::request(proto2::kind::REORDER, &[]);
        big.write_to(&mut wire).unwrap();
        wire[16..20].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        wire.resize(wire.len() + MAX_PAYLOAD + 1, b'y');
        Frame2::request(proto2::kind::HEALTH, &[])
            .write_to(&mut wire)
            .unwrap();
        let mut r = wire.as_slice();
        match read_any(&mut r).unwrap().unwrap() {
            AnyFrame::OversizedV2 { kind, len } => {
                assert_eq!(kind, proto2::kind::REORDER);
                assert_eq!(len, MAX_PAYLOAD as u64 + 1);
            }
            _ => panic!("expected oversized v2"),
        }
        assert!(matches!(
            read_any(&mut r).unwrap(),
            Some(AnyFrame::V2(f)) if f.kind == proto2::kind::HEALTH
        ));

        // Beyond the drain limit the reader refuses outright.
        let silly = format!("brs1 reorder {}\n", DRAIN_LIMIT + 1);
        assert!(read_any(&mut silly.as_bytes()).is_err());
    }

    #[test]
    fn torn_sections_are_errors() {
        let mut payload = Vec::new();
        Section {
            name: "module",
            bytes: b"text",
        }
        .write_to(&mut payload);
        payload.truncate(payload.len() - 2);
        let frame = Frame {
            kind: "ok".into(),
            payload,
        };
        assert!(frame.sections().is_err());
    }
}
