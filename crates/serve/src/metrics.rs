//! Live service metrics: lock-free counters and a fixed-bucket latency
//! histogram, rendered as plaintext for the `metrics` endpoint.
//!
//! Everything is atomics so the hot path never takes a lock; the
//! histogram uses power-of-two microsecond buckets, which keeps the
//! quantile estimate within 2x of the true value at every scale from
//! 1 µs to ~34 s — plenty for load shedding and dashboard purposes.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram buckets: upper bounds of `1 << i` microseconds, plus a
/// final catch-all. 26 buckets spans 1 µs to ~33.5 s.
pub const BUCKETS: usize = 26;

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// Record one latency observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Add `n` observations directly to bucket `i` — merging another
    /// histogram's snapshot (multi-process load generation).
    pub fn add_bucket(&self, i: usize, n: u64) {
        self.counts[i.min(BUCKETS - 1)].fetch_add(n, Ordering::Relaxed);
    }

    /// The upper bound, in microseconds, of bucket `i`.
    pub fn bucket_bound_us(i: usize) -> u64 {
        2u64 << i
    }

    /// The latency below which `q` (0..=1) of observations fall,
    /// reported as a bucket upper bound; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(Self::bucket_bound_us(i)));
            }
        }
        None
    }
}

/// Request-kind counters: one slot per compute endpoint plus a bucket
/// for everything else.
pub const KINDS: [&str; 4] = ["reorder", "measure", "profile", "other"];

/// The daemon's counter set. One instance lives for the whole process;
/// every connection and worker thread updates it concurrently.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests admitted, by kind (indexed like [`KINDS`]).
    requests: [AtomicU64; KINDS.len()],
    /// Responses served successfully.
    pub ok: AtomicU64,
    /// Error frames returned (bad input, pipeline failure, panic).
    pub errors: AtomicU64,
    /// Requests shed at admission (queue full → `overloaded` frame).
    pub shed: AtomicU64,
    /// Requests whose deadline expired while queued or in flight.
    pub expired: AtomicU64,
    /// Response-cache hits.
    pub cache_hits: AtomicU64,
    /// Response-cache misses.
    pub cache_misses: AtomicU64,
    /// Requests that arrived as `brs2` binary frames.
    pub v2_requests: AtomicU64,
    /// Individual requests carried inside `brs2` batch frames.
    pub batch_items: AtomicU64,
    /// `need-module` responses (a content hash the shard had not
    /// interned; the client re-uploads the body).
    pub need_module: AtomicU64,
    /// Oversized frames answered with an error and drained.
    pub oversized: AtomicU64,
    /// Frames in a protocol version this endpoint does not accept.
    pub mismatch: AtomicU64,
    /// Cache entries installed by `cacheput` (cluster replication).
    pub replicated: AtomicU64,
    /// End-to-end latency of completed requests (admission to response
    /// ready, shed requests excluded).
    pub latency: Histogram,
}

impl Metrics {
    /// Count one admitted request of `kind`.
    pub fn count_request(&self, kind: &str) {
        let i = KINDS
            .iter()
            .position(|k| *k == kind)
            .unwrap_or(KINDS.len() - 1);
        self.requests[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Total admitted requests across all kinds.
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Render the whole counter set as plaintext, one metric per line
    /// (Prometheus exposition style, minus the type annotations).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, kind) in KINDS.iter().enumerate() {
            let _ = writeln!(
                out,
                "br_serve_requests_total{{kind=\"{kind}\"}} {}",
                self.requests[i].load(Ordering::Relaxed)
            );
        }
        for (name, value) in [
            ("ok", &self.ok),
            ("error", &self.errors),
            ("shed", &self.shed),
            ("deadline_expired", &self.expired),
            ("cache_hits", &self.cache_hits),
            ("cache_misses", &self.cache_misses),
            ("v2_requests", &self.v2_requests),
            ("batch_items", &self.batch_items),
            ("need_module", &self.need_module),
            ("oversized", &self.oversized),
            ("mismatch", &self.mismatch),
            ("replicated", &self.replicated),
        ] {
            let _ = writeln!(
                out,
                "br_serve_{name}_total {}",
                value.load(Ordering::Relaxed)
            );
        }
        let counts = self.latency.snapshot();
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if *c > 0 {
                let _ = writeln!(
                    out,
                    "br_serve_latency_us_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::bucket_bound_us(i)
                );
            }
        }
        for (label, q) in [("p50", 0.50), ("p99", 0.99)] {
            let _ = writeln!(
                out,
                "br_serve_latency_us_{label} {}",
                self.latency.quantile(q).map_or(0, |d| d.as_micros() as u64)
            );
        }
        out
    }

    /// Parse a counter back out of [`Metrics::render`] output — the
    /// client half of the metrics contract, used by the load generator
    /// to report server-side cache behaviour.
    pub fn parse_counter(rendered: &str, name: &str) -> Option<u64> {
        let prefix = format!("br_serve_{name}_total ");
        rendered
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .and_then(|v| v.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        for us in [1u64, 3, 100, 100, 100, 100, 100, 100, 100, 5_000] {
            h.record(Duration::from_micros(us));
        }
        // 8 of 10 observations are <= 128 µs, so p50 lands there.
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(128)));
        // p99 of 10 observations is the max: bucket bound 8192 µs.
        assert_eq!(h.quantile(0.99), Some(Duration::from_micros(8192)));
        // Sub-microsecond and multi-minute observations both land in
        // real buckets instead of panicking.
        h.record(Duration::from_nanos(10));
        h.record(Duration::from_secs(120));
        assert_eq!(h.snapshot().iter().sum::<u64>(), 12);
    }

    #[test]
    fn render_and_parse_roundtrip() {
        let m = Metrics::default();
        m.count_request("reorder");
        m.count_request("reorder");
        m.count_request("bogus");
        m.ok.fetch_add(2, Ordering::Relaxed);
        m.shed.fetch_add(1, Ordering::Relaxed);
        m.cache_hits.fetch_add(7, Ordering::Relaxed);
        m.latency.record(Duration::from_millis(3));
        let text = m.render();
        assert!(text.contains("br_serve_requests_total{kind=\"reorder\"} 2"));
        assert!(text.contains("br_serve_requests_total{kind=\"other\"} 1"));
        assert_eq!(Metrics::parse_counter(&text, "ok"), Some(2));
        assert_eq!(Metrics::parse_counter(&text, "shed"), Some(1));
        assert_eq!(Metrics::parse_counter(&text, "cache_hits"), Some(7));
        assert_eq!(Metrics::parse_counter(&text, "nonexistent"), None);
        assert_eq!(m.requests_total(), 3);
    }
}
