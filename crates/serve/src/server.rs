//! The daemon: TCP listener, connection threads, graceful drain.
//!
//! Architecture: one accept loop, one thread per connection, one
//! bounded worker pool for compute. Connection threads only parse and
//! write frames; everything that can take real time or panic runs in
//! the pool behind admission control ([`crate::pool`]).
//!
//! `health`, `metrics`, and `shutdown` bypass the pool on purpose: an
//! overloaded daemon must still answer its health check (reporting
//! *overloaded* via the shed counter, not by timing out), and a drain
//! request must not sit in the very queue it is trying to empty.
//!
//! **Shutdown** is triggered by a `shutdown` frame or by SIGTERM/SIGINT
//! (a minimal pure-std handler — the flag is the only thing the signal
//! context touches). Both paths drain identically: stop accepting,
//! finish queued work, answer in-flight requests, join every thread.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::endpoints::{Endpoints, Response};
use crate::metrics::Metrics;
use crate::pool::{Job, Pool};
use crate::proto::{self, AnyFrame, Frame, MAX_PAYLOAD};
use crate::proto2::{self, BatchReply, Frame2};

/// Which protocol versions a listener accepts. A frame in a disallowed
/// version is answered *in the sender's protocol* with an error naming
/// both versions, and the connection stays usable — a mismatched client
/// gets a diagnosis, not a hangup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMode {
    /// Accept both `brs1` and `brs2` (the default for shards).
    Both,
    /// Accept only the `brs1` text protocol.
    V1Only,
    /// Accept only the `brs2` binary protocol (cluster routers).
    V2Only,
}

/// Daemon configuration (`brc serve` flags map here 1:1).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7411`; port 0 picks a free port
    /// (the bound address is reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads; 0 picks the machine's available parallelism.
    pub threads: usize,
    /// Admission-queue depth; requests beyond it are shed.
    pub queue: usize,
    /// Per-request deadline in milliseconds; 0 disables deadlines.
    pub deadline_ms: u64,
    /// Response-cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Expose the `sleep`/`panic` fault-injection endpoints.
    pub debug_endpoints: bool,
    /// Protocol versions this listener accepts.
    pub protocols: ProtocolMode,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            threads: 0,
            queue: 128,
            deadline_ms: 10_000,
            cache_dir: Some(PathBuf::from("target/serve-cache")),
            debug_endpoints: false,
            protocols: ProtocolMode::Both,
        }
    }
}

/// Process-wide termination flag, set by the signal handler. Shared by
/// every server in the process (in practice there is one).
static TERMINATED: AtomicBool = AtomicBool::new(false);

/// Has the process received SIGTERM/SIGINT? Exposed so embedders (the
/// cluster supervisor, long-running CLIs) can share the daemon's
/// signal handling instead of installing their own.
pub fn terminated() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}

/// Install the pure-std SIGTERM/SIGINT handler (idempotent). Normally
/// called by [`Server::start`]; exposed for processes that want signal
/// observability before (or without) starting a server.
#[cfg(unix)]
pub fn install_signal_handler() {
    // Pure-std SIGTERM/SIGINT: declare libc's `signal` ourselves (the
    // symbol is always linked) and do nothing in the handler beyond an
    // atomic store, the canonical async-signal-safe operation.
    extern "C" fn on_signal(_: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Install the pure-std SIGTERM/SIGINT handler (no-op off unix).
#[cfg(not(unix))]
pub fn install_signal_handler() {}

/// A running daemon. Obtained from [`Server::start`]; lives until
/// [`Server::wait`] observes a shutdown trigger and finishes draining.
pub struct Server {
    addr: SocketAddr,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    pool: Option<Pool>,
    metrics: Arc<Metrics>,
    config: ServeConfig,
}

impl Server {
    /// Bind the listener and start the worker pool. The daemon is
    /// serving when this returns; call [`Server::wait`] to block until
    /// shutdown completes.
    ///
    /// # Errors
    ///
    /// Binding the address or creating the cache directory can fail.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        install_signal_handler();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(Metrics::default());
        let mut endpoints = Endpoints::new(config.cache_dir.as_deref(), Arc::clone(&metrics))?;
        endpoints.debug_endpoints = config.debug_endpoints;
        let endpoints = Arc::new(endpoints);
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let handler: Arc<dyn Fn(&Frame) -> Response + Send + Sync> =
            Arc::new(move |request| endpoints.handle(request));
        let pool = Pool::start(threads, config.queue, Arc::clone(&metrics), handler);
        Ok(Server {
            addr,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
            pool: Some(pool),
            metrics,
            config,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that makes [`Server::wait`] begin draining, for tests
    /// and embedders; network clients use the `shutdown` frame.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until a `shutdown` frame or signal arrives, then drain:
    /// connection threads finish their in-flight request, queued jobs
    /// complete, workers join.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors; per-connection errors are contained
    /// in their connection thread.
    pub fn wait(mut self) -> io::Result<()> {
        let mut connections = Vec::new();
        let pool = self.pool.take().expect("pool present until wait");
        let pool = Arc::new(pool);
        loop {
            if self.shutdown.load(Ordering::SeqCst) || TERMINATED.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let pool = Arc::clone(&pool);
                    let metrics = Arc::clone(&self.metrics);
                    let shutdown = Arc::clone(&self.shutdown);
                    let deadline_ms = self.config.deadline_ms;
                    let protocols = self.config.protocols;
                    connections.push(std::thread::spawn(move || {
                        serve_connection(
                            stream,
                            &pool,
                            &metrics,
                            &shutdown,
                            deadline_ms,
                            protocols,
                        );
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    // Opportunistically reap finished connection threads
                    // so a long-lived daemon does not accumulate handles.
                    connections.retain(|c| !c.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: connection threads observe the flag via their read
        // timeout and exit after answering what they already read.
        self.shutdown.store(true, Ordering::SeqCst);
        for c in connections {
            let _ = c.join();
        }
        pool.drain();
        Ok(())
    }
}

/// A [`std::io::Read`] wrapper that separates *idle at a frame boundary* from
/// *stalled mid-frame*. At a boundary (no byte of the next frame seen
/// yet) a read timeout surfaces as `WouldBlock` so the caller can poll
/// the shutdown flag. Once a frame has started, timeouts are retried —
/// a slow sender must not desynchronize the stream — up to a bound, so
/// a wedged client cannot hold a drain hostage forever.
///
/// Public so the cluster router's connection loop (same read
/// discipline, different dispatch) can reuse it.
pub struct FrameReader<R: io::Read> {
    inner: R,
    mid_frame: bool,
}

impl<R: io::Read> FrameReader<R> {
    /// Wrap a stream whose read timeout doubles as the drain poll tick.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            mid_frame: false,
        }
    }

    /// Mark the frame boundary: the next timeout is *idle*, not a
    /// mid-frame stall. Call before each frame read.
    pub fn reset(&mut self) {
        self.mid_frame = false;
    }
}

/// Mid-frame stall bound: 50 retries x the 200 ms socket timeout = 10 s.
const MID_FRAME_RETRIES: u32 = 50;

impl<R: io::Read> io::Read for FrameReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut stalls = 0u32;
        loop {
            match self.inner.read(buf) {
                Ok(n) => {
                    if n > 0 {
                        self.mid_frame = true;
                    }
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if !self.mid_frame {
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, e));
                    }
                    stalls += 1;
                    if stalls > MID_FRAME_RETRIES {
                        // Not TimedOut/WouldBlock: the connection loop
                        // treats those as idle polls; a mid-frame stall
                        // must tear the connection down instead.
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "peer stalled mid-frame",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One connection: read frames (either protocol), dispatch, write
/// responses, until EOF, error, or drain.
fn serve_connection(
    stream: TcpStream,
    pool: &Pool,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    deadline_ms: u64,
    protocols: ProtocolMode,
) {
    // The read timeout doubles as the drain poll interval: an idle
    // connection notices shutdown within 200 ms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);
    loop {
        reader.reset();
        let any = match proto::read_any(&mut reader) {
            Ok(Some(any)) => any,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || TERMINATED.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol garbage: answer once, then hang up — the
                // stream position is unknowable after a bad header.
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = Frame::text("error", &format!("protocol error: {e}")).write_to(&mut writer);
                return;
            }
            Err(_) => return,
        };
        let keep_going = match any {
            AnyFrame::OversizedV1 { kind, len } => {
                // Satellite fix: the payload was drained, so the stream
                // is still frame-aligned — answer and keep serving.
                metrics.oversized.fetch_add(1, Ordering::Relaxed);
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                Frame::text(
                    "error",
                    &format!(
                        "oversized frame: {kind} declared {len} bytes, limit is {MAX_PAYLOAD}\n"
                    ),
                )
                .write_to(&mut writer)
                .is_ok()
            }
            AnyFrame::OversizedV2 { kind, len } => {
                metrics.oversized.fetch_add(1, Ordering::Relaxed);
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                Frame2::error(
                    proto2::code::OVERSIZED,
                    &format!("oversized frame: opcode {kind} declared {len} bytes, limit is {MAX_PAYLOAD}"),
                )
                .write_to(&mut writer)
                .is_ok()
            }
            AnyFrame::V1(request) => {
                if protocols == ProtocolMode::V2Only {
                    metrics.mismatch.fetch_add(1, Ordering::Relaxed);
                    Frame::text(
                        "error",
                        &format!(
                            "protocol mismatch: this endpoint speaks brs2 (binary), \
                             the request was brs1 {:?}; reconnect with brs2 framing\n",
                            request.kind
                        ),
                    )
                    .write_to(&mut writer)
                    .is_ok()
                } else {
                    serve_v1(request, pool, metrics, shutdown, deadline_ms, &mut writer)
                }
            }
            AnyFrame::V2(request) => {
                if protocols == ProtocolMode::V1Only {
                    metrics.mismatch.fetch_add(1, Ordering::Relaxed);
                    Frame2::error(
                        proto2::code::PROTOCOL,
                        &format!(
                            "protocol mismatch: this endpoint speaks brs1 (text), \
                             the request was brs2 opcode {}; reconnect with brs1 framing",
                            request.kind
                        ),
                    )
                    .write_to(&mut writer)
                    .is_ok()
                } else {
                    metrics.v2_requests.fetch_add(1, Ordering::Relaxed);
                    serve_v2(request, pool, metrics, shutdown, deadline_ms, &mut writer)
                }
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Dispatch one `brs1` frame. Returns `false` when the connection is
/// done (write failure, drain, or shutdown).
fn serve_v1(
    request: Frame,
    pool: &Pool,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    deadline_ms: u64,
    writer: &mut impl io::Write,
) -> bool {
    metrics.count_request(&request.kind);
    let response = match request.kind.as_str() {
        "health" => {
            let state = if shutdown.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            };
            Frame::text("ok", &format!("{state}\n"))
        }
        "metrics" => Frame::text("ok", &metrics.render()),
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            let _ = Frame::text("ok", "draining\n").write_to(writer);
            return false;
        }
        _ => {
            let (reply, result) = mpsc::channel();
            let deadline =
                (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
            let job = Job {
                request,
                accepted: Instant::now(),
                deadline,
                reply,
            };
            match pool.submit(job) {
                Ok(()) => match result.recv() {
                    Ok(response) => response.frame,
                    // Worker vanished mid-drain; the connection has
                    // nothing useful left to say.
                    Err(_) => return false,
                },
                Err(_job) => {
                    metrics.shed.fetch_add(1, Ordering::Relaxed);
                    Frame::text("overloaded", "admission queue full; retry with backoff\n")
                }
            }
        }
    };
    response.write_to(writer).is_ok()
}

/// Dispatch one `brs2` frame (possibly a batch). Returns `false` when
/// the connection is done.
fn serve_v2(
    request: Frame2,
    pool: &Pool,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    deadline_ms: u64,
    writer: &mut impl io::Write,
) -> bool {
    let response = match request.kind {
        proto2::kind::HEALTH => {
            metrics.count_request("health");
            let state = if shutdown.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            };
            Frame2::ok(0, format!("{state}\n").into_bytes())
        }
        proto2::kind::METRICS => {
            metrics.count_request("metrics");
            Frame2::ok(0, metrics.render().into_bytes())
        }
        proto2::kind::SHUTDOWN => {
            metrics.count_request("shutdown");
            shutdown.store(true, Ordering::SeqCst);
            let _ = Frame2::ok(0, b"draining\n".to_vec()).write_to(writer);
            return false;
        }
        proto2::kind::BATCH => {
            let items = match proto2::batch_items(&request.payload) {
                Ok(items) => items,
                Err(e) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return Frame2::error(proto2::code::BAD_REQUEST, &format!("bad batch: {e}"))
                        .write_to(writer)
                        .is_ok();
                }
            };
            metrics
                .batch_items
                .fetch_add(items.len() as u64, Ordering::Relaxed);
            let mut payload = Vec::new();
            for (kind, item_payload) in items {
                let reply = dispatch_v2_item(kind, item_payload, pool, metrics, deadline_ms);
                proto2::push_batch_reply(&mut payload, &reply);
            }
            Frame2 {
                kind: proto2::kind::OK,
                flags: proto2::flags::BATCH,
                code: proto2::code::OK,
                aux: 0,
                payload,
            }
        }
        kind => {
            let reply = dispatch_v2_item(kind, &request.payload, pool, metrics, deadline_ms);
            Frame2 {
                kind: reply.kind,
                flags: 0,
                code: reply.code,
                aux: reply.aux,
                payload: reply.payload,
            }
        }
    };
    response.write_to(writer).is_ok()
}

/// Run one `brs2` compute item through the pool, returning the reply in
/// batch-item shape (also used, unbatched, for single frames).
fn dispatch_v2_item(
    kind: u8,
    payload: &[u8],
    pool: &Pool,
    metrics: &Metrics,
    deadline_ms: u64,
) -> BatchReply {
    let error = |code: u16, message: String| BatchReply {
        kind: proto2::kind::ERROR,
        code,
        aux: 0,
        payload: message.into_bytes(),
    };
    let Some(kind_name) = proto2::kind_name(kind) else {
        metrics.errors.fetch_add(1, Ordering::Relaxed);
        return error(
            proto2::code::BAD_REQUEST,
            format!("unknown brs2 opcode {kind}"),
        );
    };
    if matches!(
        kind,
        proto2::kind::HEALTH | proto2::kind::METRICS | proto2::kind::SHUTDOWN
    ) {
        metrics.errors.fetch_add(1, Ordering::Relaxed);
        return error(
            proto2::code::BAD_REQUEST,
            format!("{kind_name} is not batchable; send it as its own frame"),
        );
    }
    metrics.count_request(kind_name);
    // The debug endpoints take raw text payloads, not sections.
    let request = if matches!(kind, proto2::kind::SLEEP | proto2::kind::PANIC) {
        Ok(Frame {
            kind: kind_name.to_string(),
            payload: payload.to_vec(),
        })
    } else {
        v2_payload_to_v1(kind_name, payload)
    };
    let request = match request {
        Ok(frame) => frame,
        Err(e) => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            return error(proto2::code::BAD_REQUEST, e);
        }
    };
    let (reply, result) = mpsc::channel();
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
    let job = Job {
        request,
        accepted: Instant::now(),
        deadline,
        reply,
    };
    match pool.submit(job) {
        Ok(()) => match result.recv() {
            Ok(response) => BatchReply {
                kind: if response.frame.kind == "ok" {
                    proto2::kind::OK
                } else {
                    proto2::kind::ERROR
                },
                code: response.code,
                aux: response.cache_key,
                payload: response.frame.payload,
            },
            Err(_) => error(
                proto2::code::DRAINING,
                "worker pool drained mid-request".to_string(),
            ),
        },
        Err(_job) => {
            metrics.shed.fetch_add(1, Ordering::Relaxed);
            error(
                proto2::code::SHED,
                "admission queue full; retry with backoff".to_string(),
            )
        }
    }
}

/// Translate a `brs2` binary-section payload into the equivalent `brs1`
/// frame the endpoints understand. Body sections keep their `brs1`
/// names; hash sections become `name#` pseudo-sections the endpoint
/// resolves against the intern table.
fn v2_payload_to_v1(kind_name: &str, payload: &[u8]) -> Result<Frame, String> {
    let sections = proto2::sections(payload)?;
    let mut named: Vec<(String, &[u8])> = Vec::with_capacity(sections.len());
    for (id, bytes) in sections {
        if let Some(name) = proto2::sec_name(id) {
            named.push((name.to_string(), bytes));
        } else if let Some(body) = proto2::hash_target(id) {
            let body_name = proto2::sec_name(body).expect("hash targets are body sections");
            named.push((format!("{body_name}#"), bytes));
        } else {
            return Err(format!("unknown brs2 section id {id}"));
        }
    }
    let borrowed: Vec<proto::Section<'_>> = named
        .iter()
        .map(|(name, bytes)| proto::Section { name, bytes })
        .collect();
    Ok(Frame::structured(kind_name, &borrowed))
}
