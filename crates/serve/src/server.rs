//! The daemon: TCP listener, connection threads, graceful drain.
//!
//! Architecture: one accept loop, one thread per connection, one
//! bounded worker pool for compute. Connection threads only parse and
//! write frames; everything that can take real time or panic runs in
//! the pool behind admission control ([`crate::pool`]).
//!
//! `health`, `metrics`, and `shutdown` bypass the pool on purpose: an
//! overloaded daemon must still answer its health check (reporting
//! *overloaded* via the shed counter, not by timing out), and a drain
//! request must not sit in the very queue it is trying to empty.
//!
//! **Shutdown** is triggered by a `shutdown` frame or by SIGTERM/SIGINT
//! (a minimal pure-std handler — the flag is the only thing the signal
//! context touches). Both paths drain identically: stop accepting,
//! finish queued work, answer in-flight requests, join every thread.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::endpoints::Endpoints;
use crate::metrics::Metrics;
use crate::pool::{Job, Pool};
use crate::proto::Frame;

/// Daemon configuration (`brc serve` flags map here 1:1).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7411`; port 0 picks a free port
    /// (the bound address is reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads; 0 picks the machine's available parallelism.
    pub threads: usize,
    /// Admission-queue depth; requests beyond it are shed.
    pub queue: usize,
    /// Per-request deadline in milliseconds; 0 disables deadlines.
    pub deadline_ms: u64,
    /// Response-cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Expose the `sleep`/`panic` fault-injection endpoints.
    pub debug_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            threads: 0,
            queue: 128,
            deadline_ms: 10_000,
            cache_dir: Some(PathBuf::from("target/serve-cache")),
            debug_endpoints: false,
        }
    }
}

/// Process-wide termination flag, set by the signal handler. Shared by
/// every server in the process (in practice there is one).
static TERMINATED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    // Pure-std SIGTERM/SIGINT: declare libc's `signal` ourselves (the
    // symbol is always linked) and do nothing in the handler beyond an
    // atomic store, the canonical async-signal-safe operation.
    extern "C" fn on_signal(_: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {}

/// A running daemon. Obtained from [`Server::start`]; lives until
/// [`Server::wait`] observes a shutdown trigger and finishes draining.
pub struct Server {
    addr: SocketAddr,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    pool: Option<Pool>,
    metrics: Arc<Metrics>,
    config: ServeConfig,
}

impl Server {
    /// Bind the listener and start the worker pool. The daemon is
    /// serving when this returns; call [`Server::wait`] to block until
    /// shutdown completes.
    ///
    /// # Errors
    ///
    /// Binding the address or creating the cache directory can fail.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        install_signal_handler();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(Metrics::default());
        let mut endpoints = Endpoints::new(config.cache_dir.as_deref(), Arc::clone(&metrics))?;
        endpoints.debug_endpoints = config.debug_endpoints;
        let endpoints = Arc::new(endpoints);
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let handler: Arc<dyn Fn(&Frame) -> Frame + Send + Sync> =
            Arc::new(move |request| endpoints.handle(request));
        let pool = Pool::start(threads, config.queue, Arc::clone(&metrics), handler);
        Ok(Server {
            addr,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
            pool: Some(pool),
            metrics,
            config,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that makes [`Server::wait`] begin draining, for tests
    /// and embedders; network clients use the `shutdown` frame.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until a `shutdown` frame or signal arrives, then drain:
    /// connection threads finish their in-flight request, queued jobs
    /// complete, workers join.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors; per-connection errors are contained
    /// in their connection thread.
    pub fn wait(mut self) -> io::Result<()> {
        let mut connections = Vec::new();
        let pool = self.pool.take().expect("pool present until wait");
        let pool = Arc::new(pool);
        loop {
            if self.shutdown.load(Ordering::SeqCst) || TERMINATED.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let pool = Arc::clone(&pool);
                    let metrics = Arc::clone(&self.metrics);
                    let shutdown = Arc::clone(&self.shutdown);
                    let deadline_ms = self.config.deadline_ms;
                    connections.push(std::thread::spawn(move || {
                        serve_connection(stream, &pool, &metrics, &shutdown, deadline_ms);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    // Opportunistically reap finished connection threads
                    // so a long-lived daemon does not accumulate handles.
                    connections.retain(|c| !c.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: connection threads observe the flag via their read
        // timeout and exit after answering what they already read.
        self.shutdown.store(true, Ordering::SeqCst);
        for c in connections {
            let _ = c.join();
        }
        pool.drain();
        Ok(())
    }
}

/// A [`Read`] wrapper that separates *idle at a frame boundary* from
/// *stalled mid-frame*. At a boundary (no byte of the next frame seen
/// yet) a read timeout surfaces as `WouldBlock` so the caller can poll
/// the shutdown flag. Once a frame has started, timeouts are retried —
/// a slow sender must not desynchronize the stream — up to a bound, so
/// a wedged client cannot hold a drain hostage forever.
struct FrameReader<R: io::Read> {
    inner: R,
    mid_frame: bool,
}

/// Mid-frame stall bound: 50 retries x the 200 ms socket timeout = 10 s.
const MID_FRAME_RETRIES: u32 = 50;

impl<R: io::Read> io::Read for FrameReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut stalls = 0u32;
        loop {
            match self.inner.read(buf) {
                Ok(n) => {
                    if n > 0 {
                        self.mid_frame = true;
                    }
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if !self.mid_frame {
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, e));
                    }
                    stalls += 1;
                    if stalls > MID_FRAME_RETRIES {
                        // Not TimedOut/WouldBlock: the connection loop
                        // treats those as idle polls; a mid-frame stall
                        // must tear the connection down instead.
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "peer stalled mid-frame",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One connection: read frames, dispatch, write responses, until EOF,
/// error, or drain.
fn serve_connection(
    stream: TcpStream,
    pool: &Pool,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    deadline_ms: u64,
) {
    // The read timeout doubles as the drain poll interval: an idle
    // connection notices shutdown within 200 ms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader {
        inner: match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        mid_frame: false,
    };
    let mut writer = io::BufWriter::new(stream);
    loop {
        reader.mid_frame = false;
        let request = match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || TERMINATED.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol garbage: answer once, then hang up — the
                // stream position is unknowable after a bad header.
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = Frame::text("error", &format!("protocol error: {e}")).write_to(&mut writer);
                return;
            }
            Err(_) => return,
        };
        metrics.count_request(&request.kind);
        let response = match request.kind.as_str() {
            "health" => {
                let state = if shutdown.load(Ordering::SeqCst) {
                    "draining"
                } else {
                    "ok"
                };
                Frame::text("ok", &format!("{state}\n"))
            }
            "metrics" => Frame::text("ok", &metrics.render()),
            "shutdown" => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = Frame::text("ok", "draining\n").write_to(&mut writer);
                return;
            }
            _ => {
                let (reply, result) = mpsc::channel();
                let deadline =
                    (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
                let job = Job {
                    request,
                    accepted: Instant::now(),
                    deadline,
                    reply,
                };
                match pool.submit(job) {
                    Ok(()) => match result.recv() {
                        Ok(frame) => frame,
                        // Worker vanished mid-drain; the connection has
                        // nothing useful left to say.
                        Err(_) => return,
                    },
                    Err(_job) => {
                        metrics.shed.fetch_add(1, Ordering::Relaxed);
                        Frame::text("overloaded", "admission queue full; retry with backoff\n")
                    }
                }
            }
        };
        if response.write_to(&mut writer).is_err() {
            return;
        }
    }
}
