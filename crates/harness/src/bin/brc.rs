//! `brc` — the branch-reordering compiler driver.
//!
//! Compile a mini-C file, optionally profile-and-reorder it, run it, and
//! report dynamic statistics:
//!
//! ```text
//! brc prog.c --input data.txt                     # compile + run
//! brc prog.c --input data.txt --reorder           # train on the input itself
//! brc prog.c --input t.txt --train p.txt --reorder --stats
//! brc prog.c --set III --dump-ir > prog.ir        # show optimized IR
//! brc prog.ir --from-ir --input data.txt          # run dumped IR directly
//! ```
//!
//! Flags:
//! * `--input FILE`  program stdin (default: empty)
//! * `--train FILE`  training input for `--reorder` (default: the input)
//! * `--set I|II|III` switch heuristics (default I)
//! * `--reorder`     run the profile-guided reordering pipeline
//! * `--common`      also reorder common-successor sequences
//! * `--no-opt`      skip conventional optimizations
//! * `--stats`       print dynamic event counts
//! * `--dump-ir`     print the final IR instead of running
//! * `--trace N`     print the first N executed blocks to stderr

use std::process::exit;

use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};
use br_vm::{run, VmOptions};

struct Args {
    source: String,
    input: Vec<u8>,
    train: Option<Vec<u8>>,
    set: HeuristicSet,
    reorder: bool,
    common: bool,
    no_opt: bool,
    stats: bool,
    dump_ir: bool,
    from_ir: bool,
    trace: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: brc FILE.c [--input FILE] [--train FILE] [--set I|II|III] \
         [--reorder] [--common] [--no-opt] [--stats] [--dump-ir] [--from-ir]"
    );
    exit(2)
}

fn read(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("brc: cannot read {path}: {e}");
        exit(1)
    })
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let mut source_path = None;
    let mut input = Vec::new();
    let mut train = None;
    let mut set = HeuristicSet::SET_I;
    let (mut reorder, mut common, mut no_opt, mut stats, mut dump_ir, mut from_ir) =
        (false, false, false, false, false, false);
    let mut trace = 0usize;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--input" => input = read(&argv.next().unwrap_or_else(|| usage())),
            "--train" => train = Some(read(&argv.next().unwrap_or_else(|| usage()))),
            "--set" => {
                set = match argv.next().as_deref() {
                    Some("I") => HeuristicSet::SET_I,
                    Some("II") => HeuristicSet::SET_II,
                    Some("III") => HeuristicSet::SET_III,
                    _ => usage(),
                }
            }
            "--reorder" => reorder = true,
            "--common" => {
                reorder = true;
                common = true;
            }
            "--no-opt" => no_opt = true,
            "--stats" => stats = true,
            "--dump-ir" => dump_ir = true,
            "--from-ir" => from_ir = true,
            "--trace" => {
                trace = argv
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && source_path.is_none() => {
                source_path = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    let Some(path) = source_path else { usage() };
    Args {
        source: String::from_utf8_lossy(&read(&path)).into_owned(),
        input,
        train,
        set,
        reorder,
        common,
        no_opt,
        stats,
        dump_ir,
        from_ir,
        trace,
    }
}

fn main() {
    let args = parse_args();
    let mut module = if args.from_ir {
        match br_ir::parse_module(&args.source) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("brc: IR parse error at {e}");
                exit(1);
            }
        }
    } else {
        match compile(&args.source, &Options::with_heuristics(args.set)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("brc: compile error at {e}");
                exit(1);
            }
        }
    };
    if !args.no_opt && !args.from_ir {
        br_opt::optimize(&mut module);
    }
    if args.reorder {
        let train = args.train.as_deref().unwrap_or(&args.input);
        let opts = ReorderOptions {
            common_successor: args.common,
            ..ReorderOptions::default()
        };
        match reorder_module(&module, train, &opts) {
            Ok(report) => {
                if args.stats {
                    for s in &report.sequences {
                        eprintln!(
                            "brc: sequence {:?}/{:?} ({:?}): {:?}",
                            s.func, s.head, s.kind, s.outcome
                        );
                    }
                }
                module = report.module;
            }
            Err(t) => {
                eprintln!("brc: training run trapped: {t}");
                exit(1);
            }
        }
    }
    if let Err(e) = br_ir::verify_module(&module) {
        eprintln!("brc: internal error: IR fails verification: {e}");
        exit(1);
    }
    if args.dump_ir {
        print!("{}", br_ir::print_module(&module));
        return;
    }
    let vm = VmOptions {
        trace_blocks: args.trace,
        ..VmOptions::default()
    };
    match run(&module, &args.input, &vm) {
        Ok(out) => {
            use std::io::Write as _;
            for line in &out.trace {
                eprintln!("brc: trace {line}");
            }
            std::io::stdout().write_all(&out.output).ok();
            if args.stats {
                eprintln!("brc: exit {}", out.exit);
                eprintln!("brc: {}", out.stats);
            }
            exit(out.exit.clamp(0, 255) as i32);
        }
        Err(t) => {
            eprintln!("brc: run-time trap: {t}");
            exit(1);
        }
    }
}
