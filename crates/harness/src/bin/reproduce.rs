//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [--quick] <table3|table4|table5|table6|table7|table8|figures|all>
//! ```
//!
//! Tables 4 and 8 span all three heuristic sets; Tables 5–7 and the
//! figures use the set the paper used for its prediction/time studies.

use br_harness::{csv, tables};
use br_harness::{run_suite, ExperimentConfig, SuiteResult};
use br_minic::HeuristicSet;

fn suite(h: HeuristicSet, quick: bool) -> SuiteResult {
    let config = if quick {
        ExperimentConfig::quick(h)
    } else {
        ExperimentConfig::with_heuristics(h)
    };
    match run_suite(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let as_csv = args.iter().any(|a| a == "--csv");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let all_sets = || -> Vec<SuiteResult> {
        HeuristicSet::ALL
            .into_iter()
            .map(|h| suite(h, quick))
            .collect()
    };

    match command {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2()),
        "table3" | "list" => print!("{}", tables::table3()),
        "table4" if as_csv => print!("{}", csv::table4(&all_sets())),
        "table4" => print!("{}", tables::table4(&all_sets())),
        "table5" if as_csv => print!("{}", csv::table5(&suite(HeuristicSet::SET_II, quick))),
        "table5" => print!("{}", tables::table5(&suite(HeuristicSet::SET_II, quick))),
        "table6" if as_csv => print!("{}", csv::table6(&suite(HeuristicSet::SET_II, quick))),
        "table6" => print!("{}", tables::table6(&suite(HeuristicSet::SET_II, quick))),
        "table7" if as_csv => print!("{}", csv::table7(&suite(HeuristicSet::SET_II, quick))),
        "table7" => print!("{}", tables::table7(&suite(HeuristicSet::SET_II, quick))),
        "table8" if as_csv => print!("{}", csv::table8(&all_sets())),
        "table8" => print!("{}", tables::table8(&all_sets())),
        "advisor" => print!("{}", tables::advisor(&all_sets())),
        "figures" if as_csv => print!("{}", csv::figures(&all_sets())),
        "figures" => {
            for s in all_sets() {
                print!("{}", tables::figures(&s));
                println!();
            }
        }
        "all" => {
            print!("{}", tables::table1());
            println!();
            print!("{}", tables::table2());
            println!();
            print!("{}", tables::table3());
            println!();
            let sets = all_sets();
            print!("{}", tables::table4(&sets));
            println!();
            let set2 = sets
                .iter()
                .find(|s| s.heuristics.name == "II")
                .expect("set II present");
            print!("{}", tables::table5(set2));
            println!();
            print!("{}", tables::table6(set2));
            println!();
            print!("{}", tables::table7(set2));
            println!();
            print!("{}", tables::table8(&sets));
            println!();
            print!("{}", tables::advisor(&sets));
            println!();
            for s in &sets {
                print!("{}", tables::figures(s));
                println!();
            }
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected table1..table8, advisor, figures, or all"
            );
            std::process::exit(2);
        }
    }
}
