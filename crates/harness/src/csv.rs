//! CSV renderers for every table, for machine consumption (plotting the
//! figures, diffing runs, archiving results).

use std::fmt::Write as _;

use crate::tables;
use crate::SuiteResult;

fn esc(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Table 4 as CSV (one row per program per heuristic set).
pub fn table4(suites: &[SuiteResult]) -> String {
    let mut out = String::from("set,program,original_insts,insts_pct,branches_pct\n");
    for suite in suites {
        for r in tables::table4_rows(suite) {
            let _ = writeln!(
                out,
                "{},{},{},{:.4},{:.4}",
                suite.heuristics.name,
                esc(&r.program),
                r.original_insts,
                r.insts_pct,
                r.branches_pct
            );
        }
    }
    out
}

/// Table 5 as CSV.
pub fn table5(suite: &SuiteResult) -> String {
    let mut out = String::from("program,original_mispreds,mispred_pct,inst_ratio\n");
    for r in tables::table5_rows(suite) {
        let ratio = r.ratio.map(|v| format!("{v:.4}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{:.4},{}",
            esc(&r.program),
            r.original_mispreds,
            r.mispred_pct,
            ratio
        );
    }
    out
}

/// Table 6 as CSV. The scheme column holds the counter width in bits
/// (1 for the (0,1) predictor, 2 for (0,2)), keeping the file free of
/// quoted fields.
pub fn table6(suite: &SuiteResult) -> String {
    let mut out = String::from("scheme_bits,entries,mispred_pct_avg,inst_ratio\n");
    for r in tables::table6_rows(suite) {
        let ratio = r.ratio.map(|v| format!("{v:.4}")).unwrap_or_default();
        let bits = match r.config.scheme {
            br_vm::Scheme::OneBit => 1,
            br_vm::Scheme::TwoBit => 2,
            // gshare rows encode history bits above 100 (e.g. 108 = 8
            // bits of history over 2-bit counters).
            br_vm::Scheme::Gshare(h) => 100 + h as u32,
        };
        let _ = writeln!(
            out,
            "{},{},{:.4},{}",
            bits, r.config.entries, r.mispred_pct, ratio
        );
    }
    out
}

/// Table 7 as CSV.
pub fn table7(suite: &SuiteResult) -> String {
    let mut out = String::from("program,ipc_like_pct,ultra_like_pct\n");
    for r in tables::table7_rows(suite) {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4}",
            esc(&r.program),
            r.ipc_pct,
            r.ultra_pct
        );
    }
    out
}

/// Table 8 as CSV (one row per program per heuristic set).
pub fn table8(suites: &[SuiteResult]) -> String {
    let mut out =
        String::from("set,program,static_pct,total_seqs,reordered_pct,avg_len_orig,avg_len_new\n");
    for suite in suites {
        for r in tables::table8_rows(suite) {
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{:.4},{:.4},{:.4}",
                suite.heuristics.name,
                esc(&r.program),
                r.static_pct,
                r.total_seqs,
                r.reordered_pct,
                r.avg_len_orig,
                r.avg_len_new
            );
        }
    }
    out
}

/// Figure histograms as CSV: `set,which,branches,count`.
pub fn figures(suites: &[SuiteResult]) -> String {
    let mut out = String::from("set,which,branches,count\n");
    for suite in suites {
        let (orig, new) = tables::figure_histograms(suite);
        for (len, count) in orig {
            let _ = writeln!(out, "{},original,{len},{count}", suite.heuristics.name);
        }
        for (len, count) in new {
            let _ = writeln!(out, "{},reordered,{len},{count}", suite.heuristics.name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workload, ExperimentConfig};
    use br_minic::HeuristicSet;

    fn mini_suite() -> SuiteResult {
        let config = ExperimentConfig::quick(HeuristicSet::SET_I);
        SuiteResult {
            heuristics: config.heuristics,
            programs: vec![run_workload(&br_workloads::by_name("wc").unwrap(), &config).unwrap()],
        }
    }

    #[test]
    fn csv_outputs_are_well_formed() {
        let suite = mini_suite();
        for text in [
            table4(std::slice::from_ref(&suite)),
            table5(&suite),
            table6(&suite),
            table7(&suite),
            table8(std::slice::from_ref(&suite)),
            figures(std::slice::from_ref(&suite)),
        ] {
            let mut lines = text.lines();
            let header = lines.next().expect("header");
            let cols = header.split(',').count();
            for line in lines {
                assert_eq!(
                    line.split(',').count(),
                    cols,
                    "ragged CSV row `{line}` under header `{header}`"
                );
            }
        }
    }

    #[test]
    fn escaping_quotes_and_commas() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
