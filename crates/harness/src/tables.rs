//! Builders and text renderers for every table and figure of the
//! paper's evaluation section.

use std::fmt::Write as _;

use br_reorder::pipeline::SequenceOutcome;
use br_vm::timing::time_pct_change;
use br_vm::{PredictorConfig, Scheme, TimeModel};

use crate::SuiteResult;

fn fmt_pct(v: f64) -> String {
    // A zero baseline (`pct_change(new > 0, 0)`) yields infinity; print
    // it explicitly rather than as a bogus finite percentage.
    if v.is_infinite() {
        return if v > 0.0 {
            "+inf".into()
        } else {
            "-inf".into()
        };
    }
    format!("{v:+.2}%")
}

/// Table 1: the range forms and their conditions (definitional).
pub fn table1() -> String {
    let mut out = String::from(
        "Table 1: Ranges and Corresponding Range Conditions
",
    );
    let rows = [
        ("1", "v == c", "[c..c]", "beq (1 branch)"),
        ("2", "v <= c", "[MIN..c]", "ble (1 branch)"),
        ("3", "v >= c", "[c..MAX]", "bge (1 branch)"),
        ("4", "c1 <= v <= c2", "[c1..c2]", "blt + ble (2 branches)"),
    ];
    let _ = writeln!(
        out,
        "{:<5} {:<16} {:<12} Branches",
        "Form", "Condition", "Range"
    );
    for (form, cond, range, branches) in rows {
        let _ = writeln!(out, "{form:<5} {cond:<16} {range:<12} {branches}");
    }
    out
}

/// Table 2: the switch-translation heuristic sets (definitional).
pub fn table2() -> String {
    let mut out = String::from(
        "Table 2: Heuristics Used for Translating switch Statements
",
    );
    let _ = writeln!(
        out,
        "{:<5} {:<28} {:<28} Linear Search",
        "Set", "Indirect Jump", "Binary Search"
    );
    for h in br_minic::HeuristicSet::ALL {
        let indirect = match h.indirect_min_cases {
            Some(n) => format!("n >= {n} && nl <= {}n", h.indirect_max_span_ratio),
            None => "never".to_string(),
        };
        let binary = match h.binary_min_cases {
            Some(n) => format!("!indirect && n >= {n}"),
            None => "never".to_string(),
        };
        let _ = writeln!(out, "{:<5} {indirect:<28} {binary:<28} otherwise", h.name);
    }
    out
}

/// Table 3: the test programs.
pub fn table3() -> String {
    let mut out = String::from("Table 3: Test Programs\n");
    let _ = writeln!(out, "{:<8} Description", "Program");
    for w in br_workloads::all() {
        let _ = writeln!(out, "{:<8} {}", w.name, w.description);
    }
    out
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4Row {
    pub program: String,
    pub original_insts: u64,
    pub insts_pct: f64,
    pub branches_pct: f64,
}

/// Table 4: dynamic frequency measurements for one heuristic set.
pub fn table4_rows(suite: &SuiteResult) -> Vec<Table4Row> {
    suite
        .programs
        .iter()
        .map(|p| Table4Row {
            program: p.name.clone(),
            original_insts: p.original.stats.insts,
            insts_pct: p.insts_pct(),
            branches_pct: p.branches_pct(),
        })
        .collect()
}

/// Render Table 4 for one or more suites (the paper stacks Sets I–III).
pub fn table4(suites: &[SuiteResult]) -> String {
    let mut out = String::from("Table 4: Dynamic Frequency Measurements\n");
    let _ = writeln!(
        out,
        "{:<5} {:<8} {:>14} {:>10} {:>10}",
        "Set", "Program", "Orig Insts", "Insts", "Branches"
    );
    for suite in suites {
        let rows = table4_rows(suite);
        for r in &rows {
            let _ = writeln!(
                out,
                "{:<5} {:<8} {:>14} {:>10} {:>10}",
                suite.heuristics.name,
                r.program,
                r.original_insts,
                fmt_pct(r.insts_pct),
                fmt_pct(r.branches_pct)
            );
        }
        let n = rows.len() as f64;
        let avg_insts: f64 = rows.iter().map(|r| r.insts_pct).sum::<f64>() / n;
        let avg_branches: f64 = rows.iter().map(|r| r.branches_pct).sum::<f64>() / n;
        let avg_orig: u64 = (rows.iter().map(|r| r.original_insts).sum::<u64>() as f64 / n) as u64;
        let _ = writeln!(
            out,
            "{:<5} {:<8} {:>14} {:>10} {:>10}",
            suite.heuristics.name,
            "average",
            avg_orig,
            fmt_pct(avg_insts),
            fmt_pct(avg_branches)
        );
    }
    out
}

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Table5Row {
    pub program: String,
    pub original_mispreds: u64,
    pub mispred_pct: f64,
    /// Instructions saved per misprediction added; `None` (the paper's
    /// "N/A") when mispredictions did not increase.
    pub ratio: Option<f64>,
}

/// Table 5: branch prediction under the Ultra's (0,2)/2048 predictor.
pub fn table5_rows(suite: &SuiteResult) -> Vec<Table5Row> {
    let cfg = PredictorConfig::ultra_sparc();
    suite
        .programs
        .iter()
        .map(|p| {
            let orig = p.original.mispredictions(cfg);
            let new = p.reordered.mispredictions(cfg);
            let pct = br_vm::pct_change(new, orig);
            let insts_saved = p.original.stats.insts as i64 - p.reordered.stats.insts as i64;
            let ratio =
                (new > orig && insts_saved > 0).then(|| insts_saved as f64 / (new - orig) as f64);
            Table5Row {
                program: p.name.clone(),
                original_mispreds: orig,
                mispred_pct: pct,
                ratio,
            }
        })
        .collect()
}

/// Render Table 5.
pub fn table5(suite: &SuiteResult) -> String {
    let mut out = String::from(
        "Table 5: Branch Prediction Measurements Using a (0,2) Predictor with 2048 Entries\n",
    );
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>12}",
        "Program", "Orig Mispreds", "Mispreds", "Inst Ratio"
    );
    let rows = table5_rows(suite);
    for r in &rows {
        let ratio = r.ratio.map(|v| format!("{v:.2}")).unwrap_or("N/A".into());
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>12} {:>12}",
            r.program,
            r.original_mispreds,
            fmt_pct(r.mispred_pct),
            ratio
        );
    }
    let n = rows.len() as f64;
    let avg_orig = (rows.iter().map(|r| r.original_mispreds).sum::<u64>() as f64 / n) as u64;
    let avg_pct = rows.iter().map(|r| r.mispred_pct).sum::<f64>() / n;
    let ratios: Vec<f64> = rows.iter().filter_map(|r| r.ratio).collect();
    let avg_ratio = if ratios.is_empty() {
        "N/A".to_string()
    } else {
        format!("{:.2}", ratios.iter().sum::<f64>() / ratios.len() as f64)
    };
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>12}",
        "average",
        avg_orig,
        fmt_pct(avg_pct),
        avg_ratio
    );
    out
}

/// One row of Table 6: a predictor configuration's aggregate effect.
#[derive(Clone, Debug)]
pub struct Table6Row {
    pub config: PredictorConfig,
    /// Average % change in mispredictions across programs.
    pub mispred_pct: f64,
    /// Average instructions-saved : mispredictions-added ratio over the
    /// programs where mispredictions increased (`None` if none did).
    pub ratio: Option<f64>,
}

/// Table 6: sweep of (0,1) and (0,2) predictors across table sizes.
pub fn table6_rows(suite: &SuiteResult) -> Vec<Table6Row> {
    table6_rows_for(suite, &[Scheme::OneBit, Scheme::TwoBit])
}

/// [`table6_rows`] for arbitrary predictor schemes (e.g. the gshare
/// extension validating the paper's "comparable results were obtained
/// using other branch predictors" remark). Requested configurations must
/// have been simulated by the suite.
pub fn table6_rows_for(suite: &SuiteResult, schemes: &[Scheme]) -> Vec<Table6Row> {
    let mut out = Vec::new();
    for &scheme in schemes {
        for cfg in PredictorConfig::sweep(scheme) {
            let mut pcts = Vec::new();
            let mut ratios = Vec::new();
            for p in &suite.programs {
                let orig = p.original.mispredictions(cfg);
                let new = p.reordered.mispredictions(cfg);
                pcts.push(br_vm::pct_change(new, orig));
                let insts_saved = p.original.stats.insts as i64 - p.reordered.stats.insts as i64;
                if new > orig && insts_saved > 0 {
                    ratios.push(insts_saved as f64 / (new - orig) as f64);
                }
            }
            out.push(Table6Row {
                config: cfg,
                mispred_pct: pcts.iter().sum::<f64>() / pcts.len() as f64,
                ratio: (!ratios.is_empty())
                    .then(|| ratios.iter().sum::<f64>() / ratios.len() as f64),
            });
        }
    }
    out
}

/// Render Table 6.
pub fn table6(suite: &SuiteResult) -> String {
    let mut out = String::from("Table 6: Branch Prediction Measurements (predictor sweep)\n");
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>14} {:>12}",
        "Scheme", "Entries", "Mispreds avg", "Inst Ratio"
    );
    for r in table6_rows(suite) {
        let ratio = r.ratio.map(|v| format!("{v:.2}")).unwrap_or("N/A".into());
        let _ = writeln!(
            out,
            "{:<7} {:>8} {:>14} {:>12}",
            r.config.scheme.label(),
            r.config.entries,
            fmt_pct(r.mispred_pct),
            ratio
        );
    }
    out
}

/// One row of Table 7.
#[derive(Clone, Debug)]
pub struct Table7Row {
    pub program: String,
    /// Modelled % change in execution time on a machine without dynamic
    /// prediction and cheap indirect jumps (SPARC IPC / 20 analogue).
    pub ipc_pct: f64,
    /// Modelled % change on the Ultra analogue ((0,2)/2048 predictor,
    /// expensive indirect jumps).
    pub ultra_pct: f64,
}

/// Table 7: modelled execution-time changes.
pub fn table7_rows(suite: &SuiteResult) -> Vec<Table7Row> {
    let ultra_cfg = PredictorConfig::ultra_sparc();
    let ipc = TimeModel::sparc_ipc();
    let ultra = TimeModel::ultra_sparc();
    suite
        .programs
        .iter()
        .map(|p| Table7Row {
            program: p.name.clone(),
            ipc_pct: time_pct_change(&ipc, &p.original.stats, 0, &p.reordered.stats, 0),
            ultra_pct: time_pct_change(
                &ultra,
                &p.original.stats,
                p.original.mispredictions(ultra_cfg),
                &p.reordered.stats,
                p.reordered.mispredictions(ultra_cfg),
            ),
        })
        .collect()
}

/// Render Table 7.
pub fn table7(suite: &SuiteResult) -> String {
    let mut out = String::from("Table 7: Execution Times (modelled cycles)\n");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12}",
        "Program", "IPC-like", "Ultra-like"
    );
    let rows = table7_rows(suite);
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>12}",
            r.program,
            fmt_pct(r.ipc_pct),
            fmt_pct(r.ultra_pct)
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12}",
        "average",
        fmt_pct(rows.iter().map(|r| r.ipc_pct).sum::<f64>() / n),
        fmt_pct(rows.iter().map(|r| r.ultra_pct).sum::<f64>() / n)
    );
    out
}

/// One row of Table 8.
#[derive(Clone, Debug)]
pub struct Table8Row {
    pub program: String,
    pub static_pct: f64,
    pub total_seqs: usize,
    pub reordered_pct: f64,
    pub avg_len_orig: f64,
    pub avg_len_new: f64,
}

/// Table 8: static measurements for one heuristic set.
pub fn table8_rows(suite: &SuiteResult) -> Vec<Table8Row> {
    suite
        .programs
        .iter()
        .map(|p| {
            let total = p.report.sequences.len();
            let reordered = p.report.reordered_count();
            let (avg_orig, avg_new) = p.report.avg_lengths().unwrap_or((0.0, 0.0));
            Table8Row {
                program: p.name.clone(),
                static_pct: p.static_pct(),
                total_seqs: total,
                reordered_pct: if total == 0 {
                    0.0
                } else {
                    reordered as f64 / total as f64 * 100.0
                },
                avg_len_orig: avg_orig,
                avg_len_new: avg_new,
            }
        })
        .collect()
}

/// Render Table 8 for one or more suites.
pub fn table8(suites: &[SuiteResult]) -> String {
    let mut out = String::from("Table 8: Static Measurements\n");
    let _ = writeln!(
        out,
        "{:<5} {:<8} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "Set", "Program", "Insts", "Total Seqs", "Seqs", "Len Orig", "Len After"
    );
    for suite in suites {
        let rows = table8_rows(suite);
        for r in &rows {
            let _ = writeln!(
                out,
                "{:<5} {:<8} {:>9} {:>10} {:>8.2}% {:>9.2} {:>9.2}",
                suite.heuristics.name,
                r.program,
                fmt_pct(r.static_pct),
                r.total_seqs,
                r.reordered_pct,
                r.avg_len_orig,
                r.avg_len_new
            );
        }
        let n = rows.len() as f64;
        let _ = writeln!(
            out,
            "{:<5} {:<8} {:>9} {:>10} {:>8.2}% {:>9.2} {:>9.2}",
            suite.heuristics.name,
            "average",
            fmt_pct(rows.iter().map(|r| r.static_pct).sum::<f64>() / n),
            (rows.iter().map(|r| r.total_seqs).sum::<usize>() as f64 / n) as u64,
            rows.iter().map(|r| r.reordered_pct).sum::<f64>() / n,
            rows.iter().map(|r| r.avg_len_orig).sum::<f64>() / n,
            rows.iter().map(|r| r.avg_len_new).sum::<f64>() / n,
        );
    }
    out
}

/// A histogram: `(branch count, sequences)` pairs, ascending.
pub type LengthHistogram = Vec<(u32, u32)>;

/// Sequence-length histograms (Figures 11–13): `(original, reordered)`
/// maps from branch count to number of reordered sequences.
pub fn figure_histograms(suite: &SuiteResult) -> (LengthHistogram, LengthHistogram) {
    let mut orig: std::collections::BTreeMap<u32, u32> = Default::default();
    let mut new: std::collections::BTreeMap<u32, u32> = Default::default();
    for p in &suite.programs {
        for s in &p.report.sequences {
            if let SequenceOutcome::Reordered { new_branches, .. } = s.outcome {
                *orig.entry(s.original_branches).or_default() += 1;
                *new.entry(new_branches).or_default() += 1;
            }
        }
    }
    (orig.into_iter().collect(), new.into_iter().collect())
}

/// Render the figure for one suite as ASCII histograms.
pub fn figures(suite: &SuiteResult) -> String {
    let (orig, new) = figure_histograms(suite);
    let avg = |h: &[(u32, u32)]| -> f64 {
        let total: u32 = h.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        h.iter().map(|&(l, c)| (l * c) as f64).sum::<f64>() / total as f64
    };
    let mut out = format!(
        "Sequence Length Distributions (Heuristic Set {})\n",
        suite.heuristics.name
    );
    for (title, hist) in [("Original", &orig), ("Reordered", &new)] {
        let _ = writeln!(out, "{title} sequence lengths (average {:.2}):", avg(hist));
        for &(len, count) in hist {
            let _ = writeln!(
                out,
                "  {len:>3} branches: {:<40} {count}",
                "#".repeat(count.min(40) as usize)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;
    use br_minic::HeuristicSet;

    fn tiny_suite() -> SuiteResult {
        // A 3-program sub-suite to keep the test quick.
        let config = ExperimentConfig::quick(HeuristicSet::SET_III);
        let programs = ["wc", "grep", "sort"]
            .iter()
            .map(|n| crate::run_workload(&br_workloads::by_name(n).unwrap(), &config).unwrap())
            .collect();
        SuiteResult {
            heuristics: config.heuristics,
            programs,
        }
    }

    #[test]
    fn table3_lists_all_programs() {
        let t = table3();
        for w in br_workloads::all() {
            assert!(t.contains(w.name));
        }
    }

    #[test]
    fn tables_render_and_aggregate() {
        let suite = tiny_suite();
        let t4 = table4(std::slice::from_ref(&suite));
        assert!(t4.contains("wc"));
        assert!(t4.contains("average"));
        let t5 = table5(&suite);
        assert!(t5.contains("Mispreds"));
        let t6 = table6(&suite);
        assert!(t6.contains("(0,1)"));
        assert!(t6.contains("2048"));
        let t7 = table7(&suite);
        assert!(t7.contains("Ultra"));
        let t8 = table8(std::slice::from_ref(&suite));
        assert!(t8.contains("Total Seqs"));
        let fig = figures(&suite);
        assert!(fig.contains("Original sequence lengths"));
    }

    #[test]
    fn classification_kernels_improve_under_set_iii() {
        let suite = tiny_suite();
        let rows = table4_rows(&suite);
        let wc = rows.iter().find(|r| r.program == "wc").unwrap();
        assert!(wc.insts_pct < 0.0, "wc should improve: {}", wc.insts_pct);
        assert!(
            wc.branches_pct < wc.insts_pct,
            "branches drop more than insts"
        );
    }

    #[test]
    fn table6_has_fourteen_rows() {
        let suite = tiny_suite();
        assert_eq!(table6_rows(&suite).len(), 14);
    }

    #[test]
    fn histograms_count_reordered_sequences() {
        let suite = tiny_suite();
        let (orig, new) = figure_histograms(&suite);
        let total_orig: u32 = orig.iter().map(|&(_, c)| c).sum();
        let total_new: u32 = new.iter().map(|&(_, c)| c).sum();
        assert_eq!(total_orig, total_new);
        let reordered: usize = suite
            .programs
            .iter()
            .map(|p| p.report.reordered_count())
            .sum();
        assert_eq!(total_orig as usize, reordered);
    }
}

/// One row of the search-method advisor (the paper's Section 10: use
/// profile data to decide between an indirect jump, a binary search, and
/// a reordered linear search).
#[derive(Clone, Debug)]
pub struct AdvisorRow {
    pub program: String,
    /// Dynamic instructions per (heuristic set, reordered?) combination,
    /// keyed in the order: (I, off), (I, on), (II, off), (II, on),
    /// (III, off), (III, on), (IV, off), (IV, on).
    pub insts: Vec<(String, u64)>,
    /// Label of the cheapest combination.
    pub best: String,
}

/// Cross-tabulate every (set, reordering) combination from precomputed
/// suites and pick the winner per program — the "semi-static search
/// method" decision the paper says profile data should drive.
pub fn advisor_rows(suites: &[SuiteResult]) -> Vec<AdvisorRow> {
    let programs = suites.first().map(|s| s.programs.len()).unwrap_or(0);
    (0..programs)
        .map(|i| {
            let mut insts = Vec::new();
            for s in suites {
                let p = &s.programs[i];
                insts.push((
                    format!("{}/orig", s.heuristics.name),
                    p.original.stats.insts,
                ));
                insts.push((
                    format!("{}/reordered", s.heuristics.name),
                    p.reordered.stats.insts,
                ));
            }
            let best = insts
                .iter()
                .min_by_key(|(_, n)| *n)
                .expect("non-empty")
                .0
                .clone();
            AdvisorRow {
                program: suites[0].programs[i].name.clone(),
                insts,
                best,
            }
        })
        .collect()
}

/// Render the advisor table.
pub fn advisor(suites: &[SuiteResult]) -> String {
    let rows = advisor_rows(suites);
    let mut out =
        String::from("Search-method advisor: cheapest (heuristic set, reordering) per program\n");
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>14} {:>14} {:>16}",
        "Program", "best", "I/orig insts", "best insts", "saving"
    );
    for r in &rows {
        let baseline = r
            .insts
            .iter()
            .find(|(k, _)| k == "I/orig")
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let best_insts = r.insts.iter().map(|(_, n)| *n).min().unwrap_or(0);
        let saving = if baseline == 0 {
            0.0
        } else {
            (best_insts as f64 - baseline as f64) / baseline as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>14} {:>14} {:>15.2}%",
            r.program, r.best, baseline, best_insts, saving
        );
    }
    out
}

/// One row of the Set IV structure report: what dispatch structures
/// heuristic Set IV deployed for one program and what they cost.
#[derive(Clone, Debug)]
pub struct SetIvRow {
    pub program: String,
    /// Deployed structure counts over the committed sequences.
    pub tally: br_opt::tree::StructureTally,
    /// Expected dynamic cost of the original source order over the
    /// committed sequences, in cost-model units weighted by training
    /// executions.
    pub original_units: f64,
    /// Expected dynamic cost as deployed by Set IV.
    pub deployed_units: f64,
    /// Expected dynamic cost as deployed by Set III on the identical
    /// module (Sets III and IV compile the same program text, so the
    /// sequences pair one-to-one); `None` when the grid has no Set III
    /// suite to compare against.
    pub set_iii_units: Option<f64>,
}

/// Per-execution cost and weight of one sequence as deployed: the
/// committed plan's expected cost, or `None` when the original order
/// was kept (those sequences cost the same in every set and cancel out
/// of cross-set comparisons).
fn committed_cost(s: &br_reorder::pipeline::SequenceRecord) -> Option<(f64, f64, f64)> {
    match s.outcome {
        SequenceOutcome::Reordered {
            original_cost,
            new_cost,
            ..
        } => Some((original_cost, new_cost, s.training_executions as f64)),
        _ => None,
    }
}

/// Build the Set IV report rows from a sweep's suites. Empty when the
/// grid ran no Set IV suite.
pub fn set_iv_rows(suites: &[SuiteResult]) -> Vec<SetIvRow> {
    let Some(iv) = suites.iter().find(|s| s.heuristics.name == "IV") else {
        return Vec::new();
    };
    let iii = suites.iter().find(|s| s.heuristics.name == "III");
    iv.programs
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let mut tally = br_opt::tree::StructureTally::default();
            let mut original_units = 0.0;
            let mut deployed_units = 0.0;
            for s in &p.report.sequences {
                let Some((orig, new, execs)) = committed_cost(s) else {
                    continue;
                };
                tally.record(s.structure.as_str());
                original_units += orig * execs;
                deployed_units += new * execs;
            }
            // Set III's deployed cost over the same sequences: its own
            // committed cost where it reordered, the (shared) original
            // cost where only Set IV found an improvement.
            let set_iii_units = iii.map(|suite| {
                let records = &suite.programs[pi].report.sequences;
                p.report
                    .sequences
                    .iter()
                    .zip(records)
                    .filter_map(|(r4, r3)| {
                        let (orig, _, execs) = committed_cost(r4)?;
                        Some(match committed_cost(r3) {
                            Some((_, new3, execs3)) => new3 * execs3,
                            None => orig * execs,
                        })
                    })
                    .sum()
            });
            SetIvRow {
                program: p.name.clone(),
                tally,
                original_units,
                deployed_units,
                set_iii_units,
            }
        })
        .collect()
}

/// Render the Set IV report: deployed structures per program and the
/// expected-cost comparison against the source order and against the
/// Theorem 3 chains of Set III.
pub fn set_iv(suites: &[SuiteResult]) -> String {
    let rows = set_iv_rows(suites);
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "Set IV: optimal comparison trees and jump tables vs Theorem 3 chains\n\
         (expected cost-model units over the training run, committed sequences only)\n",
    );
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>6} {:>7} {:>12} {:>12} {:>12} {:>9}",
        "Program", "chains", "trees", "tables", "orig units", "IV units", "III units", "vs III"
    );
    for r in &rows {
        let iii = match r.set_iii_units {
            Some(u) => format!("{u:>12.1}"),
            None => format!("{:>12}", "-"),
        };
        let delta = match r.set_iii_units {
            Some(u) if u > 0.0 => fmt_pct((r.deployed_units - u) / u * 100.0),
            _ => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>6} {:>7} {:>12.1} {:>12.1} {iii} {delta:>9}",
            r.program,
            r.tally.chains,
            r.tally.trees,
            r.tally.tables,
            r.original_units,
            r.deployed_units
        );
    }
    out
}

#[cfg(test)]
mod set_iv_tests {
    use super::*;
    use crate::{run_workload, ExperimentConfig, SuiteResult};
    use br_minic::HeuristicSet;

    #[test]
    fn set_iv_never_costs_more_than_set_iii_or_the_source_order() {
        let programs = ["wc", "cb", "lex"];
        let suite = |h: HeuristicSet| SuiteResult {
            heuristics: h,
            programs: programs
                .iter()
                .map(|n| {
                    run_workload(
                        &br_workloads::by_name(n).unwrap(),
                        &ExperimentConfig::quick(h),
                    )
                    .unwrap()
                })
                .collect(),
        };
        let suites = vec![suite(HeuristicSet::SET_III), suite(HeuristicSet::SET_IV)];
        let rows = set_iv_rows(&suites);
        assert_eq!(rows.len(), programs.len());
        for r in &rows {
            assert!(
                r.deployed_units <= r.original_units + 1e-6,
                "{}: deployed {} > original {}",
                r.program,
                r.deployed_units,
                r.original_units
            );
            let iii = r.set_iii_units.expect("Set III suite is in the grid");
            assert!(
                r.deployed_units <= iii + 1e-6,
                "{}: Set IV {} > Set III {}",
                r.program,
                r.deployed_units,
                iii
            );
        }
        let text = set_iv(&suites);
        for p in programs {
            assert!(text.contains(p), "{text}");
        }
    }

    #[test]
    fn grids_without_set_iv_render_nothing() {
        assert_eq!(set_iv(&[]), "");
    }
}

#[cfg(test)]
mod advisor_tests {
    use super::*;
    use crate::{run_workload, ExperimentConfig};
    use br_minic::HeuristicSet;

    #[test]
    fn advisor_picks_a_minimum_per_program() {
        let suites: Vec<SuiteResult> = HeuristicSet::ALL
            .into_iter()
            .map(|h| {
                let config = ExperimentConfig::quick(h);
                SuiteResult {
                    heuristics: h,
                    programs: ["wc", "lex"]
                        .iter()
                        .map(|n| run_workload(&br_workloads::by_name(n).unwrap(), &config).unwrap())
                        .collect(),
                }
            })
            .collect();
        let rows = advisor_rows(&suites);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.insts.len(), 8, "4 sets x (orig, reordered)");
            let min = r.insts.iter().map(|(_, n)| *n).min().unwrap();
            let best = r.insts.iter().find(|(k, _)| *k == r.best).unwrap();
            assert_eq!(best.1, min);
        }
        let text = advisor(&suites);
        assert!(text.contains("wc"));
        assert!(text.contains("lex"));
    }
}

#[cfg(test)]
mod gshare_table_tests {
    use super::*;
    use crate::{run_workload, ExperimentConfig, SuiteResult};
    use br_minic::HeuristicSet;

    #[test]
    fn other_predictors_show_comparable_results() {
        // The paper: "Comparable results were obtained using other branch
        // predictors." Check the gshare sweep tells the same story as
        // (0,2): instruction savings dwarf misprediction changes.
        let mut config = ExperimentConfig::quick(HeuristicSet::SET_II);
        config
            .predictors
            .extend(PredictorConfig::sweep(Scheme::Gshare(8)));
        let suite = SuiteResult {
            heuristics: config.heuristics,
            programs: ["wc", "grep", "sort"]
                .iter()
                .map(|n| run_workload(&br_workloads::by_name(n).unwrap(), &config).unwrap())
                .collect(),
        };
        let rows = table6_rows_for(&suite, &[Scheme::TwoBit, Scheme::Gshare(8)]);
        assert_eq!(rows.len(), 14);
        for r in rows {
            // Whatever the predictor, any misprediction increase is paid
            // back at least tenfold in saved instructions.
            if let Some(ratio) = r.ratio {
                assert!(ratio > 10.0, "{:?}: ratio {ratio}", r.config);
            }
        }
    }
}
