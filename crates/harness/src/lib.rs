//! # br-harness
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation section:
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 3 (test programs)            | [`tables::table3`] |
//! | Table 4 (dynamic frequency)        | [`tables::table4`] |
//! | Table 5 (branch prediction)        | [`tables::table5`] |
//! | Table 6 (predictor sweep)          | [`tables::table6`] |
//! | Table 7 (execution times)          | [`tables::table7`] |
//! | Table 8 (static measurements)      | [`tables::table8`] |
//! | Figures 11–13 (sequence lengths)   | [`tables::figures`] |
//!
//! Everything is built on [`run_suite`], which compiles each of the 17
//! workloads under one switch-translation heuristic set, profiles on the
//! training input, reorders, and measures original and reordered
//! executables on the (different) test input — with the whole predictor
//! sweep attached to a single run.

pub mod csv;
pub mod tables;

use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, LayoutMode, ReorderOptions, ReorderReport};
use br_vm::{run, PredictorConfig, PredictorResult, Scheme, VmOptions};
use br_workloads::Workload;

use std::fmt;

/// Configuration for one experiment suite.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Switch-translation heuristic set.
    pub heuristics: HeuristicSet,
    /// Bytes of training input (profiling run).
    pub train_size: usize,
    /// Bytes of test input (measurement runs).
    pub test_size: usize,
    /// Predictor configurations simulated on the measurement runs.
    pub predictors: Vec<PredictorConfig>,
    /// Use the exhaustive ordering search instead of the greedy one.
    pub exhaustive: bool,
    /// Block-layout pass applied after reordering and clean-up.
    pub layout: LayoutMode,
}

impl ExperimentConfig {
    /// Default sizes with the full Table 6 predictor sweep.
    pub fn with_heuristics(heuristics: HeuristicSet) -> ExperimentConfig {
        let mut predictors = PredictorConfig::sweep(Scheme::OneBit);
        predictors.extend(PredictorConfig::sweep(Scheme::TwoBit));
        ExperimentConfig {
            heuristics,
            train_size: 12 * 1024,
            test_size: 16 * 1024,
            predictors,
            exhaustive: false,
            layout: LayoutMode::default(),
        }
    }

    /// Smaller inputs for quick runs and tests.
    pub fn quick(heuristics: HeuristicSet) -> ExperimentConfig {
        ExperimentConfig {
            train_size: 3 * 1024,
            test_size: 4 * 1024,
            ..ExperimentConfig::with_heuristics(heuristics)
        }
    }
}

/// A measured execution.
#[derive(Clone, Debug)]
pub struct MeasuredRun {
    /// Exit value.
    pub exit: i64,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// Architectural event counts.
    pub stats: br_vm::ExecStats,
    /// One result per configured predictor.
    pub predictors: Vec<PredictorResult>,
}

impl MeasuredRun {
    /// Mispredictions under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration was not simulated.
    pub fn mispredictions(&self, config: PredictorConfig) -> u64 {
        self.predictors
            .iter()
            .find(|r| r.config == config)
            .map(|r| r.mispredictions)
            .expect("predictor config was simulated")
    }
}

/// Results for one program under one heuristic set.
#[derive(Clone, Debug)]
pub struct ProgramResult {
    /// Program name.
    pub name: String,
    /// Original (pre-reordering) measured run on the test input.
    pub original: MeasuredRun,
    /// Reordered measured run on the test input.
    pub reordered: MeasuredRun,
    /// Static instruction count before reordering.
    pub original_static: usize,
    /// Static instruction count after reordering (and clean-up).
    pub reordered_static: usize,
    /// The reordering report (sequence statistics).
    pub report: ReorderReport,
}

impl ProgramResult {
    /// `%` change in dynamic instructions (negative = fewer).
    pub fn insts_pct(&self) -> f64 {
        self.reordered.stats.insts_pct_change(&self.original.stats)
    }

    /// `%` change in conditional branches executed.
    pub fn branches_pct(&self) -> f64 {
        self.reordered
            .stats
            .branches_pct_change(&self.original.stats)
    }

    /// `%` change in static instruction count.
    pub fn static_pct(&self) -> f64 {
        (self.reordered_static as f64 - self.original_static as f64) / self.original_static as f64
            * 100.0
    }
}

/// An error from the harness: compilation or execution failure, tagged
/// with the program it occurred in.
#[derive(Clone, Debug)]
pub struct HarnessError {
    /// Program name.
    pub program: String,
    /// Human-readable failure description.
    pub message: String,
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.program, self.message)
    }
}

impl std::error::Error for HarnessError {}

/// Run the full two-pass experiment for one program given explicit
/// source and inputs.
///
/// # Errors
///
/// Returns a [`HarnessError`] when the program does not compile or any
/// run traps.
pub fn run_program_experiment(
    name: &str,
    source: &str,
    training_input: &[u8],
    test_input: &[u8],
    config: &ExperimentConfig,
) -> Result<ProgramResult, HarnessError> {
    let err = |message: String| HarnessError {
        program: name.to_string(),
        message,
    };
    let mut module = compile(source, &Options::with_heuristics(config.heuristics))
        .map_err(|e| err(format!("compile error: {e}")))?;
    br_opt::optimize(&mut module);
    br_ir::verify_module(&module).map_err(|e| err(format!("verify error: {e}")))?;

    let reorder_opts = ReorderOptions {
        exhaustive: config.exhaustive,
        opt_tree: config.heuristics.opt_tree,
        layout: config.layout,
        ..ReorderOptions::default()
    };
    let report = reorder_module(&module, training_input, &reorder_opts)
        .map_err(|e| err(format!("training run trapped: {e}")))?;
    br_ir::verify_module(&report.module)
        .map_err(|e| err(format!("verify error after reordering: {e}")))?;

    let vm = VmOptions {
        predictors: config.predictors.clone(),
        ..VmOptions::default()
    };
    let measure = |m: &br_ir::Module| -> Result<MeasuredRun, HarnessError> {
        let out = run(m, test_input, &vm).map_err(|e| err(format!("test run trapped: {e}")))?;
        Ok(MeasuredRun {
            exit: out.exit,
            output: out.output,
            stats: out.stats,
            predictors: out.predictor_results,
        })
    };
    let original = measure(&module)?;
    let reordered = measure(&report.module)?;
    if original.exit != reordered.exit || original.output != reordered.output {
        return Err(err("reordering changed observable behaviour".to_string()));
    }
    Ok(ProgramResult {
        name: name.to_string(),
        original,
        reordered,
        original_static: module.static_size(),
        reordered_static: report.module.static_size(),
        report,
    })
}

/// Run the experiment for one named workload.
///
/// # Errors
///
/// See [`run_program_experiment`].
pub fn run_workload(
    w: &Workload,
    config: &ExperimentConfig,
) -> Result<ProgramResult, HarnessError> {
    run_program_experiment(
        w.name,
        w.source,
        &w.training_input(config.train_size),
        &w.test_input(config.test_size),
        config,
    )
}

/// Results for all 17 programs under one heuristic set.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// The heuristic set used.
    pub heuristics: HeuristicSet,
    /// Per-program results, in the paper's Table 3 order.
    pub programs: Vec<ProgramResult>,
}

/// Run the whole 17-program suite under one heuristic set.
///
/// # Errors
///
/// Fails on the first program that does not compile or traps.
pub fn run_suite(config: &ExperimentConfig) -> Result<SuiteResult, HarnessError> {
    let programs = br_workloads::all()
        .iter()
        .map(|w| run_workload(w, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SuiteResult {
        heuristics: config.heuristics,
        programs,
    })
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn compile_errors_are_tagged_with_the_program() {
        let err = run_program_experiment(
            "broken",
            "int main() { return }",
            b"",
            b"",
            &ExperimentConfig::quick(HeuristicSet::SET_I),
        )
        .unwrap_err();
        assert_eq!(err.program, "broken");
        assert!(err.message.contains("compile error"), "{err}");
    }

    #[test]
    fn training_traps_are_reported() {
        let err = run_program_experiment(
            "aborts",
            "int main() { int c; c = getchar(); if (c == 'x') abort(1); \
             if (c == 1) putint(1); else if (c == 2) putint(2); return 0; }",
            b"x",
            b"y",
            &ExperimentConfig::quick(HeuristicSet::SET_I),
        )
        .unwrap_err();
        assert!(err.message.contains("training run trapped"), "{err}");
    }

    #[test]
    fn test_input_traps_are_reported() {
        let err = run_program_experiment(
            "aborts-late",
            "int main() { int c; c = getchar(); if (c == 'y') abort(1); \
             if (c == 1) putint(1); else if (c == 2) putint(2); return 0; }",
            b"x",
            b"y",
            &ExperimentConfig::quick(HeuristicSet::SET_I),
        )
        .unwrap_err();
        assert!(err.message.contains("test run trapped"), "{err}");
    }

    #[test]
    fn harness_error_displays_program_and_message() {
        let e = HarnessError {
            program: "p".into(),
            message: "m".into(),
        };
        assert_eq!(e.to_string(), "p: m");
    }
}
