//! End-to-end tests of the adaptive runtime over phase-shifting input
//! streams, including the headline claims: adaptation strictly beats a
//! train-once deployment on shifting inputs, stays within 5% of a
//! per-phase offline oracle, and never ships an unvalidated replica.

use br_adaptive::{adapt_stream, AdaptOptions, AdaptiveRuntime};
use br_ir::Module;
use br_minic::{compile, Options};
use br_vm::VmOptions;
use br_workloads::phases::scenarios;

fn build(src: &str) -> Module {
    let mut m = compile(src, &Options::default()).expect("compiles");
    br_opt::optimize(&mut m);
    m
}

const PHASE_BYTES: usize = 24 * 1024;

#[test]
fn stationary_stream_converges_without_thrashing() {
    let s = &scenarios()[0];
    let m = build(s.source);
    let mut rt = AdaptiveRuntime::new(
        &m,
        Some(&s.training_input(PHASE_BYTES)),
        &AdaptOptions::default(),
    )
    .expect("training runs");
    let initial = rt.swaps();
    // Same distribution as training, fresh seeds: nothing should drift.
    for seed in [1001, 1002, 1003] {
        let input = br_workloads::InputSpec::new(s.training.kind, seed).generate(PHASE_BYTES);
        rt.run_segment(&input).expect("segment runs");
    }
    assert_eq!(
        rt.swaps(),
        initial,
        "stationary input must not trigger re-swaps"
    );
    assert_eq!(rt.aborted_swaps(), 0);
    assert!(rt.epochs() > 10, "epochs must actually fire");
}

#[test]
fn behaviour_is_preserved_across_shifts_and_swaps() {
    for s in scenarios() {
        let m = build(s.source);
        let mut rt = AdaptiveRuntime::new(
            &m,
            Some(&s.training_input(PHASE_BYTES)),
            &AdaptOptions::default(),
        )
        .expect("training runs");
        for (name, input) in s.phase_inputs(PHASE_BYTES) {
            let base = br_vm::run(&m, &input, &VmOptions::default()).expect("baseline runs");
            let got = rt.run_segment(&input).expect("segment runs");
            assert_eq!(got.output, base.output, "{}:{name} output changed", s.name);
            assert_eq!(got.exit, base.exit, "{}:{name} exit changed", s.name);
        }
        assert!(
            rt.swaps() > 1,
            "{}: phase shifts should cause hot swaps (got {})",
            s.name,
            rt.swaps()
        );
        assert!(rt.drift_epochs() > 0, "{}: drift never flagged", s.name);
        assert_eq!(
            rt.aborted_swaps(),
            0,
            "{}: a replica failed validation",
            s.name
        );
    }
}

#[test]
fn adaptation_beats_train_once_and_nears_the_oracle() {
    for s in scenarios() {
        let m = build(s.source);
        let phases = s.phase_inputs(PHASE_BYTES);
        let report = adapt_stream(
            &m,
            s.name,
            &s.training_input(PHASE_BYTES),
            &phases,
            &AdaptOptions::default(),
        )
        .expect("stream runs");
        assert!(
            report.total_adaptive() < report.total_static(),
            "{}: adaptive {} !< static {}\n{report}",
            s.name,
            report.total_adaptive(),
            report.total_static()
        );
        assert!(
            report.vs_oracle() <= 1.05,
            "{}: {:.4}x of the per-phase oracle\n{report}",
            s.name,
            report.vs_oracle()
        );
        assert_eq!(
            report.aborted_swaps, 0,
            "{}: every deployed replica must pass validation",
            s.name
        );
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), phases.len() + 2, "csv rows");
    }
}

#[test]
fn untrained_runtime_adopts_orderings_on_its_own() {
    let s = &scenarios()[0];
    let m = build(s.source);
    // No training at all: cold start. The first warm epoch adopts the
    // live distribution; later skew shifts still get caught.
    let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).expect("builds");
    assert_eq!(rt.deployed_count(), 0);
    for (_, input) in s.phase_inputs(PHASE_BYTES) {
        rt.run_segment(&input).expect("segment runs");
    }
    assert!(
        rt.deployed_count() > 0,
        "cold start never deployed anything"
    );
    assert_eq!(rt.aborted_swaps(), 0);
}
