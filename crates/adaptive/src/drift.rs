//! Distribution-drift detection over decayed range-exit counters.
//!
//! Each deployed ordering was selected under some range-exit
//! distribution — its *selection basis*. The detector compares the live
//! (exponentially decayed) distribution against that basis with a
//! distance metric and flags a drift when the distance crosses an
//! *enter* threshold. Hysteresis keeps it from thrashing: after a drift
//! is acted on, the detector disarms until the live distribution has
//! become *stationary* — its epoch-over-epoch change drops under a
//! lower *settle* threshold (plus a fixed cooldown in epochs). Re-arming
//! on stationarity rather than on distance-to-basis matters: right
//! after a phase shift the first drift fires on a half-converged
//! mixture, and the live distribution then keeps moving *away* from any
//! basis the action rebased onto — it stabilizes near the new phase's
//! distribution, at which point the detector wakes up and compares the
//! now-converged reality against the selection basis.

/// Distance metric between two range-exit distributions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriftMetric {
    /// Total variation flavour: `Σ |p_i - q_i|`, in `[0, 2]`. Scale-free
    /// and robust for small counter masses; the default.
    #[default]
    L1,
    /// Pearson-style `Σ (p_i - q_i)² / (q_i + ε)` against the basis `q`.
    /// More sensitive to mass appearing in ranges the basis considered
    /// cold.
    ChiSquare,
}

impl DriftMetric {
    /// Distance from the live distribution `p` to the basis `q`. Both
    /// must be normalized (sum to 1) and of equal length.
    pub fn distance(self, p: &[f64], q: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), q.len());
        match self {
            DriftMetric::L1 => p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum(),
            DriftMetric::ChiSquare => {
                const EPS: f64 = 1e-6;
                p.iter()
                    .zip(q)
                    .map(|(a, b)| (a - b) * (a - b) / (b + EPS))
                    .sum()
            }
        }
    }
}

/// Thresholds and gates for one detector (shared by every sequence).
#[derive(Clone, Copy, Debug)]
pub struct DriftThresholds {
    /// Metric used for the distance.
    pub metric: DriftMetric,
    /// Distance at which an armed detector flags a drift.
    pub drift: f64,
    /// Epoch-over-epoch distance below which the live distribution
    /// counts as stationary, re-arming a disarmed detector (must be
    /// below `drift` for the hysteresis band to exist).
    pub settle: f64,
    /// Minimum decayed counter mass before any decision is made — a
    /// near-idle sequence's distribution is noise, not signal.
    pub min_samples: f64,
    /// Epochs to stay quiet after a rebase, regardless of distance.
    pub cooldown_epochs: u32,
}

impl Default for DriftThresholds {
    fn default() -> DriftThresholds {
        DriftThresholds {
            metric: DriftMetric::L1,
            drift: 0.35,
            settle: 0.175,
            min_samples: 32.0,
            cooldown_epochs: 1,
        }
    }
}

/// What the detector concluded for one epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftDecision {
    /// Not enough decayed mass (or cooling down) — no decision.
    NotReady,
    /// The live distribution matches the selection basis well enough.
    Stable,
    /// The sequence has no selection basis yet (it never executed during
    /// training) but now carries live traffic: adopt it.
    Adopt,
    /// The live distribution has drifted off the selection basis.
    Drifted,
}

/// Per-sequence drift state: the selection basis, the hysteresis arm
/// flag, and the cooldown counter.
#[derive(Clone, Debug, Default)]
pub struct DriftDetector {
    /// Normalized distribution the deployed ordering was selected under;
    /// `None` until the sequence is first adopted.
    basis: Option<Vec<f64>>,
    /// Previous epoch's live distribution (for the stationarity check).
    prev: Option<Vec<f64>>,
    /// Disarmed after acting on a drift, until the live distribution
    /// becomes stationary.
    disarmed: bool,
    cooldown: u32,
}

impl DriftDetector {
    /// A detector whose deployed ordering was selected under `basis`
    /// (`None` when the sequence was never trained).
    pub fn new(basis: Option<Vec<f64>>) -> DriftDetector {
        DriftDetector {
            basis,
            prev: None,
            disarmed: false,
            cooldown: 0,
        }
    }

    /// The current selection basis.
    pub fn basis(&self) -> Option<&[f64]> {
        self.basis.as_deref()
    }

    /// One epoch observation: `live` is the normalized decayed
    /// distribution, `mass` the total decayed counter mass behind it.
    pub fn observe(&mut self, live: &[f64], mass: f64, t: &DriftThresholds) -> DriftDecision {
        let decision = self.decide(live, mass, t);
        self.prev = Some(live.to_vec());
        decision
    }

    fn decide(&mut self, live: &[f64], mass: f64, t: &DriftThresholds) -> DriftDecision {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return DriftDecision::NotReady;
        }
        if mass < t.min_samples {
            return DriftDecision::NotReady;
        }
        let Some(basis) = &self.basis else {
            return DriftDecision::Adopt;
        };
        if self.disarmed {
            let stationary = self
                .prev
                .as_deref()
                .is_some_and(|p| t.metric.distance(live, p) < t.settle);
            if stationary {
                self.disarmed = false;
            } else {
                return DriftDecision::Stable;
            }
        }
        if t.metric.distance(live, basis) > t.drift {
            DriftDecision::Drifted
        } else {
            DriftDecision::Stable
        }
    }

    /// Record that the caller acted on a drift (or adoption): `live`
    /// becomes the new selection basis, and hysteresis plus the cooldown
    /// keep the detector quiet until the distribution goes stationary.
    pub fn rebase(&mut self, live: Vec<f64>, t: &DriftThresholds) {
        self.basis = Some(live);
        self.disarmed = true;
        self.cooldown = t.cooldown_epochs;
    }
}

/// Normalize counts into a distribution; all-zero input stays all zero.
pub fn normalize(counts: &[f64]) -> Vec<f64> {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        vec![0.0; counts.len()]
    } else {
        counts.iter().map(|&c| c / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DriftThresholds {
        DriftThresholds::default()
    }

    #[test]
    fn l1_distance_bounds_and_identity() {
        let p = [0.7, 0.2, 0.1];
        assert_eq!(DriftMetric::L1.distance(&p, &p), 0.0);
        let q = [0.0, 0.0, 1.0];
        let r = [1.0, 0.0, 0.0];
        assert!(
            (DriftMetric::L1.distance(&q, &r) - 2.0).abs() < 1e-12,
            "disjoint = max"
        );
    }

    #[test]
    fn chi_square_punishes_mass_in_cold_ranges() {
        // Same L1 distance, but one moves mass into a range the basis
        // considered (almost) empty.
        let basis = [0.5, 0.5, 0.0];
        let shift_hot = [0.3, 0.7, 0.0];
        let shift_cold = [0.3, 0.5, 0.2];
        let m = DriftMetric::ChiSquare;
        assert!(m.distance(&shift_cold, &basis) > 10.0 * m.distance(&shift_hot, &basis));
    }

    #[test]
    fn no_decision_below_min_samples() {
        let mut d = DriftDetector::new(Some(vec![1.0, 0.0]));
        assert_eq!(d.observe(&[0.0, 1.0], 1.0, &t()), DriftDecision::NotReady);
        assert_eq!(d.observe(&[0.0, 1.0], 1000.0, &t()), DriftDecision::Drifted);
    }

    #[test]
    fn untrained_sequence_is_adopted_once_warm() {
        let mut d = DriftDetector::new(None);
        assert_eq!(d.observe(&[0.5, 0.5], 4.0, &t()), DriftDecision::NotReady);
        assert_eq!(d.observe(&[0.5, 0.5], 100.0, &t()), DriftDecision::Adopt);
    }

    #[test]
    fn disarmed_detector_waits_for_stationarity_then_refires() {
        let th = DriftThresholds {
            cooldown_epochs: 0,
            ..t()
        };
        // A phase shift as the decayed counters see it: the live
        // distribution converges geometrically toward the new phase.
        let mut d = DriftDetector::new(Some(vec![1.0, 0.0]));
        assert_eq!(d.observe(&[0.5, 0.5], 100.0, &th), DriftDecision::Drifted);
        // Acted on the half-converged mixture (e.g. replanned, found no
        // gain yet) and rebased onto it.
        d.rebase(vec![0.5, 0.5], &th);
        // Still converging: each step moves more than `settle`, so the
        // detector stays quiet rather than firing every epoch.
        assert_eq!(d.observe(&[0.25, 0.75], 100.0, &th), DriftDecision::Stable);
        assert_eq!(d.observe(&[0.05, 0.95], 100.0, &th), DriftDecision::Stable);
        // Converged: the step is small, the detector re-arms — and the
        // settled distribution is far from the mixture basis, so the
        // drift fires again, now with a trustworthy profile.
        assert_eq!(d.observe(&[0.02, 0.98], 100.0, &th), DriftDecision::Drifted);
        d.rebase(vec![0.02, 0.98], &th);
        // Settled on the new basis: re-arms and stays stable.
        assert_eq!(d.observe(&[0.02, 0.98], 100.0, &th), DriftDecision::Stable);
        assert_eq!(d.observe(&[0.03, 0.97], 100.0, &th), DriftDecision::Stable);
    }

    #[test]
    fn cooldown_swallows_epochs_after_rebase() {
        let th = DriftThresholds {
            cooldown_epochs: 2,
            ..t()
        };
        let mut d = DriftDetector::new(Some(vec![1.0, 0.0]));
        d.rebase(vec![1.0, 0.0], &th);
        assert_eq!(d.observe(&[0.0, 1.0], 100.0, &th), DriftDecision::NotReady);
        assert_eq!(d.observe(&[0.0, 1.0], 100.0, &th), DriftDecision::NotReady);
        // Cooldown over and the distribution is already stationary: the
        // detector re-arms and fires on the stale basis at once.
        assert_eq!(d.observe(&[0.0, 1.0], 100.0, &th), DriftDecision::Drifted);
    }

    #[test]
    fn normalize_handles_zero_mass() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
        let n = normalize(&[3.0, 1.0]);
        assert!((n[0] - 0.75).abs() < 1e-12 && (n[1] - 0.25).abs() < 1e-12);
    }
}
