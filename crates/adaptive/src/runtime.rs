//! The adaptive runtime: always-on profiling, drift-triggered
//! re-planning, and validated hot-swapping of sequence replicas.
//!
//! An [`AdaptiveRuntime`] owns an *instrumented, never cleaned-up*
//! module. The probes stay in the deployed program — the VM counts them
//! as architecturally free, so continuous profiling costs nothing — and
//! the clean-up pass is never run, so block ids stay stable and a
//! sequence can be re-spliced any number of times by rewriting its head
//! in place.
//!
//! At every VM epoch (a safe point: a sequence head at call depth 1)
//! the runtime folds the fresh counter deltas into per-sequence decayed
//! counters, asks the [`DriftDetector`] whether the live distribution
//! still matches the one the deployed ordering was selected under, and
//! on drift re-plans with [`plan_for_profile`]. A new ordering is
//! deployed only if it beats the *deployed* ordering's cost under the
//! live profile by a margin, and only if the freshly emitted replica
//! passes the translation validator against the pristine (pre-any-swap)
//! function — a validation failure aborts the swap and reverts the
//! function, never the run.

use br_ir::{FuncId, Module, SeqId, Terminator};
use br_reorder::apply::apply_reordering;
use br_reorder::emit::emit_reordered;
use br_reorder::profile::plan_ranges;
use br_reorder::validate::check_ordering;
use br_reorder::{
    detect_all, instrument_module, plan_for_profile, profiles_from_run, validate_sequence,
    DetectedSequence, Ordering, SequencePlan, SequenceProfile, Stage, StageFailure,
};
use br_vm::{EpochHook, RunOutcome, Trap, VmOptions};

use crate::drift::{normalize, DriftDecision, DriftDetector, DriftThresholds};

/// Configuration of the adaptive runtime.
#[derive(Clone, Debug)]
pub struct AdaptOptions {
    /// VM configuration; `vm.epoch_blocks` is the adaptation epoch
    /// length (how often, in executed blocks, the runtime gets control).
    pub vm: VmOptions,
    /// Drift-detector thresholds, shared by every sequence.
    pub thresholds: DriftThresholds,
    /// Fractional cost margin a re-plan must clear to replace the
    /// deployed ordering (`new < deployed * (1 - min_gain)`); keeps
    /// marginal wins from churning replicas.
    pub min_gain: f64,
    /// Use the exhaustive ordering search when re-planning.
    pub exhaustive: bool,
}

impl Default for AdaptOptions {
    fn default() -> AdaptOptions {
        AdaptOptions {
            vm: VmOptions {
                epoch_blocks: 1_000,
                ..VmOptions::default()
            },
            thresholds: DriftThresholds::default(),
            min_gain: 0.05,
            exhaustive: false,
        }
    }
}

/// Live state of one reorderable sequence.
struct SeqState {
    func: FuncId,
    seq: DetectedSequence,
    sid: SeqId,
    /// Exponentially decayed range-exit counters (halved each epoch).
    decayed: Vec<f64>,
    /// Cumulative VM counters at the previous epoch of the current run
    /// (the VM's counters are per-run, so deltas are taken against this).
    last_cum: Vec<u64>,
    detector: DriftDetector,
    /// Currently deployed ordering; `None` means the original source
    /// order is still in place.
    deployed: Option<Ordering>,
    /// Whether a replica has ever been spliced in (the head then has no
    /// compare any more and re-swaps only retarget its jump).
    swapped: bool,
    swaps: u64,
    aborted: u64,
    drift_epochs: u64,
}

/// A continuously reoptimizing execution environment for one module.
pub struct AdaptiveRuntime {
    module: Module,
    /// The instrumented module before any swap: every replica is
    /// validated against this, so repeated swaps cannot compound error.
    pristine: Module,
    opts: AdaptOptions,
    seqs: Vec<SeqState>,
    epochs: u64,
}

impl AdaptiveRuntime {
    /// Build a runtime for an optimized module. The module is
    /// instrumented (probes are kept for the lifetime of the runtime);
    /// when `training` is given, a profiling run on it selects and
    /// deploys initial orderings, exactly like the offline pipeline —
    /// except that clean-up is skipped so later swaps stay possible.
    ///
    /// # Errors
    ///
    /// Returns the training run's [`Trap`], if any.
    pub fn new(
        optimized: &Module,
        training: Option<&[u8]>,
        opts: &AdaptOptions,
    ) -> Result<AdaptiveRuntime, Trap> {
        let detections = detect_all(optimized);
        let mut module = optimized.clone();
        let ids = instrument_module(&mut module, &detections);
        let pristine = module.clone();
        let mut seqs: Vec<SeqState> = detections
            .into_iter()
            .zip(&ids)
            .map(|((func, seq), &sid)| {
                let n = plan_ranges(&seq).len();
                SeqState {
                    func,
                    seq,
                    sid,
                    decayed: vec![0.0; n],
                    last_cum: vec![0; n],
                    detector: DriftDetector::new(None),
                    deployed: None,
                    swapped: false,
                    swaps: 0,
                    aborted: 0,
                    drift_epochs: 0,
                }
            })
            .collect();
        if let Some(input) = training {
            let outcome = br_vm::run(&module, input, &opts.vm)?;
            let profiles = profiles_from_run(&ids, &outcome.profiles);
            for (s, profile) in seqs.iter_mut().zip(&profiles) {
                if profile.total() == 0 {
                    continue;
                }
                // The training distribution is the selection basis even
                // when the original order is kept: that decision, too,
                // was made under it.
                let counts_f: Vec<f64> = profile.counts.iter().map(|&c| c as f64).collect();
                s.detector = DriftDetector::new(Some(normalize(&counts_f)));
                let Some(plan) = plan_for_profile(&s.seq, profile, opts.exhaustive) else {
                    continue;
                };
                if plan.improves() && try_swap(&mut module, &pristine, s, &plan).is_ok() {
                    s.deployed = Some(plan.ordering);
                }
            }
        }
        Ok(AdaptiveRuntime {
            module,
            pristine,
            opts: opts.clone(),
            seqs,
            epochs: 0,
        })
    }

    /// Execute one input segment with adaptation enabled: the VM pauses
    /// at each epoch boundary and the runtime may hot-swap replicas.
    ///
    /// # Errors
    ///
    /// Returns the VM's [`Trap`], if any.
    pub fn run_segment(&mut self, input: &[u8]) -> Result<RunOutcome, Trap> {
        // VM profile counters are per-run: restart the delta baseline.
        for s in &mut self.seqs {
            s.last_cum.fill(0);
        }
        let outcome = {
            let mut ctl = EpochController {
                seqs: &mut self.seqs,
                pristine: &self.pristine,
                opts: &self.opts,
                epochs: &mut self.epochs,
            };
            br_vm::run_hooked(&mut self.module, input, &self.opts.vm, &mut ctl)?
        };
        // Fold the tail of the run (since the last epoch) into the
        // decayed counters, undecayed — the next epoch will halve it.
        for s in &mut self.seqs {
            for (i, d) in s.decayed.iter_mut().enumerate() {
                *d += (outcome.profiles[s.sid.index()][i] - s.last_cum[i]) as f64;
            }
        }
        Ok(outcome)
    }

    /// Execute one input segment with adaptation *disabled*: the module
    /// runs as currently deployed (probes and all), and nothing is
    /// swapped. This is the train-once baseline's execution mode, kept
    /// on the identical apply machinery so comparisons against
    /// [`Self::run_segment`] isolate ordering quality.
    ///
    /// # Errors
    ///
    /// Returns the VM's [`Trap`], if any.
    pub fn run_frozen(&self, input: &[u8]) -> Result<RunOutcome, Trap> {
        let opts = VmOptions {
            epoch_blocks: 0,
            ..self.opts.vm.clone()
        };
        br_vm::run(&self.module, input, &opts)
    }

    /// The currently deployed module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Reorderable sequences under management.
    pub fn sequence_count(&self) -> usize {
        self.seqs.len()
    }

    /// Sequences currently running a non-original ordering.
    pub fn deployed_count(&self) -> usize {
        self.seqs.iter().filter(|s| s.deployed.is_some()).count()
    }

    /// Successful hot swaps (including the initial training deployment).
    pub fn swaps(&self) -> u64 {
        self.seqs.iter().map(|s| s.swaps).sum()
    }

    /// Swaps aborted by a failed validation (the run continued on the
    /// previously deployed code).
    pub fn aborted_swaps(&self) -> u64 {
        self.seqs.iter().map(|s| s.aborted).sum()
    }

    /// Epochs in which some sequence's live distribution had drifted.
    pub fn drift_epochs(&self) -> u64 {
        self.seqs.iter().map(|s| s.drift_epochs).sum()
    }

    /// Total adaptation epochs observed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

/// The borrow-split epoch hook: holds everything [`AdaptiveRuntime`]
/// owns *except* the module, which the VM lends back mutably.
struct EpochController<'a> {
    seqs: &'a mut [SeqState],
    pristine: &'a Module,
    opts: &'a AdaptOptions,
    epochs: &'a mut u64,
}

impl EpochHook for EpochController<'_> {
    fn on_epoch(&mut self, module: &mut Module, profiles: &mut [Vec<u64>]) -> bool {
        *self.epochs += 1;
        let mut mutated = false;
        for s in self.seqs.iter_mut() {
            let cum = &profiles[s.sid.index()];
            for (i, d) in s.decayed.iter_mut().enumerate() {
                let delta = cum[i] - s.last_cum[i];
                *d = *d / 2.0 + delta as f64;
                s.last_cum[i] = cum[i];
            }
            let mass: f64 = s.decayed.iter().sum();
            let live = normalize(&s.decayed);
            match s.detector.observe(&live, mass, &self.opts.thresholds) {
                DriftDecision::NotReady | DriftDecision::Stable => continue,
                DriftDecision::Drifted => s.drift_epochs += 1,
                DriftDecision::Adopt => {}
            }
            let counts: Vec<u64> = s.decayed.iter().map(|&c| c.round() as u64).collect();
            let Some(plan) =
                plan_for_profile(&s.seq, &SequenceProfile { counts }, self.opts.exhaustive)
            else {
                continue;
            };
            let deployed_cost = plan.cost_of_deployed(s.deployed.as_ref());
            if plan.ordering.cost < deployed_cost * (1.0 - self.opts.min_gain)
                && try_swap(module, self.pristine, s, &plan).is_ok()
            {
                s.deployed = Some(plan.ordering);
                mutated = true;
            }
            // Whether we swapped, aborted, or judged the deployed
            // ordering still competitive, the live distribution becomes
            // the new selection basis — without this, an unprofitable
            // drift would re-flag every epoch.
            s.detector.rebase(live, &self.opts.thresholds);
        }
        mutated
    }
}

/// Emit, splice, and validate one replica; on any failure the function
/// is left exactly as it was.
fn try_swap(
    module: &mut Module,
    pristine: &Module,
    s: &mut SeqState,
    plan: &SequencePlan,
) -> Result<(), StageFailure> {
    if let Err(details) = check_ordering(&plan.items, &plan.ordering) {
        s.aborted += 1;
        return Err(StageFailure {
            stage: Stage::Order,
            func: s.func,
            head: Some(s.seq.head),
            details,
        });
    }
    let f = module.function_mut(s.func);
    let pre = f.clone();
    let replica_start = f.blocks.len() as u32;
    if s.swapped {
        // The head lost its compare at the first swap; later swaps only
        // append a fresh replica and retarget the head's jump (the old
        // replica becomes unreachable and is simply carried along).
        let emitted = emit_reordered(f, &s.seq, &plan.items, &plan.ordering);
        f.block_mut(s.seq.head).term = Terminator::Jump(emitted.entry);
    } else {
        apply_reordering(f, &s.seq, &plan.items, &plan.ordering);
    }
    // Prove the new replica equivalent to the *pristine* chain. With
    // `replica_start` at the pre-swap block count, earlier replicas are
    // outside the walk domain, so repeated swaps cannot compound error.
    match validate_sequence(s.func, pristine.function(s.func), f, &s.seq, replica_start) {
        Ok(_) => {
            s.swapped = true;
            s.swaps += 1;
            Ok(())
        }
        Err(failure) => {
            *module.function_mut(s.func) = pre;
            s.aborted += 1;
            Err(failure)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_minic::{compile, Options};

    const CLASSIFIER: &str = "
        int main() {
            int c; int k; k = 0;
            c = getchar();
            while (c != -1) {
                if (c == ' ') k += 1;
                else if (c == 10) k += 2;
                else if (c == 9) k += 3;
                else k += 7;
                c = getchar();
            }
            putint(k);
            return 0;
        }";

    fn classifier() -> Module {
        let mut m = compile(CLASSIFIER, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        m
    }

    fn some_plan(s: &SeqState) -> SequencePlan {
        let n = plan_ranges(&s.seq).len();
        let counts: Vec<u64> = (1..=n as u64).rev().collect();
        plan_for_profile(&s.seq, &SequenceProfile { counts }, false).expect("nonzero profile")
    }

    #[test]
    fn broken_ordering_aborts_before_splicing() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        assert_eq!(rt.sequence_count(), 1);
        let before = rt.module.clone();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let mut plan = some_plan(s);
        plan.ordering.explicit = vec![0, 0];
        let failure = try_swap(module, pristine, s, &plan).unwrap_err();
        assert_eq!(failure.stage, Stage::Order);
        assert_eq!(module.function(s.func), before.function(s.func));
        assert_eq!(s.aborted, 1);
        assert_eq!(s.swaps, 0);
    }

    #[test]
    fn failed_validation_reverts_the_swap_and_keeps_running() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        let before = rt.module.clone();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let mut plan = some_plan(s);
        // Cross two exits: the replica then routes values to the wrong
        // targets — structurally fine, semantically wrong.
        let (i, j) = {
            let ts: Vec<_> = plan.items.iter().map(|it| it.target).collect();
            let j = (1..ts.len())
                .find(|&j| ts[j] != ts[0])
                .expect("two targets");
            (0, j)
        };
        let t = plan.items[i].target;
        plan.items[i].target = plan.items[j].target;
        plan.items[j].target = t;
        let failure = try_swap(module, pristine, s, &plan).unwrap_err();
        assert_eq!(failure.stage, Stage::Emit, "{failure}");
        assert_eq!(
            module.function(s.func),
            before.function(s.func),
            "failed swap must leave the function untouched"
        );
        assert_eq!(s.aborted, 1);
        // The untouched module still runs.
        let out = br_vm::run(&rt.module, b"a b\nc", &VmOptions::default()).unwrap();
        assert_eq!(out.exit, 0);
    }

    #[test]
    fn good_swap_validates_and_can_be_reswapped() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let plan = some_plan(s);
        try_swap(module, pristine, s, &plan).expect("first swap validates");
        assert!(s.swapped);
        // Re-swap with a different profile: the head now has no compare,
        // so this exercises the retarget-only path.
        let n = plan_ranges(&s.seq).len();
        let counts: Vec<u64> = (1..=n as u64).collect();
        let plan2 = plan_for_profile(&s.seq, &SequenceProfile { counts }, false).expect("nonzero");
        try_swap(module, pristine, s, &plan2).expect("re-swap validates");
        assert_eq!(s.swaps, 2);
        assert_eq!(s.aborted, 0);
        // The twice-swapped module still behaves like the original.
        let input = b"words and\ttabs\nmore words  here\n";
        let base = br_vm::run(&m, input, &VmOptions::default()).unwrap();
        let got = br_vm::run(&rt.module, input, &VmOptions::default()).unwrap();
        assert_eq!(base.output, got.output);
        assert_eq!(base.exit, got.exit);
    }
}
