//! The adaptive runtime: always-on profiling, drift-triggered
//! re-planning, and validated hot-swapping of sequence replicas.
//!
//! An [`AdaptiveRuntime`] owns an *instrumented, never cleaned-up*
//! module. The probes stay in the deployed program — the VM counts them
//! as architecturally free, so continuous profiling costs nothing — and
//! the clean-up pass is never run, so block ids stay stable and a
//! sequence can be re-spliced any number of times by rewriting its head
//! in place.
//!
//! At every VM epoch (a safe point: a sequence head at call depth 1)
//! the runtime folds the fresh counter deltas into per-sequence decayed
//! counters, asks the [`DriftDetector`] whether the live distribution
//! still matches the one the deployed ordering was selected under, and
//! on drift re-plans with [`plan_for_profile`]. A new ordering is
//! deployed only if it beats the *deployed* ordering's cost under the
//! live profile by a margin, and only if it is *certified*: the first
//! deployment of an ordering runs the symbolic equivalence prover
//! against the pristine (pre-any-swap) function and caches the proof
//! certificate it emits; re-deploying a previously proven ordering
//! (the common case under oscillating drift) admits by *re-checking*
//! the cached certificate with the independent checker —
//! O(certificate) instead of a fresh proof. A refutation or a failed
//! certificate check aborts the swap and leaves the function exactly
//! as deployed, never the run.

use std::collections::HashMap;

use br_ir::{FuncId, Module, SeqId, Terminator};
use br_reorder::apply::apply_reordering;
use br_reorder::dispatch::{apply_dispatch, check_dispatch, emit_dispatch, plan_dispatch};
use br_reorder::emit::emit_reordered;
use br_reorder::profile::plan_ranges;
use br_reorder::validate::check_ordering;
use br_reorder::DispatchPlan;
use br_reorder::{
    certify_sequence, detect_all, instrument_module, plan_for_profile, profiles_from_run,
    DetectedSequence, Ordering, SequenceCertificate, SequencePlan, SequenceProfile, Stage,
    StageFailure,
};
use br_vm::{EpochHook, RunOutcome, Trap, VmOptions};

use crate::drift::{normalize, DriftDecision, DriftDetector, DriftThresholds};

/// Configuration of the adaptive runtime.
#[derive(Clone, Debug)]
pub struct AdaptOptions {
    /// VM configuration; `vm.epoch_blocks` is the adaptation epoch
    /// length (how often, in executed blocks, the runtime gets control).
    pub vm: VmOptions,
    /// Drift-detector thresholds, shared by every sequence.
    pub thresholds: DriftThresholds,
    /// Fractional cost margin a re-plan must clear to replace the
    /// deployed ordering (`new < deployed * (1 - min_gain)`); keeps
    /// marginal wins from churning replicas.
    pub min_gain: f64,
    /// Use the exhaustive ordering search when re-planning.
    pub exhaustive: bool,
    /// Heuristic Set IV at swap time: when the DP comparison tree or the
    /// jump table strictly beats the selected chain ordering under the
    /// live profile, deploy that structure instead. Drift gating and the
    /// `min_gain` comparison still run on chain costs (a conservative
    /// overestimate of what actually gets deployed), so turning this on
    /// can only lower the cost of an admitted swap, never admit more.
    pub opt_tree: bool,
}

impl Default for AdaptOptions {
    fn default() -> AdaptOptions {
        AdaptOptions {
            vm: VmOptions {
                epoch_blocks: 1_000,
                ..VmOptions::default()
            },
            thresholds: DriftThresholds::default(),
            min_gain: 0.05,
            exhaustive: false,
            opt_tree: false,
        }
    }
}

/// Live state of one reorderable sequence.
struct SeqState {
    func: FuncId,
    seq: DetectedSequence,
    sid: SeqId,
    /// Exponentially decayed range-exit counters (halved each epoch).
    decayed: Vec<f64>,
    /// Cumulative VM counters at the previous epoch of the current run
    /// (the VM's counters are per-run, so deltas are taken against this).
    last_cum: Vec<u64>,
    detector: DriftDetector,
    /// Currently deployed ordering; `None` means the original source
    /// order is still in place.
    deployed: Option<Ordering>,
    /// Whether a replica has ever been spliced in (the head then has no
    /// compare any more and re-swaps only retarget its jump).
    swapped: bool,
    /// Proof certificates for every ordering ever deployed on this
    /// sequence, keyed by the ordering's content fingerprint. Emission
    /// is deterministic in (sequence, items, ordering), so an ordering
    /// proven once stays proven; re-deployments admit on a certificate
    /// re-check instead of a fresh symbolic proof.
    certs: HashMap<u64, SequenceCertificate>,
    /// Swaps admitted by a certificate re-check (no re-proof).
    cert_admissions: u64,
    swaps: u64,
    aborted: u64,
    drift_epochs: u64,
}

/// A continuously reoptimizing execution environment for one module.
pub struct AdaptiveRuntime {
    module: Module,
    /// The instrumented module before any swap: every replica is
    /// validated against this, so repeated swaps cannot compound error.
    pristine: Module,
    opts: AdaptOptions,
    seqs: Vec<SeqState>,
    epochs: u64,
}

impl AdaptiveRuntime {
    /// Build a runtime for an optimized module. The module is
    /// instrumented (probes are kept for the lifetime of the runtime);
    /// when `training` is given, a profiling run on it selects and
    /// deploys initial orderings, exactly like the offline pipeline —
    /// except that clean-up is skipped so later swaps stay possible.
    ///
    /// # Errors
    ///
    /// Returns the training run's [`Trap`], if any.
    pub fn new(
        optimized: &Module,
        training: Option<&[u8]>,
        opts: &AdaptOptions,
    ) -> Result<AdaptiveRuntime, Trap> {
        let detections = detect_all(optimized);
        let mut module = optimized.clone();
        let ids = instrument_module(&mut module, &detections);
        let pristine = module.clone();
        let mut seqs: Vec<SeqState> = detections
            .into_iter()
            .zip(&ids)
            .map(|((func, seq), &sid)| {
                let n = plan_ranges(&seq).len();
                SeqState {
                    func,
                    seq,
                    sid,
                    decayed: vec![0.0; n],
                    last_cum: vec![0; n],
                    detector: DriftDetector::new(None),
                    deployed: None,
                    swapped: false,
                    certs: HashMap::new(),
                    cert_admissions: 0,
                    swaps: 0,
                    aborted: 0,
                    drift_epochs: 0,
                }
            })
            .collect();
        if let Some(input) = training {
            let outcome = br_vm::run(&module, input, &opts.vm)?;
            let profiles = profiles_from_run(&ids, &outcome.profiles);
            for (s, profile) in seqs.iter_mut().zip(&profiles) {
                if profile.total() == 0 {
                    continue;
                }
                // The training distribution is the selection basis even
                // when the original order is kept: that decision, too,
                // was made under it.
                let counts_f: Vec<f64> = profile.counts.iter().map(|&c| c as f64).collect();
                s.detector = DriftDetector::new(Some(normalize(&counts_f)));
                let Some(plan) = plan_for_profile(&s.seq, profile, opts.exhaustive) else {
                    continue;
                };
                if plan.improves()
                    && try_swap(&mut module, &pristine, s, &plan, opts.opt_tree).is_ok()
                {
                    s.deployed = Some(plan.ordering);
                }
            }
        }
        Ok(AdaptiveRuntime {
            module,
            pristine,
            opts: opts.clone(),
            seqs,
            epochs: 0,
        })
    }

    /// Execute one input segment with adaptation enabled: the VM pauses
    /// at each epoch boundary and the runtime may hot-swap replicas.
    ///
    /// # Errors
    ///
    /// Returns the VM's [`Trap`], if any.
    pub fn run_segment(&mut self, input: &[u8]) -> Result<RunOutcome, Trap> {
        // VM profile counters are per-run: restart the delta baseline.
        for s in &mut self.seqs {
            s.last_cum.fill(0);
        }
        let outcome = {
            let mut ctl = EpochController {
                seqs: &mut self.seqs,
                pristine: &self.pristine,
                opts: &self.opts,
                epochs: &mut self.epochs,
            };
            br_vm::run_hooked(&mut self.module, input, &self.opts.vm, &mut ctl)?
        };
        // Fold the tail of the run (since the last epoch) into the
        // decayed counters, undecayed — the next epoch will halve it.
        for s in &mut self.seqs {
            for (i, d) in s.decayed.iter_mut().enumerate() {
                *d += (outcome.profiles[s.sid.index()][i] - s.last_cum[i]) as f64;
            }
        }
        Ok(outcome)
    }

    /// Execute one input segment with adaptation *disabled*: the module
    /// runs as currently deployed (probes and all), and nothing is
    /// swapped. This is the train-once baseline's execution mode, kept
    /// on the identical apply machinery so comparisons against
    /// [`Self::run_segment`] isolate ordering quality.
    ///
    /// # Errors
    ///
    /// Returns the VM's [`Trap`], if any.
    pub fn run_frozen(&self, input: &[u8]) -> Result<RunOutcome, Trap> {
        let opts = VmOptions {
            epoch_blocks: 0,
            ..self.opts.vm.clone()
        };
        br_vm::run(&self.module, input, &opts)
    }

    /// The currently deployed module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Reorderable sequences under management.
    pub fn sequence_count(&self) -> usize {
        self.seqs.len()
    }

    /// Sequences currently running a non-original ordering.
    pub fn deployed_count(&self) -> usize {
        self.seqs.iter().filter(|s| s.deployed.is_some()).count()
    }

    /// Successful hot swaps (including the initial training deployment).
    pub fn swaps(&self) -> u64 {
        self.seqs.iter().map(|s| s.swaps).sum()
    }

    /// Swaps aborted by a failed validation (the run continued on the
    /// previously deployed code).
    pub fn aborted_swaps(&self) -> u64 {
        self.seqs.iter().map(|s| s.aborted).sum()
    }

    /// Swaps admitted by re-checking a cached proof certificate instead
    /// of re-proving the ordering from scratch.
    pub fn cert_admissions(&self) -> u64 {
        self.seqs.iter().map(|s| s.cert_admissions).sum()
    }

    /// Epochs in which some sequence's live distribution had drifted.
    pub fn drift_epochs(&self) -> u64 {
        self.seqs.iter().map(|s| s.drift_epochs).sum()
    }

    /// Total adaptation epochs observed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

/// The borrow-split epoch hook: holds everything [`AdaptiveRuntime`]
/// owns *except* the module, which the VM lends back mutably.
struct EpochController<'a> {
    seqs: &'a mut [SeqState],
    pristine: &'a Module,
    opts: &'a AdaptOptions,
    epochs: &'a mut u64,
}

impl EpochHook for EpochController<'_> {
    fn on_epoch(&mut self, module: &mut Module, profiles: &mut [Vec<u64>]) -> bool {
        *self.epochs += 1;
        let mut mutated = false;
        for s in self.seqs.iter_mut() {
            let cum = &profiles[s.sid.index()];
            for (i, d) in s.decayed.iter_mut().enumerate() {
                let delta = cum[i] - s.last_cum[i];
                *d = *d / 2.0 + delta as f64;
                s.last_cum[i] = cum[i];
            }
            let mass: f64 = s.decayed.iter().sum();
            let live = normalize(&s.decayed);
            match s.detector.observe(&live, mass, &self.opts.thresholds) {
                DriftDecision::NotReady | DriftDecision::Stable => continue,
                DriftDecision::Drifted => s.drift_epochs += 1,
                DriftDecision::Adopt => {}
            }
            let counts: Vec<u64> = s.decayed.iter().map(|&c| c.round() as u64).collect();
            let Some(plan) =
                plan_for_profile(&s.seq, &SequenceProfile { counts }, self.opts.exhaustive)
            else {
                continue;
            };
            let deployed_cost = plan.cost_of_deployed(s.deployed.as_ref());
            if plan.ordering.cost < deployed_cost * (1.0 - self.opts.min_gain)
                && try_swap(module, self.pristine, s, &plan, self.opts.opt_tree).is_ok()
            {
                s.deployed = Some(plan.ordering);
                mutated = true;
            }
            // Whether we swapped, aborted, or judged the deployed
            // ordering still competitive, the live distribution becomes
            // the new selection basis — without this, an unprofitable
            // drift would re-flag every epoch.
            s.detector.rebase(live, &self.opts.thresholds);
        }
        mutated
    }
}

/// Content fingerprint of an ordering as it will be emitted: the items
/// (ranges and targets) plus the selected emission order. Emission is a
/// deterministic function of exactly these, so two swaps that agree here
/// produce behaviourally identical replicas and can share a proof
/// certificate.
fn ordering_key(
    items: &[br_reorder::OrderItem],
    ordering: &Ordering,
    dispatch: Option<&DispatchPlan>,
) -> u64 {
    let mut d = String::new();
    for it in items {
        d.push_str(&format!(
            "{},{}->{};",
            it.range.lo, it.range.hi, it.target.0
        ));
    }
    d.push('|');
    for &i in &ordering.explicit {
        d.push_str(&format!("{i},"));
    }
    d.push('|');
    for &i in &ordering.eliminated {
        d.push_str(&format!("{i},"));
    }
    d.push_str(&format!("|{}", ordering.default_target.0));
    // The dispatch plan itself is a deterministic function of the items
    // (already hashed above) and the process-wide cost model, so the
    // deployed structure kind is enough to separate the replicas.
    if let Some(p) = dispatch {
        d.push_str(&format!("|{}", p.structure()));
    }
    br_analysis::cert::fingerprint(&d)
}

/// Splice one replica for `plan` into `f` (the live function) — the
/// chain ordering, or the Set IV dispatch structure when one is given.
fn splice(
    f: &mut br_ir::Function,
    s: &SeqState,
    plan: &SequencePlan,
    dispatch: Option<&DispatchPlan>,
) {
    if s.swapped {
        // The head lost its compare at the first swap; later swaps only
        // append a fresh replica and retarget the head's jump (the old
        // replica becomes unreachable and is simply carried along).
        let emitted = match dispatch {
            Some(p) => emit_dispatch(f, &s.seq, &plan.items, p),
            None => emit_reordered(f, &s.seq, &plan.items, &plan.ordering),
        };
        f.block_mut(s.seq.head).term = Terminator::Jump(emitted.entry);
    } else {
        match dispatch {
            Some(p) => {
                apply_dispatch(f, &s.seq, &plan.items, p);
            }
            None => {
                apply_reordering(f, &s.seq, &plan.items, &plan.ordering);
            }
        }
    }
}

/// Emit, splice, and certify one replica; on any failure the function
/// is left exactly as it was.
///
/// Admission is proof-carrying: the first deployment of an ordering is
/// proven equivalent to the *pristine* chain by the symbolic prover
/// ([`certify_sequence`]), and the certificate it emits is cached under
/// the ordering's fingerprint. Re-deploying the same ordering later —
/// drift oscillating between two profiles is the common case — admits
/// by running the independent certificate checker
/// ([`br_analysis::cert::check`]) on the cached certificate instead of
/// re-proving: O(certificate), no symbolic walk, no range enumeration.
fn try_swap(
    module: &mut Module,
    pristine: &Module,
    s: &mut SeqState,
    plan: &SequencePlan,
    opt_tree: bool,
) -> Result<(), StageFailure> {
    if let Err(details) = check_ordering(&plan.items, &plan.ordering) {
        s.aborted += 1;
        return Err(StageFailure {
            stage: Stage::Order,
            func: s.func,
            head: Some(s.seq.head),
            details,
        });
    }
    // Set IV: a comparison tree or jump table replaces the chain only
    // when it is strictly cheaper under the live profile, and it passes
    // the same structural check the offline pipeline runs before the
    // prover ever sees it.
    let dispatch = if opt_tree {
        plan_dispatch(&plan.items).filter(|d| d.cost() + 1e-9 < plan.ordering.cost)
    } else {
        None
    };
    if let Some(d) = &dispatch {
        if let Err(details) = check_dispatch(&plan.items, d) {
            s.aborted += 1;
            return Err(StageFailure {
                stage: Stage::Order,
                func: s.func,
                head: Some(s.seq.head),
                details,
            });
        }
    }
    let key = ordering_key(&plan.items, &plan.ordering, dispatch.as_ref());
    if let Some(cert) = s.certs.get(&key) {
        // Certificate re-check admission. A corrupted or forged
        // certificate fails here, *before* the function is touched.
        let ok = br_analysis::check(&cert.text).is_ok_and(|checked| checked.sig == cert.sig);
        if !ok {
            s.aborted += 1;
            return Err(StageFailure {
                stage: Stage::Emit,
                func: s.func,
                head: Some(s.seq.head),
                details: vec![
                    "[BR0301] cached proof certificate failed its independent re-check".to_string(),
                ],
            });
        }
        let f = module.function_mut(s.func);
        let replica_start = f.blocks.len();
        splice(f, s, plan, dispatch.as_ref());
        br_layout::reposition_tail(f, replica_start);
        s.cert_admissions += 1;
        s.swapped = true;
        s.swaps += 1;
        return Ok(());
    }
    let f = module.function_mut(s.func);
    let pre = f.clone();
    let replica_start = f.blocks.len() as u32;
    splice(f, s, plan, dispatch.as_ref());
    // Chain the freshly appended replica along its fall-through edges
    // *before* certification, so the proof covers the laid-out code.
    // Only blocks at or above `replica_start` move; the head and every
    // earlier block keep their ids, which live plans rely on.
    br_layout::reposition_tail(f, replica_start as usize);
    // Prove the new replica equivalent to the *pristine* chain. With
    // `replica_start` at the pre-swap block count, earlier replicas are
    // outside the walk domain, so repeated swaps cannot compound error.
    match certify_sequence(s.func, pristine.function(s.func), f, &s.seq, replica_start) {
        Ok(proof) => {
            s.certs.insert(
                key,
                SequenceCertificate {
                    func: s.func,
                    head: s.seq.head,
                    text: proof.certificate,
                    sig: proof.sig,
                },
            );
            s.swapped = true;
            s.swaps += 1;
            Ok(())
        }
        Err(refuted) => {
            *module.function_mut(s.func) = pre;
            s.aborted += 1;
            Err(refuted.failure)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_minic::{compile, Options};

    const CLASSIFIER: &str = "
        int main() {
            int c; int k; k = 0;
            c = getchar();
            while (c != -1) {
                if (c == ' ') k += 1;
                else if (c == 10) k += 2;
                else if (c == 9) k += 3;
                else k += 7;
                c = getchar();
            }
            putint(k);
            return 0;
        }";

    fn classifier() -> Module {
        let mut m = compile(CLASSIFIER, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        m
    }

    fn some_plan(s: &SeqState) -> SequencePlan {
        let n = plan_ranges(&s.seq).len();
        let counts: Vec<u64> = (1..=n as u64).rev().collect();
        plan_for_profile(&s.seq, &SequenceProfile { counts }, false).expect("nonzero profile")
    }

    #[test]
    fn swapped_replica_tail_is_laid_out() {
        // After a certified swap, the appended replica must already be
        // in chained fall-through order: re-running the tail layout is a
        // no-op, and the prefix block ids are untouched.
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let replica_start = module.function(s.func).blocks.len();
        let plan = some_plan(s);
        try_swap(module, pristine, s, &plan, false).expect("swap validates");
        let f = module.function(s.func);
        assert!(f.blocks.len() > replica_start, "replica appended");
        let mut again = f.clone();
        br_layout::reposition_tail(&mut again, replica_start);
        assert_eq!(&again, f, "tail layout must be idempotent after a swap");
        // And the laid-out module still behaves like the original.
        let input = b"some words\there\nand more  \n";
        let base = br_vm::run(&m, input, &VmOptions::default()).unwrap();
        let got = br_vm::run(&rt.module, input, &VmOptions::default()).unwrap();
        assert_eq!(base.output, got.output);
        assert_eq!(base.exit, got.exit);
    }

    #[test]
    fn broken_ordering_aborts_before_splicing() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        assert_eq!(rt.sequence_count(), 1);
        let before = rt.module.clone();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let mut plan = some_plan(s);
        plan.ordering.explicit = vec![0, 0];
        let failure = try_swap(module, pristine, s, &plan, false).unwrap_err();
        assert_eq!(failure.stage, Stage::Order);
        assert_eq!(module.function(s.func), before.function(s.func));
        assert_eq!(s.aborted, 1);
        assert_eq!(s.swaps, 0);
    }

    #[test]
    fn failed_validation_reverts_the_swap_and_keeps_running() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        let before = rt.module.clone();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let mut plan = some_plan(s);
        // Cross two exits: the replica then routes values to the wrong
        // targets — structurally fine, semantically wrong.
        let (i, j) = {
            let ts: Vec<_> = plan.items.iter().map(|it| it.target).collect();
            let j = (1..ts.len())
                .find(|&j| ts[j] != ts[0])
                .expect("two targets");
            (0, j)
        };
        let t = plan.items[i].target;
        plan.items[i].target = plan.items[j].target;
        plan.items[j].target = t;
        let failure = try_swap(module, pristine, s, &plan, false).unwrap_err();
        assert_eq!(failure.stage, Stage::Emit, "{failure}");
        assert_eq!(
            module.function(s.func),
            before.function(s.func),
            "failed swap must leave the function untouched"
        );
        assert_eq!(s.aborted, 1);
        // The untouched module still runs.
        let out = br_vm::run(&rt.module, b"a b\nc", &VmOptions::default()).unwrap();
        assert_eq!(out.exit, 0);
    }

    #[test]
    fn good_swap_validates_and_can_be_reswapped() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let plan = some_plan(s);
        try_swap(module, pristine, s, &plan, false).expect("first swap validates");
        assert!(s.swapped);
        assert_eq!(s.certs.len(), 1, "first swap caches its certificate");
        assert_eq!(s.cert_admissions, 0, "first swap must prove, not re-check");
        // Re-swap with a different profile: the head now has no compare,
        // so this exercises the retarget-only path — and a new ordering,
        // so a second proof.
        let n = plan_ranges(&s.seq).len();
        let counts: Vec<u64> = (1..=n as u64).collect();
        let plan2 = plan_for_profile(&s.seq, &SequenceProfile { counts }, false).expect("nonzero");
        try_swap(module, pristine, s, &plan2, false).expect("re-swap validates");
        assert_eq!(s.swaps, 2);
        assert_eq!(s.aborted, 0);
        assert_eq!(s.certs.len(), 2);
        // Oscillate back to the first ordering: it was already proven,
        // so admission is a certificate re-check, not a fresh proof.
        try_swap(module, pristine, s, &plan, false).expect("re-deployment re-checks");
        assert_eq!(s.swaps, 3);
        assert_eq!(s.cert_admissions, 1, "third swap admits on the cached cert");
        assert_eq!(s.certs.len(), 2, "no new certificate for a proven ordering");
        // The thrice-swapped module still behaves like the original.
        let input = b"words and\ttabs\nmore words  here\n";
        let base = br_vm::run(&m, input, &VmOptions::default()).unwrap();
        let got = br_vm::run(&rt.module, input, &VmOptions::default()).unwrap();
        assert_eq!(base.output, got.output);
        assert_eq!(base.exit, got.exit);
    }

    /// Ten contiguous singleton cases: dense and, under a flat profile,
    /// exactly the shape where Set IV deploys a jump table.
    const DENSE: &str = "
        int main() {
            int c; int k; k = 0;
            c = getchar();
            while (c != -1) {
                if (c == 'a') k += 1;
                else if (c == 'b') k += 2;
                else if (c == 'c') k += 3;
                else if (c == 'd') k += 4;
                else if (c == 'e') k += 5;
                else if (c == 'f') k += 6;
                else if (c == 'g') k += 7;
                else if (c == 'h') k += 8;
                else if (c == 'i') k += 9;
                else if (c == 'j') k += 10;
                else k += 11;
                c = getchar();
            }
            putint(k);
            return 0;
        }";

    #[test]
    fn opt_tree_swap_deploys_a_proof_carrying_dispatch() {
        let mut m = compile(DENSE, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        assert_eq!(rt.sequence_count(), 1);
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let n = plan_ranges(&s.seq).len();
        let plan = plan_for_profile(
            &s.seq,
            &SequenceProfile {
                counts: vec![10; n],
            },
            false,
        )
        .expect("nonzero profile");
        try_swap(module, pristine, s, &plan, true).expect("dispatch swap proves");
        assert!(
            module
                .function(s.func)
                .blocks
                .iter()
                .any(|b| matches!(b.term, Terminator::IndirectJump { .. })),
            "a flat dense profile must deploy a jump table"
        );
        assert_eq!(s.certs.len(), 1, "the dispatch proof is cached");
        // Re-deploying the same plan admits by re-checking the cached
        // certificate — a brcert v2 through the independent checker.
        try_swap(module, pristine, s, &plan, true).expect("re-deployment re-checks");
        assert_eq!(s.cert_admissions, 1);
        // The swapped module still behaves like the original, including
        // on bytes outside the table window.
        let input = b"abcjihgfed XYZ\n0129~";
        let base = br_vm::run(&m, input, &VmOptions::default()).unwrap();
        let got = br_vm::run(&rt.module, input, &VmOptions::default()).unwrap();
        assert_eq!(base.output, got.output);
        assert_eq!(base.exit, got.exit);
    }

    #[test]
    fn tampered_certificate_blocks_readmission() {
        let m = classifier();
        let mut rt = AdaptiveRuntime::new(&m, None, &AdaptOptions::default()).unwrap();
        let AdaptiveRuntime {
            module,
            pristine,
            seqs,
            ..
        } = &mut rt;
        let s = &mut seqs[0];
        let plan = some_plan(s);
        try_swap(module, pristine, s, &plan, false).expect("first swap proves");
        // Corrupt the cached certificate (any semantic edit; here the
        // version line, which also breaks the signature).
        for cert in s.certs.values_mut() {
            cert.text = cert.text.replacen("brcert v1", "brcert v9", 1);
        }
        let before = module.function(s.func).clone();
        let failure = try_swap(module, pristine, s, &plan, false).unwrap_err();
        assert!(
            failure.details.iter().any(|d| d.contains("BR0301")),
            "{failure}"
        );
        assert_eq!(
            module.function(s.func),
            &before,
            "rejected admission must not touch the function"
        );
        assert_eq!(s.aborted, 1);
        assert_eq!(s.swaps, 1);
        assert_eq!(s.cert_admissions, 0);
    }
}
