//! Measuring what adaptation buys: the phase-stream driver and its
//! report.
//!
//! [`adapt_stream`] runs a program over a sequence of input phases three
//! ways, all on the same probe-carrying, never-cleaned-up apply
//! machinery so the comparison isolates *ordering quality*:
//!
//! * **adaptive** — one runtime, trained once, adapting at every epoch;
//! * **static** — the same initial deployment, frozen (train-once);
//! * **oracle** — per phase, a fresh deployment trained offline on that
//!   phase's own input: the best a train-once pipeline could possibly do
//!   with perfect foreknowledge of each phase.

use br_ir::Module;
use br_vm::Trap;

use crate::runtime::{AdaptOptions, AdaptiveRuntime};

/// Dynamic-instruction counts for one phase under the three regimes.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase name.
    pub phase: String,
    /// Input bytes fed in this phase.
    pub input_len: usize,
    /// Dynamic instructions, adapting continuously.
    pub adaptive: u64,
    /// Dynamic instructions, train-once (frozen initial deployment).
    pub static_once: u64,
    /// Dynamic instructions under the per-phase offline oracle.
    pub oracle: u64,
    /// Hot swaps performed during this phase.
    pub swaps: u64,
}

/// Outcome of an [`adapt_stream`] run.
#[derive(Clone, Debug)]
pub struct AdaptReport {
    /// Program name (for display).
    pub program: String,
    /// One row per phase.
    pub rows: Vec<PhaseRow>,
    /// Total successful swaps (including the initial deployment).
    pub swaps: u64,
    /// Swaps aborted by a failed validation.
    pub aborted_swaps: u64,
    /// Epochs in which drift was flagged.
    pub drift_epochs: u64,
    /// Total adaptation epochs.
    pub epochs: u64,
}

impl AdaptReport {
    /// Total dynamic instructions, adapting.
    pub fn total_adaptive(&self) -> u64 {
        self.rows.iter().map(|r| r.adaptive).sum()
    }

    /// Total dynamic instructions, train-once.
    pub fn total_static(&self) -> u64 {
        self.rows.iter().map(|r| r.static_once).sum()
    }

    /// Total dynamic instructions under the per-phase oracle.
    pub fn total_oracle(&self) -> u64 {
        self.rows.iter().map(|r| r.oracle).sum()
    }

    /// Percent of the train-once instruction count saved by adapting
    /// (positive = adaptation wins).
    pub fn savings_vs_static(&self) -> f64 {
        let s = self.total_static();
        if s == 0 {
            return 0.0;
        }
        100.0 * (s as f64 - self.total_adaptive() as f64) / s as f64
    }

    /// Adaptive instructions as a multiple of the oracle's (1.0 =
    /// matches the oracle; 1.05 = within 5% of it).
    pub fn vs_oracle(&self) -> f64 {
        let o = self.total_oracle();
        if o == 0 {
            return 1.0;
        }
        self.total_adaptive() as f64 / o as f64
    }

    /// The report as CSV (one row per phase plus a totals row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "program,phase,input_bytes,adaptive_insts,static_insts,oracle_insts,swaps\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                self.program, r.phase, r.input_len, r.adaptive, r.static_once, r.oracle, r.swaps
            ));
        }
        out.push_str(&format!(
            "{},total,{},{},{},{},{}\n",
            self.program,
            self.rows.iter().map(|r| r.input_len).sum::<usize>(),
            self.total_adaptive(),
            self.total_static(),
            self.total_oracle(),
            self.swaps
        ));
        out
    }
}

impl std::fmt::Display for AdaptReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>6}",
            "phase", "bytes", "adaptive", "static", "oracle", "swaps"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>10} {:>12} {:>12} {:>12} {:>6}",
                r.phase, r.input_len, r.adaptive, r.static_once, r.oracle, r.swaps
            )?;
        }
        writeln!(
            f,
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>6}",
            "total",
            self.rows.iter().map(|r| r.input_len).sum::<usize>(),
            self.total_adaptive(),
            self.total_static(),
            self.total_oracle(),
            self.swaps
        )?;
        write!(
            f,
            "saved vs static: {:+.2}%   vs oracle: {:.3}x   \
             epochs: {} (drifted {})   aborted swaps: {}",
            self.savings_vs_static(),
            self.vs_oracle(),
            self.epochs,
            self.drift_epochs,
            self.aborted_swaps
        )
    }
}

/// Run `optimized` over a stream of input phases under the three
/// regimes (see the module docs) and report per-phase dynamic
/// instruction counts.
///
/// # Errors
///
/// Returns the first [`Trap`] from any training or measurement run.
pub fn adapt_stream(
    optimized: &Module,
    program: &str,
    training: &[u8],
    phases: &[(&str, Vec<u8>)],
    opts: &AdaptOptions,
) -> Result<AdaptReport, Trap> {
    let mut adaptive = AdaptiveRuntime::new(optimized, Some(training), opts)?;
    let static_once = AdaptiveRuntime::new(optimized, Some(training), opts)?;
    let mut rows = Vec::with_capacity(phases.len());
    for (name, input) in phases {
        let swaps_before = adaptive.swaps();
        let a = adaptive.run_segment(input)?;
        let s = static_once.run_frozen(input)?;
        let oracle_rt = AdaptiveRuntime::new(optimized, Some(input), opts)?;
        let o = oracle_rt.run_frozen(input)?;
        debug_assert_eq!(a.output, s.output, "adaptation changed behaviour in {name}");
        debug_assert_eq!(a.exit, s.exit, "adaptation changed the exit code in {name}");
        rows.push(PhaseRow {
            phase: (*name).to_string(),
            input_len: input.len(),
            adaptive: a.stats.insts,
            static_once: s.stats.insts,
            oracle: o.stats.insts,
            swaps: adaptive.swaps() - swaps_before,
        });
    }
    Ok(AdaptReport {
        program: program.to_string(),
        rows,
        swaps: adaptive.swaps(),
        aborted_swaps: adaptive.aborted_swaps(),
        drift_epochs: adaptive.drift_epochs(),
        epochs: adaptive.epochs(),
    })
}
