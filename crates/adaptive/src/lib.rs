//! # br-adaptive
//!
//! Continuous profile-guided reoptimization on top of the branch
//! reordering pipeline: the train-once, deploy-forever model of the
//! paper, upgraded to a runtime that keeps profiling the deployed
//! program and re-reorders sequences when their branch-variable
//! distribution drifts.
//!
//! The pieces:
//!
//! * **Online profiling** — the deployed module keeps its sequence-head
//!   probes (the VM counts them as architecturally free), and the
//!   runtime maintains exponentially decayed per-range counters so the
//!   *recent* distribution dominates.
//! * **Drift detection** ([`drift`]) — each sequence remembers the
//!   distribution its deployed ordering was selected under; an L1 or
//!   chi-square distance with hysteresis decides when that basis no
//!   longer describes reality.
//! * **Hot swapping** ([`runtime`]) — on drift, the sequence is
//!   re-planned against the live profile and a fresh replica is spliced
//!   in at the sequence head (a safe point the VM pauses at between
//!   epochs). Every replica must pass the translation validator against
//!   the pristine pre-swap function; a failed proof aborts the swap,
//!   never the run.
//! * **Measurement** ([`report`]) — [`adapt_stream`] races the adaptive
//!   runtime against a frozen train-once deployment and a per-phase
//!   offline oracle over a phase-shifting input stream.

pub mod drift;
pub mod report;
pub mod runtime;

pub use drift::{normalize, DriftDecision, DriftDetector, DriftMetric, DriftThresholds};
pub use report::{adapt_stream, AdaptReport, PhaseRow};
pub use runtime::{AdaptOptions, AdaptiveRuntime};
