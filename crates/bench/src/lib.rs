//! Bench-only crate: the benchmarks live in `benches/`, and this library
//! provides the tiny self-contained timing harness they share (the
//! workspace builds offline, so there is no external bench framework).

use std::time::{Duration, Instant};

/// Time `f` over `iters` iterations (after one warm-up call) and print a
/// one-line report. Returns the mean per-iteration time.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0);
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("bench {name:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
    per_iter
}

/// Like [`bench()`], also reporting throughput for `elements` work items
/// per iteration (e.g. interpreted instructions).
pub fn bench_throughput<T>(
    name: &str,
    iters: u32,
    elements: u64,
    f: impl FnMut() -> T,
) -> Duration {
    let per_iter = bench(name, iters, f);
    let secs = per_iter.as_secs_f64();
    if secs > 0.0 {
        println!("      {name:<40} {:>12.0} elems/s", elements as f64 / secs);
    }
    per_iter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_and_returns() {
        let mut calls = 0u32;
        let d = bench("noop", 3, || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3 timed
        assert!(d <= Duration::from_secs(1));
    }
}
