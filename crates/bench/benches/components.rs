//! Micro-benchmarks of the pipeline's components: front end, conventional
//! optimization, sequence detection, instrumentation, transformation
//! application, and interpreter throughput.

use br_bench::{bench, bench_throughput};
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};
use br_vm::{run, VmOptions};

fn main() {
    let w = br_workloads::by_name("lex").expect("lex exists");
    let options = Options::with_heuristics(HeuristicSet::SET_III);
    let mut module = compile(w.source, &options).expect("compiles");
    br_opt::optimize(&mut module);
    let train = w.training_input(3072);
    let test = w.test_input(8192);

    bench("components/frontend_compile", 50, || {
        compile(w.source, &options).unwrap()
    });
    bench("components/conventional_optimize", 20, || {
        let mut m = compile(w.source, &options).unwrap();
        br_opt::optimize(&mut m);
        m
    });
    bench("components/detect_sequences", 100, || {
        br_reorder::profile::detect_all(&module)
    });
    // Detection scaling with CFG size: synthesized linear chains of
    // n equality tests (DESIGN.md ablation: detection cost vs CFG size).
    for n in [8usize, 32, 128, 512] {
        let mut chain = String::from("int main() { int c; c = getchar();\n");
        for i in 0..n {
            chain.push_str(&format!("if (c == {i}) putint({i}); else "));
        }
        chain.push_str("putint(-1);\nreturn 0; }\n");
        let mut m = compile(&chain, &options).expect("chain compiles");
        br_opt::optimize(&mut m);
        bench(&format!("components/detect_chain_{n}"), 20, || {
            br_reorder::profile::detect_all(&m)
        });
    }
    {
        let detections = br_reorder::profile::detect_all(&module);
        bench("components/instrument", 50, || {
            let mut m = module.clone();
            br_reorder::profile::instrument_module(&mut m, &detections)
        });
    }
    bench("components/full_reorder_pipeline", 10, || {
        reorder_module(&module, &train, &ReorderOptions::default()).unwrap()
    });

    // Interpreter throughput in instructions per second.
    let probe = run(&module, &test, &VmOptions::default()).expect("runs");
    bench_throughput("vm/interpret_lex", 10, probe.stats.insts, || {
        run(&module, &test, &VmOptions::default()).unwrap()
    });
    let sweep = VmOptions {
        predictors: {
            let mut p = br_vm::PredictorConfig::sweep(br_vm::Scheme::OneBit);
            p.extend(br_vm::PredictorConfig::sweep(br_vm::Scheme::TwoBit));
            p
        },
        ..VmOptions::default()
    };
    bench("vm/interpret_lex_with_14_predictors", 5, || {
        run(&module, &test, &sweep).unwrap()
    });
}
