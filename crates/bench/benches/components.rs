//! Micro-benchmarks of the pipeline's components: front end, conventional
//! optimization, sequence detection, instrumentation, transformation
//! application, and interpreter throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};
use br_vm::{run, VmOptions};

fn bench_components(c: &mut Criterion) {
    let w = br_workloads::by_name("lex").expect("lex exists");
    let options = Options::with_heuristics(HeuristicSet::SET_III);
    let mut module = compile(w.source, &options).expect("compiles");
    br_opt::optimize(&mut module);
    let train = w.training_input(3072);
    let test = w.test_input(8192);

    let mut group = c.benchmark_group("components");
    group.bench_function("frontend_compile", |b| {
        b.iter(|| compile(w.source, &options).unwrap())
    });
    group.bench_function("conventional_optimize", |b| {
        b.iter(|| {
            let mut m = compile(w.source, &options).unwrap();
            br_opt::optimize(&mut m);
            m
        })
    });
    group.bench_function("detect_sequences", |b| {
        b.iter(|| br_reorder::profile::detect_all(&module))
    });
    // Detection scaling with CFG size: synthesized linear chains of
    // n equality tests (DESIGN.md ablation: detection cost vs CFG size).
    for n in [8usize, 32, 128, 512] {
        let mut chain = String::from("int main() { int c; c = getchar();
");
        for i in 0..n {
            chain.push_str(&format!("if (c == {i}) putint({i}); else "));
        }
        chain.push_str("putint(-1);
return 0; }
");
        let mut m = compile(&chain, &options).expect("chain compiles");
        br_opt::optimize(&mut m);
        group.bench_function(format!("detect_chain_{n}"), |b| {
            b.iter(|| br_reorder::profile::detect_all(&m))
        });
    }
    group.bench_function("instrument", |b| {
        let detections = br_reorder::profile::detect_all(&module);
        b.iter(|| {
            let mut m = module.clone();
            br_reorder::profile::instrument_module(&mut m, &detections)
        })
    });
    group.bench_function("full_reorder_pipeline", |b| {
        b.iter(|| reorder_module(&module, &train, &ReorderOptions::default()).unwrap())
    });
    group.finish();

    // Interpreter throughput in instructions per second.
    let probe = run(&module, &test, &VmOptions::default()).expect("runs");
    let mut group = c.benchmark_group("vm");
    group.throughput(Throughput::Elements(probe.stats.insts));
    group.bench_function("interpret_lex", |b| {
        b.iter(|| run(&module, &test, &VmOptions::default()).unwrap())
    });
    let sweep = VmOptions {
        predictors: {
            let mut p = br_vm::PredictorConfig::sweep(br_vm::Scheme::OneBit);
            p.extend(br_vm::PredictorConfig::sweep(br_vm::Scheme::TwoBit));
            p
        },
        ..VmOptions::default()
    };
    group.bench_function("interpret_lex_with_14_predictors", |b| {
        b.iter(|| run(&module, &test, &sweep).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
