//! Fast-path dispatch benchmark: the pre-decoded image interpreter
//! (`br_vm::run_image`) against the classic tree-walking interpreter
//! (`br_vm::run_reference`) on branch-heavy workloads, plus the cost of
//! decoding itself. The sweep engine's budget rides on the reported
//! speedup, so this bench prints an explicit ratio per workload (target:
//! ≥ 1.5x on the geometric mean).

use br_bench::bench_throughput;
use br_minic::{compile, HeuristicSet, Options};
use br_vm::{run_image, run_reference, Image, VmOptions};

fn main() {
    let opts = Options::with_heuristics(HeuristicSet::SET_II);
    let vm = VmOptions::default();
    let mut ratios = Vec::new();
    for name in ["wc", "cb", "lex", "sort", "grep"] {
        let w = br_workloads::by_name(name).expect("workload exists");
        let mut module = compile(w.source, &opts).expect("compiles");
        br_opt::optimize(&mut module);
        let input = w.test_input(32 * 1024);

        let image = Image::decode(&module);
        let probe = run_image(&image, &input, &vm).expect("runs");
        let insts = probe.stats.insts;

        let slow = bench_throughput(&format!("dispatch/{name}/reference"), 30, insts, || {
            run_reference(&module, &input, &vm).unwrap()
        });
        let fast = bench_throughput(&format!("dispatch/{name}/image"), 30, insts, || {
            run_image(&image, &input, &vm).unwrap()
        });
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        ratios.push(ratio);
        println!("      dispatch/{name}: speedup {ratio:.2}x");
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("dispatch geometric-mean speedup: {geomean:.2}x (target >= 1.5x)");

    // Decode is a per-module (not per-run) cost; show it stays trivial
    // next to a single measurement run.
    let w = br_workloads::by_name("lex").expect("lex exists");
    let mut module = compile(w.source, &opts).expect("compiles");
    br_opt::optimize(&mut module);
    br_bench::bench("dispatch/lex/decode", 200, || Image::decode(&module));
}
