//! Figures 11–13: sequence-length distributions before and after
//! reordering, one per heuristic set. Prints the histograms and times
//! their regeneration.

use br_bench::bench;
use br_harness::tables::{figure_histograms, figures};
use br_harness::{run_suite, ExperimentConfig};
use br_minic::HeuristicSet;

fn main() {
    for h in HeuristicSet::ALL {
        let suite = run_suite(&ExperimentConfig::quick(h)).expect("suite runs");
        println!("{}", figures(&suite));
        let (orig, new) = figure_histograms(&suite);
        // The paper's observation: reordered sequences are longer.
        let avg = |hist: &[(u32, u32)]| {
            let total: u32 = hist.iter().map(|&(_, c)| c).sum();
            hist.iter().map(|&(l, c)| (l * c) as f64).sum::<f64>() / total.max(1) as f64
        };
        println!(
            "set {}: avg original {:.2}, avg reordered {:.2}\n",
            h.name,
            avg(&orig),
            avg(&new)
        );
    }
    bench("figures/figures_set_iii", 10, || {
        let suite = run_suite(&ExperimentConfig::quick(HeuristicSet::SET_III)).unwrap();
        figure_histograms(&suite)
    });
}
