//! Figures 11–13: sequence-length distributions before and after
//! reordering, one per heuristic set. Prints the histograms and times
//! their regeneration.

use criterion::{criterion_group, criterion_main, Criterion};

use br_harness::tables::{figure_histograms, figures};
use br_harness::{run_suite, ExperimentConfig};
use br_minic::HeuristicSet;

fn bench_figures(c: &mut Criterion) {
    for h in HeuristicSet::ALL {
        let suite = run_suite(&ExperimentConfig::quick(h)).expect("suite runs");
        println!("{}", figures(&suite));
        let (orig, new) = figure_histograms(&suite);
        // The paper's observation: reordered sequences are longer.
        let avg = |hist: &[(u32, u32)]| {
            let total: u32 = hist.iter().map(|&(_, c)| c).sum();
            hist.iter().map(|&(l, c)| (l * c) as f64).sum::<f64>() / total.max(1) as f64
        };
        println!(
            "set {}: avg original {:.2}, avg reordered {:.2}\n",
            h.name,
            avg(&orig),
            avg(&new)
        );
    }
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("figures_set_iii", |b| {
        b.iter(|| {
            let suite = run_suite(&ExperimentConfig::quick(HeuristicSet::SET_III)).unwrap();
            figure_histograms(&suite)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
