//! Ablations of the design choices DESIGN.md calls out:
//!
//! * greedy (Figure 8) vs exhaustive ordering selection — cost of each
//!   and whether the results differ;
//! * reordering guided by a matched vs a mismatched profile;
//! * profile-guided vs the static uniform-domain heuristic (the
//!   Spuler-style baseline the paper cites) vs no reordering at all.

use br_bench::bench;
use br_harness::{run_workload, ExperimentConfig};
use br_minic::HeuristicSet;
use br_reorder::order::{exhaustive_ordering, select_ordering, OrderItem};
use br_reorder::range::Range;

fn synthetic_items(n: usize) -> Vec<OrderItem> {
    // Deterministic pseudo-profile over n single-value ranges across 3
    // targets.
    (0..n)
        .map(|i| {
            let range = Range::single(i as i64 * 10);
            OrderItem {
                range,
                target: br_ir::BlockId((i % 3) as u32),
                prob: ((i * 7 + 3) % 11 + 1) as f64 / 66.0,
                cost: OrderItem::cost_of(&range),
                source: br_reorder::order::ItemSource::Explicit(i),
            }
        })
        .collect()
}

fn main() {
    let targets = vec![br_ir::BlockId(0), br_ir::BlockId(1), br_ir::BlockId(2)];

    // Report: does greedy ever lose to exhaustive on the real suite?
    let mut diffs = 0usize;
    for w in br_workloads::all() {
        let mut greedy_cfg = ExperimentConfig::quick(HeuristicSet::SET_III);
        greedy_cfg.exhaustive = false;
        let mut ex_cfg = greedy_cfg.clone();
        ex_cfg.exhaustive = true;
        let a = run_workload(&w, &greedy_cfg).expect("runs");
        let b = run_workload(&w, &ex_cfg).expect("runs");
        if a.reordered.stats.insts != b.reordered.stats.insts {
            diffs += 1;
            println!(
                "{}: greedy {} vs exhaustive {} insts",
                w.name, a.reordered.stats.insts, b.reordered.stats.insts
            );
        }
    }
    println!(
        "greedy vs exhaustive ordering: {diffs}/17 programs differ \
         (the paper reports 0)"
    );

    for n in [4usize, 8, 12, 16] {
        let items = synthetic_items(n);
        let elim = vec![true; items.len()];
        bench(&format!("ordering-selection/greedy_n{n}"), 100, || {
            select_ordering(&items, &targets, &elim, br_ir::BlockId(9))
        });
        let iters = if n >= 12 { 2 } else { 20 };
        bench(
            &format!("ordering-selection/exhaustive_n{n}"),
            iters,
            || exhaustive_ordering(&items, &targets, &elim, br_ir::BlockId(9)),
        );
    }

    // Static heuristic vs real profiles across the suite.
    {
        use br_minic::{compile, Options};
        use br_reorder::{reorder_module, ReorderOptions};
        use br_vm::{run, VmOptions};
        let (mut wins_profile, mut ties, mut wins_static) = (0usize, 0usize, 0usize);
        for w in br_workloads::all() {
            let mut m = compile(w.source, &Options::with_heuristics(HeuristicSet::SET_III))
                .expect("compiles");
            br_opt::optimize(&mut m);
            let train = w.training_input(3072);
            let test = w.test_input(4096);
            let profiled = reorder_module(&m, &train, &ReorderOptions::default()).unwrap();
            let statict = reorder_module(
                &m,
                &train,
                &ReorderOptions {
                    static_heuristic: true,
                    ..ReorderOptions::default()
                },
            )
            .unwrap();
            let p = run(&profiled.module, &test, &VmOptions::default()).unwrap();
            let s = run(&statict.module, &test, &VmOptions::default()).unwrap();
            if p.stats.insts < s.stats.insts {
                wins_profile += 1;
            } else if p.stats.insts == s.stats.insts {
                ties += 1;
            } else {
                wins_static += 1;
            }
        }
        println!(
            "profile-guided vs static heuristic: profile wins {wins_profile},              ties {ties}, static wins {wins_static} (of 17)"
        );
    }

    // Register pressure: how much dynamic cost spill code adds when the
    // reordered code is squeezed into small register files.
    {
        use br_minic::{compile, Options};
        use br_opt::regalloc::{allocate_registers, RegAllocOptions};
        use br_reorder::{reorder_module, ReorderOptions};
        use br_vm::{run, VmOptions};
        let mut base_total = 0u64;
        let mut totals = [0u64; 3];
        let sizes = [24u32, 12, 8];
        for w in br_workloads::all() {
            let mut m = compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I))
                .expect("compiles");
            br_opt::optimize(&mut m);
            let report =
                reorder_module(&m, &w.training_input(3072), &ReorderOptions::default()).unwrap();
            let test = w.test_input(4096);
            base_total += run(&report.module, &test, &VmOptions::default())
                .unwrap()
                .stats
                .insts;
            for (i, &regs) in sizes.iter().enumerate() {
                let mut allocated = report.module.clone();
                for f in &mut allocated.functions {
                    allocate_registers(f, &RegAllocOptions { num_regs: regs });
                }
                totals[i] += run(&allocated, &test, &VmOptions::default())
                    .unwrap()
                    .stats
                    .insts;
            }
        }
        for &regs in sizes.iter() {
            let i = sizes.iter().position(|&r| r == regs).unwrap();
            println!(
                "register pressure: {regs:>2} regs -> {:+.2}% instructions vs unlimited",
                (totals[i] as f64 - base_total as f64) / base_total as f64 * 100.0
            );
        }
    }

    // Matched vs mismatched profile, end-to-end on hyphen (the paper's
    // sensitivity case).
    let w = br_workloads::by_name("hyphen").expect("hyphen exists");
    let r = run_workload(&w, &ExperimentConfig::quick(HeuristicSet::SET_I)).expect("runs");
    println!(
        "hyphen with mismatched train/test: {:+.2}% insts (paper: +3.42%)",
        r.insts_pct()
    );
    bench("profile-sensitivity/hyphen_full_pipeline", 10, || {
        run_workload(&w, &ExperimentConfig::quick(HeuristicSet::SET_I)).unwrap()
    });
}
