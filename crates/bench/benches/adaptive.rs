//! Benchmarks of the adaptive reoptimization runtime: what the always-on
//! epoch machinery costs on a stationary stream, and what a full
//! phase-shifting stream costs end to end (profile folding, drift
//! detection, replanning, validated hot swaps).

use br_adaptive::{adapt_stream, AdaptOptions, AdaptiveRuntime};
use br_minic::{compile, HeuristicSet, Options};

fn main() {
    let scenario = br_workloads::scenario("charclass").expect("charclass exists");
    let options = Options::with_heuristics(HeuristicSet::SET_I);
    let mut module = compile(scenario.source, &options).expect("compiles");
    br_opt::optimize(&mut module);
    let opts = AdaptOptions::default();
    let training = scenario.training_input(8192);
    let phases = scenario.phase_inputs(8192);

    bench_runtime_overhead(&module, &training, &phases, &opts);

    // The full three-way race (adaptive vs frozen vs per-phase oracle)
    // over every phase — the `brc adapt` hot path.
    br_bench::bench("adaptive/adapt_stream_charclass", 5, || {
        adapt_stream(&module, scenario.name, &training, &phases, &opts).unwrap()
    });
}

/// Epoch machinery cost: the same stationary input run through the
/// adaptive segment path (counter folding + drift checks every epoch)
/// versus the frozen path (plain interpretation, no epochs).
fn bench_runtime_overhead(
    module: &br_ir::Module,
    training: &[u8],
    phases: &[(&str, Vec<u8>)],
    opts: &AdaptOptions,
) {
    let (_, stationary) = &phases[0];
    let insts = {
        let rt = AdaptiveRuntime::new(module, Some(training), opts).expect("trains");
        rt.run_frozen(stationary).expect("runs").stats.insts
    };
    br_bench::bench_throughput("adaptive/segment_stationary", 10, insts, || {
        let mut rt = AdaptiveRuntime::new(module, Some(training), opts).expect("trains");
        rt.run_segment(stationary).unwrap()
    });
    br_bench::bench_throughput("adaptive/frozen_stationary", 10, insts, || {
        let rt = AdaptiveRuntime::new(module, Some(training), opts).expect("trains");
        rt.run_frozen(stationary).unwrap()
    });
}
