//! Cost of the ext-TSP layout pass itself: edge-weight derivation,
//! chain formation + refinement per function, and the end-to-end
//! pipeline delta between `--layout greedy` and `--layout exttsp`.
//!
//! The pass runs once per compilation, so the budget question is how
//! it scales with CFG size — the synthesized chains mirror the
//! detection-scaling ablation in `components.rs`.

use br_bench::bench;
use br_layout::{layout_function, EdgeWeights, LayoutParams};
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, LayoutMode, ReorderOptions};
use br_vm::{run, VmOptions};

fn main() {
    let w = br_workloads::by_name("lex").expect("lex exists");
    let options = Options::with_heuristics(HeuristicSet::SET_III);
    let mut module = compile(w.source, &options).expect("compiles");
    br_opt::optimize(&mut module);
    let train = w.training_input(3072);

    // Profile once; the bench then measures pure layout work.
    let outcome = run(&module, &train, &VmOptions::default()).expect("runs");
    let params = LayoutParams::default();

    bench("layout/edge_weights_lex", 200, || {
        module
            .functions
            .iter()
            .zip(&outcome.block_counts)
            .map(|(f, counts)| EdgeWeights::from_block_counts(f, counts))
            .collect::<Vec<_>>()
    });
    bench("layout/layout_function_lex", 100, || {
        let mut m = module.clone();
        let mut applied = 0usize;
        for (f, counts) in m.functions.iter_mut().zip(&outcome.block_counts) {
            let weights = EdgeWeights::from_block_counts(f, counts);
            if layout_function(f, &weights, &params).applied.is_some() {
                applied += 1;
            }
        }
        applied
    });

    // Layout cost vs CFG size: one function of n two-way tests, every
    // block hot, so chain formation sees a dense weight graph.
    for n in [8usize, 32, 128, 512] {
        let mut chain = String::from("int main() { int c; c = getchar();\n");
        for i in 0..n {
            chain.push_str(&format!("if (c == {i}) putint({i}); else "));
        }
        chain.push_str("putint(-1);\nreturn 0; }\n");
        let mut m = compile(&chain, &options).expect("chain compiles");
        br_opt::optimize(&mut m);
        let probe = run(&m, &train, &VmOptions::default()).expect("runs");
        // Refinement cost grows superlinearly with block count; keep
        // the big shapes to a few iterations so the suite stays quick.
        let iters = if n >= 128 { 3 } else { 20 };
        bench(&format!("layout/layout_chain_{n}"), iters, || {
            let mut m2 = m.clone();
            for (f, counts) in m2.functions.iter_mut().zip(&probe.block_counts) {
                let weights = EdgeWeights::from_block_counts(f, counts);
                layout_function(f, &weights, &params);
            }
            m2
        });
    }

    // End-to-end: what the extra layout stage adds to a full reorder
    // pipeline run (greedy is the default cleanup layout; exttsp
    // re-profiles the cleaned module and optimizes per function).
    for (label, layout) in [
        ("layout/pipeline_greedy", LayoutMode::Greedy),
        ("layout/pipeline_exttsp", LayoutMode::ExtTsp),
    ] {
        let opts = ReorderOptions {
            layout,
            ..ReorderOptions::default()
        };
        bench(label, 10, || {
            reorder_module(&module, &train, &opts).unwrap()
        });
    }
}
