//! One bench per table of the paper: each target regenerates the
//! table's rows end-to-end (compile → profile → reorder → measure →
//! aggregate) and times the regeneration. The rows themselves are
//! printed once so `cargo bench` output doubles as a results log.

use br_bench::bench;
use br_harness::tables;
use br_harness::{run_suite, ExperimentConfig, SuiteResult};
use br_minic::HeuristicSet;

fn suites() -> Vec<SuiteResult> {
    HeuristicSet::ALL
        .into_iter()
        .map(|h| run_suite(&ExperimentConfig::quick(h)).expect("suite runs"))
        .collect()
}

fn main() {
    // Regenerate and print each table once, so the bench log carries the
    // reproduced results.
    let all = suites();
    let set2 = all
        .iter()
        .find(|s| s.heuristics.name == "II")
        .expect("set II")
        .clone();
    println!("{}", tables::table3());
    println!("{}", tables::table4(&all));
    println!("{}", tables::table5(&set2));
    println!("{}", tables::table6(&set2));
    println!("{}", tables::table7(&set2));
    println!("{}", tables::table8(&all));

    bench("tables/table4_one_suite_set_i", 10, || {
        let s = run_suite(&ExperimentConfig::quick(HeuristicSet::SET_I)).unwrap();
        tables::table4_rows(&s)
    });
    bench("tables/table5_rows", 10, || tables::table5_rows(&set2));
    bench("tables/table6_rows", 10, || tables::table6_rows(&set2));
    bench("tables/table7_rows", 10, || tables::table7_rows(&set2));
    bench("tables/table8_rows", 10, || tables::table8_rows(&set2));
}
