//! One bench per table of the paper: each target regenerates the
//! table's rows end-to-end (compile → profile → reorder → measure →
//! aggregate) and times the regeneration. The rows themselves are
//! printed once so `cargo bench` output doubles as a results log.

use criterion::{criterion_group, criterion_main, Criterion};

use br_harness::tables;
use br_harness::{run_suite, ExperimentConfig, SuiteResult};
use br_minic::HeuristicSet;

fn suites() -> Vec<SuiteResult> {
    HeuristicSet::ALL
        .into_iter()
        .map(|h| run_suite(&ExperimentConfig::quick(h)).expect("suite runs"))
        .collect()
}

fn bench_tables(c: &mut Criterion) {
    // Regenerate and print each table once, so the bench log carries the
    // reproduced results.
    let all = suites();
    let set2 = all
        .iter()
        .find(|s| s.heuristics.name == "II")
        .expect("set II")
        .clone();
    println!("{}", tables::table3());
    println!("{}", tables::table4(&all));
    println!("{}", tables::table5(&set2));
    println!("{}", tables::table6(&set2));
    println!("{}", tables::table7(&set2));
    println!("{}", tables::table8(&all));

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table4_one_suite_set_i", |b| {
        b.iter(|| {
            let s = run_suite(&ExperimentConfig::quick(HeuristicSet::SET_I)).unwrap();
            tables::table4_rows(&s)
        })
    });
    group.bench_function("table5_rows", |b| {
        b.iter(|| tables::table5_rows(&set2))
    });
    group.bench_function("table6_rows", |b| {
        b.iter(|| tables::table6_rows(&set2))
    });
    group.bench_function("table7_rows", |b| {
        b.iter(|| tables::table7_rows(&set2))
    });
    group.bench_function("table8_rows", |b| {
        b.iter(|| tables::table8_rows(&set2))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
