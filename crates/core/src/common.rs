//! Reordering branches with a common successor (the paper's Section 10,
//! Figure 14 — proposed there as future work, implemented here).
//!
//! A sequence of consecutive conditional branches `b1 … bn` is
//! *common-successor reorderable* when every branch sends one arm to the
//! same block `C` and the other arm to the next branch (the last one to
//! the fall-out block `T`), each branch's block holds nothing but its
//! compare, and the compares read only registers (no memory, no side
//! effects). Such a chain arises from short-circuit `&&`/`||`
//! expressions over *different* variables — which the range-condition
//! machinery cannot touch.
//!
//! Any permutation of the branches is semantically equivalent: the
//! sequence reaches `C` iff some condition "exits" and `T` otherwise,
//! and pure compares cannot interfere with one another.
//!
//! Unlike range conditions, more than one branch may exit on the same
//! execution, so per-branch probabilities are not enough; the paper
//! proposes an array of counters over all outcome *combinations*
//! (reasonable for `n <= 7`). Profiling here does exactly that (see
//! [`br_ir::PlanKind::Outcomes`]), and selection minimizes the exact
//! expected cost over the joint distribution — exhaustively over all
//! permutations for small `n`, greedily by exit-probability otherwise.

use std::collections::HashSet;

use br_ir::{reverse_postorder, BlockId, Cond, Function, Inst, Operand, Terminator};

/// Maximum conditions profiled jointly (the paper suggests `n <= 7`).
pub const MAX_CONDS: usize = 7;

/// Permutations are searched exhaustively up to this many conditions.
const EXHAUSTIVE_LIMIT: usize = 6;

/// One branch of a common-successor sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommonCond {
    /// Compare operands.
    pub lhs: Operand,
    pub rhs: Operand,
    /// Branch condition.
    pub cond: Cond,
    /// `true` when the *taken* arm exits to the common successor.
    pub exit_taken: bool,
}

impl CommonCond {
    /// Whether this condition exits to the common successor for the
    /// given outcome of `cond.eval(lhs, rhs)`.
    pub fn exits(&self, holds: bool) -> bool {
        holds == self.exit_taken
    }
}

/// A detected common-successor sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct CommonSeq {
    /// Block of the first branch (may carry a prefix of straight-line
    /// code that stays put).
    pub head: BlockId,
    /// All blocks, in original order (`blocks[0] == head`).
    pub blocks: Vec<BlockId>,
    /// The conditions, in original order.
    pub conds: Vec<CommonCond>,
    /// The common successor `C`.
    pub common: BlockId,
    /// Where control continues when no condition exits.
    pub through: BlockId,
}

/// Detect common-successor sequences in `f`, skipping any block in
/// `exclude` (typically blocks already claimed by range-condition
/// sequences). Deterministic order.
pub fn detect_common(f: &Function, exclude: &HashSet<BlockId>) -> Vec<CommonSeq> {
    let needs_cc = needs_cc_on_entry(f);
    let mut marked: HashSet<BlockId> = exclude.clone();
    let mut out = Vec::new();
    for head in reverse_postorder(f) {
        if marked.contains(&head) {
            continue;
        }
        let Some(first) = cond_of(f, head) else {
            continue;
        };
        let (t, nt) = targets_of(f, head);
        // Try each arm as the common successor.
        for (common, mut next, exit_taken) in [(t, nt, true), (nt, t, false)] {
            if common == next {
                continue;
            }
            let mut blocks = vec![head];
            let mut conds = vec![CommonCond {
                exit_taken,
                ..first
            }];
            loop {
                if blocks.len() >= MAX_CONDS
                    || marked.contains(&next)
                    || blocks.contains(&next)
                    || next == common
                {
                    break;
                }
                // Later blocks must be nothing but their compare.
                let Some(c) = cond_of(f, next) else { break };
                if f.block(next).insts.len() != 1 {
                    break;
                }
                let (t2, nt2) = targets_of(f, next);
                let exit_taken2 = if t2 == common && nt2 != common {
                    true
                } else if nt2 == common && t2 != common {
                    false
                } else {
                    break;
                };
                blocks.push(next);
                conds.push(CommonCond {
                    exit_taken: exit_taken2,
                    ..c
                });
                next = if exit_taken2 { nt2 } else { t2 };
            }
            if conds.len() < 2 {
                continue;
            }
            // Exits must not consume condition codes set inside the
            // sequence, and the through-block must differ from C.
            if next == common || needs_cc[common.index()] || needs_cc[next.index()] {
                continue;
            }
            let seq = CommonSeq {
                head,
                blocks: blocks.clone(),
                conds,
                common,
                through: next,
            };
            marked.extend(blocks);
            out.push(seq);
            break;
        }
    }
    out
}

/// The compare of `b`, when `b` ends in a branch and its final
/// instruction is a register/immediate compare.
fn cond_of(f: &Function, b: BlockId) -> Option<CommonCond> {
    let block = f.block(b);
    let Terminator::Branch { cond, .. } = block.term else {
        return None;
    };
    match block.insts.last()? {
        Inst::Cmp { lhs, rhs } => Some(CommonCond {
            lhs: *lhs,
            rhs: *rhs,
            cond,
            exit_taken: true, // fixed by the caller
        }),
        _ => None,
    }
}

fn targets_of(f: &Function, b: BlockId) -> (BlockId, BlockId) {
    match f.block(b).term {
        Terminator::Branch {
            taken, not_taken, ..
        } => (taken, not_taken),
        _ => unreachable!("caller checked"),
    }
}

/// Blocks whose behaviour depends on condition codes live at entry
/// (duplicated from `detect`; cheap).
fn needs_cc_on_entry(f: &Function) -> Vec<bool> {
    let n = f.blocks.len();
    let mut needs = vec![false; n];
    loop {
        let mut changed = false;
        for b in (0..n).rev() {
            let block = &f.blocks[b];
            let writes_cc = block
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Cmp { .. } | Inst::Call { .. }));
            let val = if writes_cc {
                false
            } else {
                matches!(block.term, Terminator::Branch { .. })
                    || block.term.successors().iter().any(|s| needs[s.index()])
            };
            if val != needs[b] {
                needs[b] = val;
                changed = true;
            }
        }
        if !changed {
            return needs;
        }
    }
}

/// Expected dynamic cost (instructions) of evaluating the sequence in
/// order `perm` under the joint outcome distribution `counts`
/// (`counts[mask]`, bit `i` = condition `i` held). Each condition costs
/// 2 (compare + branch); evaluation stops at the first exit.
pub fn expected_cost(conds: &[CommonCond], counts: &[u64], perm: &[usize]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (mask, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let mut cost = 0.0;
        for &i in perm {
            cost += 2.0;
            if conds[i].exits(mask & (1 << i) != 0) {
                break;
            }
        }
        acc += cost * count as f64;
    }
    acc / total as f64
}

/// Choose the evaluation order minimizing [`expected_cost`]:
/// exhaustively for `n <=` `EXHAUSTIVE_LIMIT` (6), otherwise greedily by
/// decreasing marginal exit probability (all costs are equal here, so
/// `p/c` order reduces to `p` order).
pub fn select_common_order(conds: &[CommonCond], counts: &[u64]) -> Vec<usize> {
    let n = conds.len();
    if n <= EXHAUSTIVE_LIMIT {
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut perm: Vec<usize> = (0..n).collect();
        permute(&mut perm, 0, &mut |p| {
            let cost = expected_cost(conds, counts, p);
            if best.as_ref().is_none_or(|(b, _)| cost < *b - 1e-12) {
                best = Some((cost, p.to_vec()));
            }
        });
        best.expect("n >= 1").1
    } else {
        let total: u64 = counts.iter().sum::<u64>().max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let exit_prob = |i: usize| -> f64 {
            counts
                .iter()
                .enumerate()
                .filter(|(mask, _)| conds[i].exits(mask & (1 << i) != 0))
                .map(|(_, &c)| c)
                .sum::<u64>() as f64
                / total as f64
        };
        order.sort_by(|&a, &b| {
            exit_prob(b)
                .partial_cmp(&exit_prob(a))
                .expect("finite")
                .then(a.cmp(&b))
        });
        order
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Result of applying a common-successor reordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommonApplyResult {
    /// Entry of the replicated chain.
    pub entry: BlockId,
    /// Branches emitted (== number of conditions).
    pub branches: u32,
    /// Expected cost of the original order (per head execution).
    pub original_cost: f64,
    /// Expected cost of the selected order.
    pub new_cost: f64,
}

/// Emit the reordered chain and rewire the head, mirroring
/// [`crate::apply::apply_reordering`]: the head keeps its prefix and
/// jumps to the replica; originals die in clean-up.
pub fn apply_common_reordering(
    f: &mut Function,
    seq: &CommonSeq,
    order: &[usize],
) -> CommonApplyResult {
    debug_assert_eq!(order.len(), seq.conds.len());
    // Allocate chain blocks.
    let chain: Vec<BlockId> = order
        .iter()
        .map(|_| f.add_block(br_ir::Block::new(Terminator::Return(None))))
        .collect();
    for (pos, &idx) in order.iter().enumerate() {
        let c = &seq.conds[idx];
        let next = chain.get(pos + 1).copied().unwrap_or(seq.through);
        let block = f.block_mut(chain[pos]);
        block.insts.push(Inst::Cmp {
            lhs: c.lhs,
            rhs: c.rhs,
        });
        // Normalize so the fall-through edge continues the chain.
        let cond = if c.exit_taken {
            c.cond
        } else {
            c.cond.negate()
        };
        block.term = Terminator::Branch {
            cond,
            taken: seq.common,
            not_taken: next,
        };
    }
    // Rewire the head in place: keep the prefix, drop the compare.
    let head = f.block_mut(seq.head);
    let popped = head.insts.pop();
    debug_assert!(matches!(popped, Some(Inst::Cmp { .. })));
    head.term = Terminator::Jump(chain[0]);
    CommonApplyResult {
        entry: chain[0],
        branches: order.len() as u32,
        original_cost: 0.0,
        new_cost: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{FuncBuilder, Reg};

    /// if (a == 0 && b == 2 && x < 7) T; else C   — three conditions on
    /// three different registers with common "else".
    fn and_chain() -> Function {
        let mut b = FuncBuilder::new("and3");
        let a = b.new_reg();
        let b2 = b.new_reg();
        let x = b.new_reg();
        b.set_param_regs(vec![a, b2, x]);
        let e = b.entry();
        let c2 = b.new_block();
        let c3 = b.new_block();
        let t = b.new_block();
        let c = b.new_block();
        b.cmp_branch(e, a, 0i64, Cond::Ne, c, c2);
        b.cmp_branch(c2, b2, 2i64, Cond::Ne, c, c3);
        b.cmp_branch(c3, x, 7i64, Cond::Ge, c, t);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(c, Terminator::Return(Some(Operand::Imm(0))));
        b.finish()
    }

    #[test]
    fn detects_and_chain() {
        let f = and_chain();
        let seqs = detect_common(&f, &HashSet::new());
        assert_eq!(seqs.len(), 1);
        let s = &seqs[0];
        assert_eq!(s.blocks.len(), 3);
        assert_eq!(s.common, BlockId(4));
        assert_eq!(s.through, BlockId(3));
        assert!(s.conds.iter().all(|c| c.exit_taken));
    }

    #[test]
    fn excluded_blocks_are_skipped() {
        let f = and_chain();
        let mut exclude = HashSet::new();
        exclude.insert(BlockId(0));
        // Head excluded: the remaining two-block chain is still found.
        let seqs = detect_common(&f, &exclude);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].blocks.len(), 2);
    }

    #[test]
    fn mixed_polarity_is_detected() {
        // if (a == 0 || b == 2) C; else T  — 'or' chain exits on taken.
        let mut b = FuncBuilder::new("or2");
        let a = b.new_reg();
        let b2 = b.new_reg();
        b.set_param_regs(vec![a, b2]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let c = b.new_block();
        b.cmp_branch(e, a, 0i64, Cond::Eq, c, c2);
        b.cmp_branch(c2, b2, 2i64, Cond::Eq, c, t);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(c, Terminator::Return(Some(Operand::Imm(0))));
        let f = b.finish();
        let seqs = detect_common(&f, &HashSet::new());
        assert_eq!(seqs.len(), 1);
        assert!(seqs[0].conds.iter().all(|cc| cc.exit_taken));
    }

    #[test]
    fn reg_reg_compares_are_allowed() {
        let mut b = FuncBuilder::new("rr");
        let a = b.new_reg();
        let b2 = b.new_reg();
        let x = b.new_reg();
        b.set_param_regs(vec![a, b2, x]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let c = b.new_block();
        b.cmp_branch(e, a, b2, Cond::Lt, c, c2);
        b.cmp_branch(c2, b2, x, Cond::Lt, c, t);
        b.set_term(t, Terminator::Return(None));
        b.set_term(c, Terminator::Return(None));
        let f = b.finish();
        assert_eq!(detect_common(&f, &HashSet::new()).len(), 1);
    }

    #[test]
    fn blocks_with_extra_instructions_stop_the_chain() {
        let mut f = and_chain();
        // Give c2 a side instruction: chain must stop before it.
        f.blocks[1].insts.insert(
            0,
            Inst::Copy {
                dst: Reg(0),
                src: Operand::Imm(9),
            },
        );
        let seqs = detect_common(&f, &HashSet::new());
        // head..c2 pair breaks (c2 impure as a *later* block); but the
        // chain starting at c2 (prefix allowed at head) continues to c3.
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].head, BlockId(1));
    }

    #[test]
    fn expected_cost_walks_until_exit() {
        let conds = [
            CommonCond {
                lhs: Operand::Reg(Reg(0)),
                rhs: Operand::Imm(0),
                cond: Cond::Ne,
                exit_taken: true,
            },
            CommonCond {
                lhs: Operand::Reg(Reg(1)),
                rhs: Operand::Imm(2),
                cond: Cond::Ne,
                exit_taken: true,
            },
        ];
        // Outcome 0b01: cond0 holds (exits), cond1 not. Outcome 0b10:
        // cond1 exits. Equal weight.
        let counts = [0u64, 10, 10, 0];
        // Order [0,1]: mask 01 stops after 1 test (2), mask 10 takes 2
        // tests (4) because cond0 does not exit there ... cond0 holds in
        // mask's bit0: for mask 0b10, bit0 unset -> cond0 does not hold
        // -> no exit -> evaluate cond1 (exits). So cost = (2+4)/2 = 3.
        assert!((expected_cost(&conds, &counts, &[0, 1]) - 3.0).abs() < 1e-12);
        assert!((expected_cost(&conds, &counts, &[1, 0]) - 3.0).abs() < 1e-12);
        // Skewed: mask 0b10 dominates -> testing cond1 first is cheaper.
        let counts = [0u64, 1, 99, 0];
        assert!(expected_cost(&conds, &counts, &[1, 0]) < expected_cost(&conds, &counts, &[0, 1]));
    }

    #[test]
    fn selection_picks_the_cheapest_permutation() {
        let conds: Vec<CommonCond> = (0..3)
            .map(|i| CommonCond {
                lhs: Operand::Reg(Reg(i)),
                rhs: Operand::Imm(0),
                cond: Cond::Ne,
                exit_taken: true,
            })
            .collect();
        // cond2 exits in almost every execution.
        let mut counts = vec![0u64; 8];
        counts[0b100] = 90;
        counts[0b001] = 5;
        counts[0b010] = 5;
        let order = select_common_order(&conds, &counts);
        assert_eq!(order[0], 2);
        let best = expected_cost(&conds, &counts, &order);
        // No permutation beats it.
        for perm in [
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ] {
            assert!(expected_cost(&conds, &counts, &perm) >= best - 1e-12);
        }
    }

    #[test]
    fn greedy_fallback_for_large_n() {
        let conds: Vec<CommonCond> = (0..7)
            .map(|i| CommonCond {
                lhs: Operand::Reg(Reg(i)),
                rhs: Operand::Imm(0),
                cond: Cond::Ne,
                exit_taken: true,
            })
            .collect();
        let mut counts = vec![0u64; 128];
        counts[1 << 6] = 50;
        counts[1 << 0] = 10;
        let order = select_common_order(&conds, &counts);
        assert_eq!(order.len(), 7);
        assert_eq!(order[0], 6, "hottest exit first");
    }

    #[test]
    fn apply_preserves_semantics() {
        use br_vm::{run, VmOptions};
        // main drives the and-chain with values read from input.
        let mut m = br_ir::Module::new();
        let chain = m.add_function(and_chain());
        let mut b = FuncBuilder::new("main");
        let a = b.new_reg();
        let x = b.new_reg();
        let y = b.new_reg();
        let r = b.new_reg();
        let acc = b.new_reg();
        let e = b.entry();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, acc, 0i64);
        b.set_term(e, Terminator::Jump(body));
        for dst in [a, x, y] {
            b.push(
                body,
                Inst::Call {
                    dst: Some(dst),
                    callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
                    args: vec![],
                },
            );
        }
        b.push(
            body,
            Inst::Call {
                dst: Some(r),
                callee: br_ir::Callee::Func(chain),
                args: vec![Operand::Reg(a), Operand::Reg(x), Operand::Reg(y)],
            },
        );
        b.bin(body, br_ir::BinOp::Add, acc, acc, r);
        b.cmp_branch(body, a, -1i64, Cond::Eq, done, body);
        b.set_term(done, Terminator::Return(Some(Operand::Reg(acc))));
        m.main = Some(m.add_function(b.finish()));

        let input: Vec<u8> = (0..60).map(|i| (i * 7 % 11) as u8).collect();
        let base = run(&m, &input, &VmOptions::default()).unwrap();

        let mut m2 = m.clone();
        let f = m2.function_mut(chain);
        let seq = detect_common(f, &HashSet::new()).remove(0);
        // Reorder with an arbitrary permutation; semantics must hold.
        for order in [vec![2, 0, 1], vec![1, 2, 0], vec![0, 1, 2]] {
            let mut m3 = m.clone();
            let f = m3.function_mut(chain);
            apply_common_reordering(f, &seq, &order);
            br_opt::cleanup_function(f);
            br_ir::verify_module(&m3).unwrap();
            let got = run(&m3, &input, &VmOptions::default()).unwrap();
            assert_eq!(got.exit, base.exit, "order {order:?}");
        }
        let _ = m2;
    }
}
