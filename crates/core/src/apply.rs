//! Applying the transformation to the control flow (the paper's
//! Section 8, Figure 10): the sequence is replicated in reordered form,
//! the predecessors of the original head are redirected to the replica,
//! and dead-code elimination reclaims the unreferenced originals.
//!
//! Redirecting is done by rewriting the head *in place*: its pre-compare
//! prefix stays (entering the sequence still runs it), the compare is
//! dropped, and the head then jumps to the replica — every predecessor,
//! including fall-through ones, follows automatically, while entries into
//! the *middle* of the original sequence keep their original code.

use br_ir::{Function, Inst, Terminator};

use crate::detect::DetectedSequence;
use crate::emit::{emit_reordered, EmitResult};
use crate::order::{OrderItem, Ordering};

/// Splice the reordered replica of `seq` into `f`.
///
/// The caller is expected to run the post-reordering clean-up pipeline
/// (`br_opt::cleanup_function`) once all of the function's sequences have
/// been applied; block ids stay valid until then, because this only
/// appends blocks and rewrites the head in place.
pub fn apply_reordering(
    f: &mut Function,
    seq: &DetectedSequence,
    items: &[OrderItem],
    ordering: &Ordering,
) -> EmitResult {
    let result = emit_reordered(f, seq, items, ordering);
    let head = f.block_mut(seq.head);
    let popped = head.insts.pop();
    debug_assert!(
        matches!(popped, Some(Inst::Cmp { .. })),
        "sequence head must end in its compare"
    );
    head.term = Terminator::Jump(result.entry);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_sequences;
    use crate::order::select_ordering;
    use crate::profile::{order_items, SequenceProfile};
    use br_ir::{BlockId, Cond, FuncBuilder, Operand, Reg};
    use br_vm::{run, VmOptions};

    /// Classify-loop module:
    /// while ((c = getchar()) != EOF) count[class(c)]++, where class is
    /// an if/else chain. Returns a checksum.
    fn classify_module() -> br_ir::Module {
        let mut m = br_ir::Module::new();
        let mut b = FuncBuilder::new("main");
        let c = b.new_reg();
        let acc = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let c2 = b.new_block();
        let c3 = b.new_block();
        let t_space = b.new_block();
        let t_nl = b.new_block();
        let t_other = b.new_block();
        let quit = b.new_block();
        b.copy(e, acc, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.push(
            head,
            Inst::Call {
                dst: Some(c),
                callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
                args: vec![],
            },
        );
        // Sequence: c == -1 -> quit; c == 32 -> t_space; c == 10 -> t_nl;
        // default t_other.
        b.cmp_branch(head, c, -1i64, Cond::Eq, quit, c2);
        b.cmp_branch(c2, c, 32i64, Cond::Eq, t_space, c3);
        b.cmp_branch(c3, c, 10i64, Cond::Eq, t_nl, t_other);
        b.bin(t_space, br_ir::BinOp::Add, acc, acc, 1i64);
        b.set_term(t_space, Terminator::Jump(head));
        b.bin(t_nl, br_ir::BinOp::Add, acc, acc, 100i64);
        b.set_term(t_nl, Terminator::Jump(head));
        b.bin(t_other, br_ir::BinOp::Add, acc, acc, 10000i64);
        b.set_term(t_other, Terminator::Jump(head));
        b.set_term(quit, Terminator::Return(Some(Operand::Reg(acc))));
        m.main = Some(m.add_function(b.finish()));
        m
    }

    fn apply_with_profile(m: &br_ir::Module, counts: Vec<u64>) -> br_ir::Module {
        let mut out = m.clone();
        let f = &mut out.functions[0];
        let seqs = detect_sequences(f);
        assert_eq!(seqs.len(), 1);
        let seq = &seqs[0];
        let items = order_items(seq, &SequenceProfile { counts });
        let candidates: Vec<BlockId> = {
            let mut t: Vec<BlockId> = seq.conds.iter().map(|c| c.target).collect();
            t.push(seq.default_target);
            t.sort();
            t.dedup();
            t
        };
        let ordering = select_ordering(
            &items,
            &candidates,
            &vec![true; items.len()],
            seq.default_target,
        );
        apply_reordering(f, seq, &items, &ordering);
        br_opt::cleanup_function(f);
        br_ir::verify_module(&out).unwrap();
        out
    }

    #[test]
    fn semantics_preserved_for_all_profiles() {
        let m = classify_module();
        let input = b"ab cd\nef  gh\n\n!";
        let base = run(&m, input, &VmOptions::default()).unwrap();
        // Whatever the profile says (even a wildly wrong one), behaviour
        // must not change. Plan ranges: [-1], [32], [10] explicit, then
        // defaults [..-2], [0..9], [11..31], [33..] — 7 counts.
        let shapes: Vec<Vec<u64>> = vec![
            vec![1, 100, 10, 0, 0, 5, 50],
            vec![100, 1, 1, 0, 0, 1, 1],
            vec![0, 0, 0, 0, 0, 0, 1000],
            vec![5, 5, 5, 5, 5, 5, 5],
        ];
        for counts in shapes {
            let reordered = apply_with_profile(&m, counts.clone());
            let got = run(&reordered, input, &VmOptions::default()).unwrap();
            assert_eq!(got.exit, base.exit, "profile {counts:?} broke semantics");
            assert_eq!(got.output, base.output);
        }
    }

    #[test]
    fn skewed_profile_reduces_dynamic_branches() {
        let m = classify_module();
        // Input dominated by "other" characters: the original order
        // tests EOF, space and newline before reaching the default.
        let input: Vec<u8> = std::iter::repeat_n(b'x', 300).chain(*b" \n").collect();
        let base = run(&m, &input, &VmOptions::default()).unwrap();
        // Train on the same distribution.
        let counts = vec![1, 1, 1, 0, 0, 0, 300];
        let reordered = apply_with_profile(&m, counts);
        let got = run(&reordered, &input, &VmOptions::default()).unwrap();
        assert_eq!(got.exit, base.exit);
        assert!(
            got.stats.cond_branches < base.stats.cond_branches,
            "branches should drop: {} -> {}",
            base.stats.cond_branches,
            got.stats.cond_branches
        );
        assert!(
            got.stats.insts < base.stats.insts,
            "instructions should drop: {} -> {}",
            base.stats.insts,
            got.stats.insts
        );
    }

    #[test]
    fn head_prefix_is_preserved() {
        let m = classify_module();
        let reordered = apply_with_profile(&m, vec![1, 1, 1, 0, 0, 0, 10]);
        // The getchar call (head prefix) must still execute exactly once
        // per iteration: output/exit already checked; also ensure the
        // head block kept its call.
        let f = &reordered.functions[0];
        let has_getchar_head = f.blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
                        ..
                    }
                )
            })
        });
        assert!(has_getchar_head);
        let _ = Reg(0);
    }
}
