//! Producing the profile information (the paper's Section 5).
//!
//! All instrumentation for a sequence is inserted at its head: a single
//! probe records which of the sequence's ranges — explicit *and* default
//! — contains the branch variable, exactly when the head is executed.

use br_ir::{BlockId, FuncId, Inst, Module, ProfilePlan, SeqId};

use crate::detect::{detect_sequences, DetectedSequence};
use crate::order::{ItemSource, OrderItem};
use crate::range::{complement_cover, Range};

/// The ranges instrumented for one sequence, in canonical order:
/// explicit ranges in condition order, then default ranges ascending.
/// Profile counts and [`OrderItem`]s use this same indexing.
pub fn plan_ranges(seq: &DetectedSequence) -> Vec<(Range, ItemSource, BlockId)> {
    let explicit = seq.explicit_ranges();
    let mut out: Vec<(Range, ItemSource, BlockId)> = explicit
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, ItemSource::Explicit(i), seq.conds[i].target))
        .collect();
    for (i, r) in complement_cover(&explicit).into_iter().enumerate() {
        out.push((r, ItemSource::Default(i), seq.default_target));
    }
    out
}

/// Exit counts for one sequence, indexed like [`plan_ranges`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequenceProfile {
    /// Executions of the head where the variable fell in each range.
    pub counts: Vec<u64>,
}

impl SequenceProfile {
    /// Total head executions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exit probabilities (Definition 9); all zero when never executed.
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            vec![0.0; self.counts.len()]
        } else {
            self.counts
                .iter()
                .map(|&c| c as f64 / total as f64)
                .collect()
        }
    }
}

/// Build the [`OrderItem`]s of a sequence from its profile.
pub fn order_items(seq: &DetectedSequence, profile: &SequenceProfile) -> Vec<OrderItem> {
    let ranges = plan_ranges(seq);
    assert_eq!(
        ranges.len(),
        profile.counts.len(),
        "profile shape must match the sequence"
    );
    let probs = profile.probabilities();
    ranges
        .into_iter()
        .zip(probs)
        .map(|((range, source, target), prob)| OrderItem {
            range,
            target,
            prob,
            cost: OrderItem::cost_of(&range),
            source,
        })
        .collect()
}

/// Detect the sequences of every function of a module, in deterministic
/// (function, reverse-postorder-head) order.
pub fn detect_all(module: &Module) -> Vec<(FuncId, DetectedSequence)> {
    let mut out = Vec::new();
    for (i, f) in module.functions.iter().enumerate() {
        for seq in detect_sequences(f) {
            out.push((FuncId(i as u32), seq));
        }
    }
    out
}

/// Insert profiling probes for the given detections (the instrumented
/// executable of the paper's Figure 2). Returns the sequence ids, in the
/// same order as `detections`; running the module then yields
/// `RunOutcome::profiles` indexed by those ids.
pub fn instrument_module(
    module: &mut Module,
    detections: &[(FuncId, DetectedSequence)],
) -> Vec<SeqId> {
    let mut ids = Vec::with_capacity(detections.len());
    for (fid, seq) in detections {
        let ranges: Vec<(i64, i64)> = plan_ranges(seq)
            .iter()
            .map(|(r, _, _)| (r.lo, r.hi))
            .collect();
        let seq_id = module.add_profile_plan(ProfilePlan {
            func: *fid,
            head: seq.head,
            kind: br_ir::PlanKind::Ranges(ranges),
        });
        let head = module.function_mut(*fid).block_mut(seq.head);
        // The compare is the final instruction; probe right before it.
        let at = head.insts.len() - 1;
        debug_assert!(matches!(head.insts[at], Inst::Cmp { .. }));
        head.insts.insert(
            at,
            Inst::ProfileRanges {
                seq: seq_id,
                var: seq.var,
            },
        );
        ids.push(seq_id);
    }
    ids
}

/// Extract per-sequence profiles from a run of the instrumented module.
pub fn profiles_from_run(ids: &[SeqId], run_profiles: &[Vec<u64>]) -> Vec<SequenceProfile> {
    ids.iter()
        .map(|id| SequenceProfile {
            counts: run_profiles[id.index()].clone(),
        })
        .collect()
}

/// The character-value domain assumed by the static heuristic.
const STATIC_DOMAIN: Range = Range { lo: -1, hi: 127 };

/// A synthetic *static* profile in the spirit of the static search
/// heuristics the paper cites (Spuler): no training run — assume the
/// branch variable is uniformly distributed over a character-like domain
/// (`-1..=127`, EOF included) and weight each range by how many of those
/// values it covers. Ranges outside the domain get a unit weight so they
/// sort last rather than vanish.
pub fn static_profile(seq: &DetectedSequence) -> SequenceProfile {
    let counts = plan_ranges(seq)
        .iter()
        .map(|(r, _, _)| {
            let lo = r.lo.max(STATIC_DOMAIN.lo);
            let hi = r.hi.min(STATIC_DOMAIN.hi);
            if lo <= hi {
                (hi - lo + 1) as u64
            } else {
                1
            }
        })
        .collect();
    SequenceProfile { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand, Terminator};
    use br_vm::{run, VmOptions};

    /// if (v == 10) T1; else if (v >= 100) T2; else TD — driven by input.
    fn test_module() -> br_ir::Module {
        let mut m = br_ir::Module::new();
        let mut b = FuncBuilder::new("main");
        let v = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.set_term(e, Terminator::Jump(head));
        b.push(
            head,
            Inst::Call {
                dst: Some(v),
                callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
                args: vec![],
            },
        );
        b.cmp_branch(head, v, 10i64, Cond::Eq, t1, c2);
        b.cmp_branch(c2, v, 100i64, Cond::Ge, t2, td);
        b.set_term(t1, Terminator::Jump(head));
        b.set_term(t2, Terminator::Jump(head));
        // td: exit when v == -1, else loop.
        let quit = b.new_block();
        b.cmp_branch(td, v, -1i64, Cond::Eq, quit, head);
        b.set_term(quit, Terminator::Return(Some(Operand::Imm(0))));
        m.main = Some(m.add_function(b.finish()));
        m
    }

    #[test]
    fn plan_ranges_cover_and_tag() {
        let m = test_module();
        let dets = detect_all(&m);
        assert_eq!(dets.len(), 1);
        let ranges = plan_ranges(&dets[0].1);
        // The td block's own compare (v == -1) extends the sequence, so
        // explicit = [10], [100..], [-1]; defaults fill the rest.
        assert_eq!(ranges.len(), 6);
        assert_eq!(ranges[0].0, Range::single(10));
        assert_eq!(ranges[1].0, Range::from(100));
        assert_eq!(ranges[2].0, Range::single(-1));
        assert_eq!(ranges[3].0, Range::up_to(-2));
        assert_eq!(ranges[4].0, Range::new(0, 9).unwrap());
        assert_eq!(ranges[5].0, Range::new(11, 99).unwrap());
        assert!(matches!(ranges[3].1, ItemSource::Default(0)));
    }

    #[test]
    fn instrumented_run_counts_exits() {
        let m = test_module();
        let dets = detect_all(&m);
        let mut instrumented = m.clone();
        let ids = instrument_module(&mut instrumented, &dets);
        br_ir::verify_module(&instrumented).unwrap();
        // input: 10 seen twice, 120 once, 50 once, 5 once, then EOF(-1).
        let input = [10u8, 120, 10, 50, 5];
        let out = run(&instrumented, &input, &VmOptions::default()).unwrap();
        let profiles = profiles_from_run(&ids, &out.profiles);
        assert_eq!(profiles.len(), 1);
        // counts over [10], [100..], [-1], [..-2], [0..9], [11..99]:
        // 10 twice, 120 once, EOF once, nothing below -1, 5 once, 50 once.
        assert_eq!(profiles[0].counts, vec![2, 1, 1, 0, 1, 1]);
        assert_eq!(profiles[0].total(), 6);
        let p = profiles[0].probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probes_do_not_change_observable_behaviour_or_counts() {
        let m = test_module();
        let dets = detect_all(&m);
        let mut instrumented = m.clone();
        instrument_module(&mut instrumented, &dets);
        let input = [10u8, 120, 10, 50, 5];
        let plain = run(&m, &input, &VmOptions::default()).unwrap();
        let probed = run(&instrumented, &input, &VmOptions::default()).unwrap();
        assert_eq!(plain.output, probed.output);
        assert_eq!(plain.exit, probed.exit);
        assert_eq!(plain.stats, probed.stats, "probes must be free");
    }

    #[test]
    fn order_items_match_profile_shape() {
        let m = test_module();
        let dets = detect_all(&m);
        let profile = SequenceProfile {
            counts: vec![6, 1, 1, 0, 1, 1],
        };
        let items = order_items(&dets[0].1, &profile);
        assert_eq!(items.len(), 6);
        assert!((items[0].prob - 0.6).abs() < 1e-12);
        assert_eq!(items[0].cost, 2.0);
        assert_eq!(items[4].cost, 4.0, "bounded default range needs 2 branches");
        assert_eq!(items[5].cost, 4.0);
    }

    #[test]
    fn zero_profile_probabilities_are_zero() {
        let p = SequenceProfile { counts: vec![0, 0] };
        assert_eq!(p.probabilities(), vec![0.0, 0.0]);
    }
}
