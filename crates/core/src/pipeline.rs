//! The two-pass driver (the paper's Figure 2): detect sequences on the
//! optimized module, profile them on a training input, select the best
//! ordering per sequence, apply the beneficial ones, and re-run the
//! clean-up optimizations.

use br_ir::{BlockId, FuncId, Module};
use br_layout::{EdgeWeights, LayoutMode, LayoutParams};
use br_vm::{Trap, VmOptions};

use crate::common::{
    apply_common_reordering, detect_common, expected_cost, select_common_order, CommonSeq,
};
use crate::detect::DetectedSequence;
use crate::dispatch::{check_dispatch, plan_dispatch, DispatchStructure};
use crate::order::{evaluate_cost, exhaustive_ordering, select_ordering, OrderItem, Ordering};
use crate::profile::{
    detect_all, instrument_module, order_items, profiles_from_run, SequenceProfile,
};
use crate::validate::{
    certify_sequence, check_ordering, validate_sequence, SequenceCertificate, Stage, StageFailure,
    ValidationSummary,
};

/// Options for the reordering pipeline.
#[derive(Clone, Debug, Default)]
pub struct ReorderOptions {
    /// VM configuration for the training (profiling) run.
    pub vm: VmOptions,
    /// Use the exhaustive ordering search instead of the paper's greedy
    /// selection (the paper implemented both; an ablation knob here).
    pub exhaustive: bool,
    /// Also reorder branch sequences with a common successor (the
    /// paper's Section 10 extension). Off by default, matching the
    /// paper's evaluation, which covers range conditions only.
    pub common_successor: bool,
    /// Replace the training profile with the static uniform-domain
    /// heuristic (no training run is consulted) — the Spuler-style
    /// baseline the paper cites, as an ablation of the value of real
    /// profile data.
    pub static_heuristic: bool,
    /// Run the translation validator over every applied sequence and
    /// record the result in [`ReorderReport::validation`]. Independent
    /// of this flag, debug builds always validate (as an assertion), so
    /// tests catch semantic breaks with a stage-naming diagnostic.
    pub validate: bool,
    /// Upgrade validation to *certification*: every committed range
    /// reordering is proven with the certifying prover
    /// (`br_analysis::prove_sequence`) and its proof certificate
    /// recorded in the report, ready for independent re-checking with
    /// `br_analysis::cert::check`. Implies [`ReorderOptions::validate`].
    pub certify: bool,
    /// Heuristic Set IV: besides the chain orderings, also plan a
    /// DP-optimal comparison tree and (on dense windows) a jump table
    /// per sequence, and deploy whichever of the three candidates has
    /// the lowest expected cost under the sequence's profile. Ties keep
    /// the chain, so Set IV never plans worse than Set III.
    pub opt_tree: bool,
    /// Which block-layout pass to run after clean-up:
    /// [`LayoutMode::Greedy`] (the default) keeps the profile-blind
    /// fall-through chainer; [`LayoutMode::ExtTsp`] re-profiles the
    /// cleaned module on the training inputs and maximizes the ext-TSP
    /// objective on top of the greedy order (never scoring below it);
    /// [`LayoutMode::Off`] skips repositioning entirely (ablation
    /// baseline). Every ext-TSP permutation is checked by
    /// `br_analysis::check_layout` when validation is on.
    pub layout: LayoutMode,
}

/// What happened to one detected sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum SequenceOutcome {
    /// The sequence was restructured.
    Reordered {
        /// Branches in the replicated sequence (often more than the
        /// original: default ranges made explicit).
        new_branches: u32,
        /// Compares emitted (lower than branches when redundant
        /// comparisons were eliminated).
        new_compares: u32,
        /// Estimated per-execution cost of the original ordering.
        original_cost: f64,
        /// Estimated per-execution cost of the selected ordering.
        new_cost: f64,
    },
    /// Profile said the sequence never executed (the paper's most common
    /// reason a sequence was not reordered).
    NeverExecuted,
    /// No ordering beat the original's estimated cost.
    NoImprovement,
}

/// Which transformation a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SequenceKind {
    /// A range-condition sequence (the paper's core transformation).
    RangeConditions,
    /// A common-successor sequence (the Section 10 extension).
    CommonSuccessor,
}

/// Per-sequence record in the report.
#[derive(Clone, Debug, PartialEq)]
pub struct SequenceRecord {
    /// Which transformation detected the sequence.
    pub kind: SequenceKind,
    /// Which dispatch structure was deployed ([`DispatchStructure::Chain`]
    /// unless Set IV selected a tree or a table for this sequence).
    pub structure: DispatchStructure,
    /// Function the sequence lives in.
    pub func: FuncId,
    /// Head block (in the pre-transformation module).
    pub head: BlockId,
    /// Branches in the original sequence.
    pub original_branches: u32,
    /// Conditions in the original sequence.
    pub conditions: usize,
    /// Head executions during training.
    pub training_executions: u64,
    /// The outcome.
    pub outcome: SequenceOutcome,
}

/// Result of the reordering pass.
#[derive(Clone, Debug)]
pub struct ReorderReport {
    /// The transformed module, cleaned up and laid out.
    pub module: Module,
    /// One record per detected sequence.
    pub sequences: Vec<SequenceRecord>,
    /// Translation-validation summary; populated when
    /// [`ReorderOptions::validate`] is set (and always in debug builds).
    pub validation: Option<ValidationSummary>,
}

impl ReorderReport {
    /// Number of sequences that were actually reordered.
    pub fn reordered_count(&self) -> usize {
        self.sequences
            .iter()
            .filter(|s| matches!(s.outcome, SequenceOutcome::Reordered { .. }))
            .count()
    }

    /// `(avg original, avg reordered)` branch counts over the reordered
    /// sequences (the paper's "Avg Seq Len" columns).
    pub fn avg_lengths(&self) -> Option<(f64, f64)> {
        let mut n = 0u32;
        let (mut orig, mut new) = (0u64, 0u64);
        for s in &self.sequences {
            if let SequenceOutcome::Reordered { new_branches, .. } = s.outcome {
                n += 1;
                orig += s.original_branches as u64;
                new += new_branches as u64;
            }
        }
        (n > 0).then(|| (orig as f64 / n as f64, new as f64 / n as f64))
    }
}

/// Run the full profile-and-reorder pipeline on an *optimized* module.
///
/// `optimized` should already have gone through [`br_opt::optimize`]; the
/// paper applies all conventional optimizations before reordering.
///
/// ```
/// use br_minic::{compile, Options};
/// use br_reorder::{reorder_module, ReorderOptions};
///
/// let mut m = compile(
///     "int main() { int c; c = getchar(); while (c != -1) {
///          if (c == 32) putchar(95); else if (c == 10) putchar(59);
///          else putchar(c); c = getchar(); } return 0; }",
///     &Options::default(),
/// ).expect("compiles");
/// br_opt::optimize(&mut m);
/// let report = reorder_module(&m, b"mostly plain letters here", &ReorderOptions::default())
///     .expect("training runs");
/// assert!(report.reordered_count() >= 1);
/// ```
///
/// # Errors
///
/// Returns the training run's [`Trap`] if the instrumented program does
/// not terminate normally on `training_input`.
pub fn reorder_module(
    optimized: &Module,
    training_input: &[u8],
    options: &ReorderOptions,
) -> Result<ReorderReport, Trap> {
    reorder_module_with_inputs(optimized, &[training_input], options)
}

/// [`reorder_module`] with several training inputs: profiles are summed
/// across the runs. The paper notes that multiple sets of profile data
/// give better coverage — cold sequences exercised by *any* input get
/// reordered instead of being skipped as never-executed.
///
/// # Errors
///
/// Returns the first training run's [`Trap`], if any.
pub fn reorder_module_with_inputs(
    optimized: &Module,
    training_inputs: &[&[u8]],
    options: &ReorderOptions,
) -> Result<ReorderReport, Trap> {
    let detections = detect_all(optimized);
    // Common-successor sequences may not overlap range sequences; the
    // range transformation has priority (it is the paper's evaluation).
    let common_detections: Vec<(FuncId, CommonSeq)> = if options.common_successor {
        detect_all_common(optimized, &detections)
    } else {
        Vec::new()
    };
    // Pass 1: instrumented executable + one training run per input,
    // with counters summed.
    let mut instrumented = optimized.clone();
    let ids = instrument_module(&mut instrumented, &detections);
    let common_ids = instrument_common(&mut instrumented, &common_detections);
    let mut merged: Vec<Vec<u64>> = instrumented
        .profile_plans
        .iter()
        .map(|p| vec![0; p.counter_count()])
        .collect();
    for input in training_inputs {
        let outcome = br_vm::run(&instrumented, input, &options.vm)?;
        for (acc, got) in merged.iter_mut().zip(&outcome.profiles) {
            for (a, g) in acc.iter_mut().zip(got) {
                *a += g;
            }
        }
    }
    let profiles = profiles_from_run(&ids, &merged);

    // Pass 2: per-sequence selection and application.
    let do_validate = options.validate || options.certify || cfg!(debug_assertions);
    let mut summary = ValidationSummary::default();
    let mut module = optimized.clone();
    let mut sequences = Vec::with_capacity(detections.len());
    for ((fid, seq), trained) in detections.iter().zip(&profiles) {
        let static_prof;
        let profile = if options.static_heuristic {
            static_prof = crate::profile::static_profile(seq);
            &static_prof
        } else {
            trained
        };
        let mut record = SequenceRecord {
            kind: SequenceKind::RangeConditions,
            structure: DispatchStructure::Chain,
            func: *fid,
            head: seq.head,
            original_branches: seq.branch_len(),
            conditions: seq.conds.len(),
            training_executions: trained.total(),
            outcome: SequenceOutcome::NeverExecuted,
        };
        if profile.total() == 0 || (!options.static_heuristic && trained.total() == 0) {
            sequences.push(record);
            continue;
        }
        let SequencePlan {
            items,
            ordering,
            original_cost,
        } = plan_for_profile(seq, profile, options.exhaustive)
            .expect("profile total checked nonzero");
        if do_validate {
            if let Err(problems) = check_ordering(&items, &ordering) {
                summary.failures.push(StageFailure {
                    stage: Stage::Order,
                    func: *fid,
                    head: Some(seq.head),
                    details: problems,
                });
                sequences.push(record);
                continue;
            }
        }
        // Set IV: a tree or table candidate must strictly beat the chain
        // ordering (ties keep the chain), so it can never plan worse.
        let dispatch = if options.opt_tree {
            plan_dispatch(&items).filter(|d| d.cost() + 1e-9 < ordering.cost)
        } else {
            None
        };
        let dispatch = match dispatch {
            Some(d) if do_validate => {
                if let Err(problems) = check_dispatch(&items, &d) {
                    summary.failures.push(StageFailure {
                        stage: Stage::Order,
                        func: *fid,
                        head: Some(seq.head),
                        details: problems,
                    });
                    sequences.push(record);
                    continue;
                }
                Some(d)
            }
            other => other,
        };
        let new_cost = dispatch.as_ref().map_or(ordering.cost, |d| d.cost());
        if new_cost + 1e-9 < original_cost {
            let f = module.function_mut(*fid);
            let pre = do_validate.then(|| f.clone());
            let replica_start = f.blocks.len() as u32;
            let emitted = match &dispatch {
                Some(d) => {
                    record.structure = d.structure();
                    crate::dispatch::apply_dispatch(f, seq, &items, d)
                }
                None => crate::apply::apply_reordering(f, seq, &items, &ordering),
            };
            if let Some(pre) = &pre {
                if options.certify {
                    match certify_sequence(*fid, pre, f, seq, replica_start) {
                        Ok(proof) => {
                            summary.proven += 1;
                            summary.value_classes += proof.value_classes;
                            summary.certificates.push(SequenceCertificate {
                                func: *fid,
                                head: seq.head,
                                text: proof.certificate,
                                sig: proof.sig,
                            });
                        }
                        Err(refuted) => summary.failures.push(refuted.failure),
                    }
                } else {
                    match validate_sequence(*fid, pre, f, seq, replica_start) {
                        Ok(proof) => {
                            summary.proven += 1;
                            summary.value_classes += proof.value_classes;
                        }
                        Err(failure) => summary.failures.push(failure),
                    }
                }
            }
            record.outcome = SequenceOutcome::Reordered {
                new_branches: emitted.branches,
                new_compares: emitted.compares,
                original_cost,
                new_cost,
            };
        } else {
            record.outcome = SequenceOutcome::NoImprovement;
        }
        sequences.push(record);
    }
    // Phase 2b: common-successor sequences (Section 10 extension).
    for ((fid, seq), seq_id) in common_detections.iter().zip(&common_ids) {
        let counts = &merged[seq_id.index()];
        let total: u64 = counts.iter().sum();
        let mut record = SequenceRecord {
            kind: SequenceKind::CommonSuccessor,
            structure: DispatchStructure::Chain,
            func: *fid,
            head: seq.head,
            original_branches: seq.conds.len() as u32,
            conditions: seq.conds.len(),
            training_executions: total,
            outcome: SequenceOutcome::NeverExecuted,
        };
        if total > 0 {
            let identity: Vec<usize> = (0..seq.conds.len()).collect();
            let original_cost = expected_cost(&seq.conds, counts, &identity);
            let order = select_common_order(&seq.conds, counts);
            let new_cost = expected_cost(&seq.conds, counts, &order);
            if new_cost + 1e-9 < original_cost {
                let f = module.function_mut(*fid);
                let applied = apply_common_reordering(f, seq, &order);
                record.outcome = SequenceOutcome::Reordered {
                    new_branches: applied.branches,
                    new_compares: applied.branches,
                    original_cost,
                    new_cost,
                };
            } else {
                record.outcome = SequenceOutcome::NoImprovement;
            }
        }
        sequences.push(record);
    }
    match options.layout {
        LayoutMode::Off => br_opt::cleanup_keep_order(&mut module),
        LayoutMode::Greedy => br_opt::cleanup(&mut module),
        LayoutMode::ExtTsp => {
            br_opt::cleanup(&mut module);
            exttsp_layout(
                &mut module,
                training_inputs,
                options,
                do_validate,
                &mut summary,
            )?;
        }
    }
    if do_validate {
        // The clean-up pass must leave a well-formed module behind.
        for (i, f) in module.functions.iter().enumerate() {
            if let Err(e) = br_ir::verify_function(f, Some(&module)) {
                summary.failures.push(StageFailure {
                    stage: Stage::Cleanup,
                    func: FuncId(i as u32),
                    head: None,
                    details: vec![e.to_string()],
                });
            }
        }
    }
    debug_assert!(
        summary.is_clean(),
        "branch reordering broke the program:\n{summary}"
    );
    Ok(ReorderReport {
        module,
        sequences,
        validation: do_validate.then_some(summary),
    })
}

/// The ext-TSP layout pass ([`LayoutMode::ExtTsp`]): profile the cleaned
/// module's block-level edge frequencies by re-running the training
/// inputs (the instrumented module's block ids do not survive
/// reordering and clean-up, so a fresh run on the final CFG is the only
/// honest source of edge weights), then lay out each function to
/// maximize the ext-TSP objective seeded from the greedy order. When
/// validation is on, every applied permutation is proven layout-only by
/// `br_analysis::check_layout`.
fn exttsp_layout(
    module: &mut Module,
    training_inputs: &[&[u8]],
    options: &ReorderOptions,
    do_validate: bool,
    summary: &mut ValidationSummary,
) -> Result<(), Trap> {
    let mut counts: Vec<Vec<[u64; 2]>> = module
        .functions
        .iter()
        .map(|f| vec![[0u64; 2]; f.blocks.len()])
        .collect();
    for input in training_inputs {
        let outcome = br_vm::run(module, input, &options.vm)?;
        for (acc, got) in counts.iter_mut().zip(&outcome.block_counts) {
            for (a, g) in acc.iter_mut().zip(got) {
                a[0] += g[0];
                a[1] += g[1];
            }
        }
    }
    let params = LayoutParams::default();
    for (i, f) in module.functions.iter_mut().enumerate() {
        let weights = EdgeWeights::from_block_counts(f, &counts[i]);
        let pre = do_validate.then(|| f.clone());
        let outcome = br_layout::layout_function(f, &weights, &params);
        if let (Some(pre), Some(order)) = (&pre, &outcome.applied) {
            let diags = br_analysis::check_layout(pre, f, order);
            if !diags.is_empty() {
                summary.failures.push(StageFailure {
                    stage: Stage::Layout,
                    func: FuncId(i as u32),
                    head: None,
                    details: diags.iter().map(|d| d.to_string()).collect(),
                });
            }
        }
    }
    Ok(())
}

/// Detect common-successor sequences in every function, excluding blocks
/// already claimed by range-condition sequences.
fn detect_all_common(
    module: &Module,
    range_detections: &[(FuncId, DetectedSequence)],
) -> Vec<(FuncId, CommonSeq)> {
    let mut out = Vec::new();
    for (i, f) in module.functions.iter().enumerate() {
        let fid = FuncId(i as u32);
        let mut exclude = std::collections::HashSet::new();
        for (dfid, seq) in range_detections {
            if *dfid == fid {
                exclude.insert(seq.head);
                for c in &seq.conds {
                    exclude.extend(c.blocks.iter().copied());
                }
            }
        }
        for seq in detect_common(f, &exclude) {
            out.push((fid, seq));
        }
    }
    out
}

/// Insert joint-outcome probes for common-successor sequences.
fn instrument_common(module: &mut Module, detections: &[(FuncId, CommonSeq)]) -> Vec<br_ir::SeqId> {
    let mut ids = Vec::with_capacity(detections.len());
    for (fid, seq) in detections {
        let seq_id = module.add_profile_plan(br_ir::ProfilePlan {
            func: *fid,
            head: seq.head,
            kind: br_ir::PlanKind::Outcomes(seq.conds.len()),
        });
        let head = module.function_mut(*fid).block_mut(seq.head);
        let at = head.insts.len() - 1;
        debug_assert!(matches!(head.insts[at], br_ir::Inst::Cmp { .. }));
        head.insts.insert(
            at,
            br_ir::Inst::ProfileOutcomes {
                seq: seq_id,
                conds: seq.conds.iter().map(|c| (c.lhs, c.rhs, c.cond)).collect(),
            },
        );
        ids.push(seq_id);
    }
    ids
}

/// A per-sequence ordering plan computed from one profile: the order
/// items in canonical [`crate::profile::plan_ranges`] indexing, the
/// selected (greedy or exhaustive) ordering, and the estimated cost of
/// the *original* source order under the same profile.
#[derive(Clone, Debug)]
pub struct SequencePlan {
    /// The sequence's ranges with their profiled probabilities.
    pub items: Vec<OrderItem>,
    /// The selected minimum-cost ordering.
    pub ordering: Ordering,
    /// Estimated per-execution cost of the original ordering (conditions
    /// in source order, all default ranges implicit).
    pub original_cost: f64,
}

impl SequencePlan {
    /// Whether the selected ordering beats the original's estimated cost
    /// (the pipeline's apply threshold).
    pub fn improves(&self) -> bool {
        self.ordering.cost + 1e-9 < self.original_cost
    }

    /// Estimated per-execution cost of an *already deployed* ordering,
    /// re-evaluated under this plan's (newer) profile. `None` means the
    /// original source order is deployed. Item indices are canonical, so
    /// an ordering selected under an older profile of the same sequence
    /// evaluates directly against the new items.
    pub fn cost_of_deployed(&self, deployed: Option<&Ordering>) -> f64 {
        match deployed {
            Some(d) => evaluate_cost(&self.items, &d.explicit, &d.eliminated),
            None => self.original_cost,
        }
    }
}

/// Re-entrant per-sequence planning: compute the best ordering for one
/// sequence under an arbitrary profile, without touching any module.
/// This is the selection half of the pipeline's per-sequence loop,
/// exposed so a runtime can re-plan a single drifted sequence against
/// its *live* profile (see the `br-adaptive` crate). Returns `None` when
/// the profile has no executions to plan from.
pub fn plan_for_profile(
    seq: &DetectedSequence,
    profile: &SequenceProfile,
    exhaustive: bool,
) -> Option<SequencePlan> {
    if profile.total() == 0 {
        return None;
    }
    let items = order_items(seq, profile);
    let eliminable = eliminable_items(seq, &items);
    let candidates = candidate_defaults(&items, &eliminable, seq.default_target);
    let fallback = seq.default_target;
    let ordering: Ordering = if exhaustive {
        exhaustive_ordering(&items, &candidates, &eliminable, fallback)
    } else {
        select_ordering(&items, &candidates, &eliminable, fallback)
    };
    let explicit: Vec<usize> = (0..seq.conds.len()).collect();
    let eliminated: Vec<usize> = (seq.conds.len()..items.len()).collect();
    let original_cost = evaluate_cost(&items, &explicit, &eliminated);
    Some(SequencePlan {
        items,
        ordering,
        original_cost,
    })
}

/// Whether each item may be left untested. Values of untested ranges
/// reach the default target through the fall-through path, which runs
/// the sequence's *entire* side-effect bundle — so an explicit condition
/// is eligible only if its original exit already ran every side effect
/// (i.e. no side effects occur in conditions after it). Default ranges
/// (reached after all conditions failed) are always eligible.
/// (Exposed for tests and ablations.)
pub fn eliminable_items(seq: &DetectedSequence, items: &[crate::order::OrderItem]) -> Vec<bool> {
    // Index of the last condition carrying side effects (the head's
    // prefix stays put and does not count).
    let last_side_effect = seq
        .conds
        .iter()
        .enumerate()
        .skip(1)
        .rev()
        .find(|(_, c)| !c.side_effects.is_empty())
        .map(|(j, _)| j);
    items
        .iter()
        .map(|item| match item.source {
            crate::order::ItemSource::Default(_) => true,
            crate::order::ItemSource::Explicit(j) => {
                last_side_effect.is_none_or(|boundary| j >= boundary)
            }
        })
        .collect()
}

/// Which targets may serve as the default (untested) target: every
/// target owning at least one eliminable item, plus the original default
/// target (harmless as the never-reached fall-through of an all-explicit
/// ordering).
fn candidate_defaults(
    items: &[crate::order::OrderItem],
    eliminable: &[bool],
    original_default: BlockId,
) -> Vec<BlockId> {
    let mut out = vec![original_default];
    out.extend(
        items
            .iter()
            .zip(eliminable)
            .filter(|(_, &e)| e)
            .map(|(i, _)| i.target),
    );
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_minic::{compile, Options};
    use br_vm::run;

    fn build(src: &str) -> Module {
        let mut m = compile(src, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        m
    }

    const CLASSIFIER: &str = "
        int main() {
            int c; int spaces; int lines; int tabs; int other;
            spaces = 0; lines = 0; tabs = 0; other = 0;
            c = getchar();
            while (c != -1) {
                if (c == ' ') spaces += 1;
                else if (c == '\\n') lines += 1;
                else if (c == '\\t') tabs += 1;
                else other += 1;
                c = getchar();
            }
            putint(spaces); putint(lines); putint(tabs); putint(other);
            return spaces + 2 * lines + 3 * tabs + 5 * other;
        }";

    fn letters(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| b"abcdefghijklmnopqrstuvwxyz"[i % 26])
            .chain(*b" \n")
            .collect()
    }

    #[test]
    fn end_to_end_reorders_and_preserves_behaviour() {
        let m = build(CLASSIFIER);
        let train = letters(200);
        let test = letters(333);
        let report = reorder_module(&m, &train, &ReorderOptions::default()).unwrap();
        br_ir::verify_module(&report.module).unwrap();
        assert!(report.reordered_count() >= 1, "{:?}", report.sequences);

        let base = run(&m, &test, &VmOptions::default()).unwrap();
        let new = run(&report.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(base.exit, new.exit);
        assert_eq!(base.output, new.output);
        assert!(
            new.stats.insts < base.stats.insts,
            "letters-dominated input should speed up: {} -> {}",
            base.stats.insts,
            new.stats.insts
        );
        assert!(new.stats.cond_branches < base.stats.cond_branches);
    }

    #[test]
    fn reordered_sequences_get_longer_statically() {
        let m = build(CLASSIFIER);
        let report = reorder_module(&m, &letters(100), &ReorderOptions::default()).unwrap();
        let (orig, new) = report.avg_lengths().expect("something reordered");
        assert!(
            new >= orig,
            "defaults made explicit should lengthen sequences: {orig} vs {new}"
        );
    }

    #[test]
    fn never_executed_sequences_are_skipped() {
        let src = "
            int main() {
                int c;
                c = getchar();
                if (c == -2) {
                    if (c == 1000) putint(1);
                    else if (c == 2000) putint(2);
                    else if (c == 3000) putint(3);
                }
                return 0;
            }";
        let m = build(src);
        let report = reorder_module(&m, b"xyz", &ReorderOptions::default()).unwrap();
        assert!(report
            .sequences
            .iter()
            .any(|s| s.outcome == SequenceOutcome::NeverExecuted));
        assert_eq!(report.reordered_count(), 0, "{:?}", report.sequences);
    }

    #[test]
    fn exhaustive_matches_greedy_cost() {
        let m = build(CLASSIFIER);
        let train = letters(150);
        let greedy = reorder_module(&m, &train, &ReorderOptions::default()).unwrap();
        let exhaustive = reorder_module(
            &m,
            &train,
            &ReorderOptions {
                exhaustive: true,
                ..ReorderOptions::default()
            },
        )
        .unwrap();
        for (a, b) in greedy.sequences.iter().zip(&exhaustive.sequences) {
            if let (
                SequenceOutcome::Reordered { new_cost: ga, .. },
                SequenceOutcome::Reordered { new_cost: gb, .. },
            ) = (&a.outcome, &b.outcome)
            {
                assert!((ga - gb).abs() < 1e-9, "greedy {ga} vs exhaustive {gb}");
            }
        }
    }

    #[test]
    fn trap_in_training_run_is_reported() {
        let src = "int main() { int c; c = getchar(); if (c == 'x') abort(9); \
                   if (c == 1) putint(1); else if (c == 2) putint(2); return 0; }";
        let m = build(src);
        let err = reorder_module(&m, b"x", &ReorderOptions::default()).unwrap_err();
        assert_eq!(err, Trap::Abort { code: 9 });
    }

    #[test]
    fn report_counts_are_consistent() {
        let m = build(CLASSIFIER);
        let report = reorder_module(&m, &letters(64), &ReorderOptions::default()).unwrap();
        for s in &report.sequences {
            assert!(s.conditions >= 2);
            assert!(s.original_branches >= s.conditions as u32);
            if let SequenceOutcome::Reordered {
                new_branches,
                new_compares,
                original_cost,
                new_cost,
            } = &s.outcome
            {
                assert!(*new_compares <= *new_branches);
                assert!(new_cost < original_cost);
            }
        }
    }
}

#[cfg(test)]
mod common_successor_tests {
    use super::*;
    use br_minic::{compile, Options};
    use br_vm::run;

    /// Short-circuit `&&`/`||` chains over different variables: the
    /// Section 10 shape (the range machinery cannot touch these).
    const COMMON: &str = "
        int main() {
            int c; int parity; int run; int hits;
            parity = 0; run = 0; hits = 0;
            c = getchar();
            while (c != -1) {
                parity = (parity + c) % 97;
                run = (run * 3 + 1) % 31;
                if (parity > 90 && run > 25 && c > 120) hits += 1;
                if (parity < 3 || run < 2 || c < 8) hits += 1000;
                c = getchar();
            }
            putint(hits);
            return parity + run;
        }";

    fn build() -> Module {
        let mut m = compile(COMMON, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        m
    }

    fn bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 127) as u8
            })
            .collect()
    }

    #[test]
    fn common_successor_sequences_are_detected_and_reordered() {
        let m = build();
        let opts = ReorderOptions {
            common_successor: true,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&m, &bytes(4096, 5), &opts).unwrap();
        br_ir::verify_module(&report.module).unwrap();
        let common: Vec<_> = report
            .sequences
            .iter()
            .filter(|s| s.kind == SequenceKind::CommonSuccessor)
            .collect();
        assert!(!common.is_empty(), "no common-successor sequences found");
        assert!(
            common
                .iter()
                .any(|s| matches!(s.outcome, SequenceOutcome::Reordered { .. })),
            "none reordered: {common:?}"
        );
    }

    #[test]
    fn common_successor_preserves_behaviour_and_counts() {
        let m = build();
        let opts = ReorderOptions {
            common_successor: true,
            ..ReorderOptions::default()
        };
        let train = bytes(4096, 5);
        let test = bytes(6000, 77);
        let report = reorder_module(&m, &train, &opts).unwrap();
        let base = run(&m, &test, &VmOptions::default()).unwrap();
        let new = run(&report.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(base.exit, new.exit);
        assert_eq!(base.output, new.output);
        // The chains' conditions are rarely satisfied in their leading
        // positions, so reordering should pay off on like-distributed
        // input.
        assert!(
            new.stats.insts <= base.stats.insts,
            "common-successor reordering pessimized: {} -> {}",
            base.stats.insts,
            new.stats.insts
        );
    }

    #[test]
    fn disabled_by_default() {
        let m = build();
        let report = reorder_module(&m, &bytes(2048, 5), &ReorderOptions::default()).unwrap();
        assert!(report
            .sequences
            .iter()
            .all(|s| s.kind == SequenceKind::RangeConditions));
    }

    #[test]
    fn range_sequences_have_priority_over_common() {
        // A chain on a single variable matches BOTH patterns; it must be
        // claimed by the range transformation only.
        let src = "
            int main() {
                int c; int hits; hits = 0;
                c = getchar();
                while (c != -1) {
                    if (c == 10 || c == 32 || c == 9) hits += 1;
                    c = getchar();
                }
                putint(hits);
                return 0;
            }";
        let mut m = compile(src, &Options::default()).unwrap();
        br_opt::optimize(&mut m);
        let opts = ReorderOptions {
            common_successor: true,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&m, &bytes(2048, 9), &opts).unwrap();
        let range_count = report
            .sequences
            .iter()
            .filter(|s| s.kind == SequenceKind::RangeConditions)
            .count();
        assert!(range_count >= 1);
        // Behaviour must hold regardless.
        let test = bytes(3000, 11);
        let base = run(&m, &test, &VmOptions::default()).unwrap();
        let new = run(&report.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(base.output, new.output);
    }
}

#[cfg(test)]
mod multi_input_tests {
    use super::*;
    use br_minic::{compile, Options};

    /// Two independent classification chains guarded by disjoint modes:
    /// the first byte selects which chain runs.
    const TWO_MODES: &str = "
        int main() {
            int mode; int c; int a; int b;
            a = 0; b = 0;
            mode = getchar();
            c = getchar();
            while (c != -1) {
                if (mode == 'A') {
                    if (c == ' ') a += 1;
                    else if (c == '\\n') a += 2;
                    else if (c == '\\t') a += 3;
                    else a += 5;
                } else {
                    if (c == '0') b += 1;
                    else if (c == '1') b += 2;
                    else if (c == '9') b += 3;
                    else b += 5;
                }
                c = getchar();
            }
            putint(a); putint(b);
            return 0;
        }";

    fn build() -> Module {
        let mut m = compile(TWO_MODES, &Options::default()).unwrap();
        br_opt::optimize(&mut m);
        m
    }

    fn mode_input(mode: u8) -> Vec<u8> {
        let mut v = vec![mode];
        v.extend(b"lots of letters 0101 and spaces\nmore 999 text\n".repeat(20));
        v
    }

    #[test]
    fn single_input_leaves_the_cold_chain_unreordered() {
        let m = build();
        let a_only = mode_input(b'A');
        let report = reorder_module(&m, &a_only, &ReorderOptions::default()).unwrap();
        assert!(
            report
                .sequences
                .iter()
                .any(|s| s.outcome == SequenceOutcome::NeverExecuted),
            "{:?}",
            report.sequences
        );
    }

    #[test]
    fn multiple_inputs_cover_both_chains() {
        let m = build();
        let a = mode_input(b'A');
        let b = mode_input(b'B');
        let report = reorder_module_with_inputs(&m, &[&a, &b], &ReorderOptions::default()).unwrap();
        let never = report
            .sequences
            .iter()
            .filter(|s| s.outcome == SequenceOutcome::NeverExecuted)
            .count();
        assert_eq!(never, 0, "{:?}", report.sequences);
        assert!(
            report.reordered_count()
                > reorder_module(&m, &a, &ReorderOptions::default())
                    .unwrap()
                    .reordered_count(),
            "better coverage must reorder more sequences"
        );
        // And of course behaviour holds on both modes.
        for input in [&a, &b] {
            let base = br_vm::run(&m, input, &VmOptions::default()).unwrap();
            let new = br_vm::run(&report.module, input, &VmOptions::default()).unwrap();
            assert_eq!(base.output, new.output);
        }
    }

    #[test]
    fn merged_profiles_equal_concatenated_input_profiles() {
        let m = build();
        let a = mode_input(b'A');
        let b = mode_input(b'B');
        // Merging two runs must select like one long run would (modulo
        // the mode byte read once per run, which only shifts counts by
        // a constant on the mode check).
        let multi = reorder_module_with_inputs(&m, &[&a, &b], &ReorderOptions::default()).unwrap();
        assert!(multi.reordered_count() >= 2);
    }
}

#[cfg(test)]
mod opt_tree_tests {
    use super::*;
    use br_minic::{compile, Options};
    use br_vm::run;

    /// A `k`-way else-if classifier over consecutive character codes —
    /// the widest dense partition minic's chains produce, where Set IV's
    /// table candidate pays off on flat input.
    fn wide_classifier(k: usize) -> Module {
        let mut src =
            String::from("int main() { int c; int n; n = 0; c = getchar(); while (c != -1) { ");
        for i in 0..k {
            if i > 0 {
                src.push_str("else ");
            }
            src.push_str(&format!("if (c == {}) n = n + {}; ", 97 + i, i + 1));
        }
        src.push_str("else n = n + 999; c = getchar(); } putint(n); return 0; }");
        let mut m = compile(&src, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        m
    }

    fn flat_input(k: usize, len: usize) -> Vec<u8> {
        (0..len).map(|i| 97 + (i % k) as u8).collect()
    }

    #[test]
    fn set_iv_never_plans_worse_than_set_iii() {
        let m = wide_classifier(26);
        let train = flat_input(26, 520);
        let base = reorder_module(&m, &train, &ReorderOptions::default()).unwrap();
        let iv = reorder_module(
            &m,
            &train,
            &ReorderOptions {
                opt_tree: true,
                ..ReorderOptions::default()
            },
        )
        .unwrap();
        for (a, b) in base.sequences.iter().zip(&iv.sequences) {
            if let (
                SequenceOutcome::Reordered { new_cost: c3, .. },
                SequenceOutcome::Reordered { new_cost: c4, .. },
            ) = (&a.outcome, &b.outcome)
            {
                assert!(c4 <= &(c3 + 1e-9), "Set IV {c4} worse than chain {c3}");
            }
        }
    }

    #[test]
    fn flat_wide_sequence_deploys_a_table_and_preserves_behaviour() {
        let m = wide_classifier(26);
        let train = flat_input(26, 520);
        let test: Vec<u8> = flat_input(26, 1000)
            .into_iter()
            .chain(*b"!@# outside the window ~~")
            .collect();
        let opts = ReorderOptions {
            opt_tree: true,
            certify: true,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&m, &train, &opts).unwrap();
        br_ir::verify_module(&report.module).unwrap();
        assert!(
            report
                .sequences
                .iter()
                .any(|s| s.structure == DispatchStructure::Table),
            "{:?}",
            report.sequences
        );
        let summary = report.validation.as_ref().expect("certify validates");
        assert!(summary.is_clean(), "{summary}");
        assert!(summary.proven >= 1);
        assert!(!summary.certificates.is_empty());
        for cert in &summary.certificates {
            br_analysis::cert::check(&cert.text).expect("independent checker accepts");
        }
        let base = run(&m, &test, &VmOptions::default()).unwrap();
        let new = run(&report.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(base.exit, new.exit);
        assert_eq!(base.output, new.output);
        assert!(
            new.stats.indirect_jumps > 0,
            "table must dispatch at runtime"
        );
        assert!(
            new.stats.cond_branches < base.stats.cond_branches,
            "26-way flat dispatch must cut branches: {} -> {}",
            base.stats.cond_branches,
            new.stats.cond_branches
        );
    }

    #[test]
    fn skewed_profile_keeps_a_cheap_structure() {
        // One dominant case: the chain (hot test first) is optimal, so
        // Set IV must not degrade to a table.
        let m = wide_classifier(26);
        let mut train = flat_input(26, 26);
        train.extend(std::iter::repeat_n(97 + 13, 2000));
        let opts = ReorderOptions {
            opt_tree: true,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&m, &train, &opts).unwrap();
        br_ir::verify_module(&report.module).unwrap();
        assert!(report
            .sequences
            .iter()
            .all(|s| s.structure != DispatchStructure::Table));
        let test = train.clone();
        let base = run(&m, &test, &VmOptions::default()).unwrap();
        let new = run(&report.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(base.output, new.output);
        assert!(new.stats.insts < base.stats.insts);
    }

    #[test]
    fn opt_tree_off_never_emits_non_chain_structures() {
        let m = wide_classifier(26);
        let report = reorder_module(&m, &flat_input(26, 260), &ReorderOptions::default()).unwrap();
        assert!(report
            .sequences
            .iter()
            .all(|s| s.structure == DispatchStructure::Chain));
    }
}

#[cfg(test)]
mod layout_mode_tests {
    use super::*;
    use br_minic::{compile, Options};
    use br_vm::run;

    const CLASSIFIER: &str = "
        int main() {
            int c; int spaces; int lines; int tabs; int other;
            spaces = 0; lines = 0; tabs = 0; other = 0;
            c = getchar();
            while (c != -1) {
                if (c == ' ') spaces += 1;
                else if (c == '\\n') lines += 1;
                else if (c == '\\t') tabs += 1;
                else other += 1;
                c = getchar();
            }
            putint(spaces); putint(lines); putint(tabs); putint(other);
            return spaces + 2 * lines + 3 * tabs + 5 * other;
        }";

    fn build() -> Module {
        let mut m = compile(CLASSIFIER, &Options::default()).expect("compiles");
        br_opt::optimize(&mut m);
        m
    }

    fn letters(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| b"abcdefghijklmnopqrstuvwxyz"[i % 26])
            .chain(*b" \n")
            .collect()
    }

    fn with_layout(layout: LayoutMode) -> ReorderOptions {
        ReorderOptions {
            layout,
            certify: true,
            ..ReorderOptions::default()
        }
    }

    #[test]
    fn exttsp_preserves_behaviour_and_never_loses_to_greedy() {
        let m = build();
        let train = letters(200);
        let test = letters(333);
        let greedy = reorder_module(&m, &train, &with_layout(LayoutMode::Greedy)).unwrap();
        let exttsp = reorder_module(&m, &train, &with_layout(LayoutMode::ExtTsp)).unwrap();
        br_ir::verify_module(&exttsp.module).unwrap();
        let summary = exttsp.validation.as_ref().expect("certify validates");
        assert!(summary.is_clean(), "{summary}");
        let g = run(&greedy.module, &test, &VmOptions::default()).unwrap();
        let x = run(&exttsp.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(g.exit, x.exit);
        assert_eq!(g.output, x.output);
        assert!(
            x.stats.taken_branches <= g.stats.taken_branches,
            "ext-TSP took more branches than greedy: {} vs {}",
            x.stats.taken_branches,
            g.stats.taken_branches
        );
    }

    #[test]
    fn layout_off_preserves_behaviour() {
        // No dynamic-count inequality is asserted between Off and
        // Greedy: the reorderer emits replicas already in hot-path
        // order, so the profile-blind chainer can win statically yet
        // lose dynamically — quantifying that is exactly what the sweep
        // interaction table is for.
        let m = build();
        let train = letters(200);
        let test = letters(333);
        let greedy = reorder_module(&m, &train, &with_layout(LayoutMode::Greedy)).unwrap();
        let off = reorder_module(&m, &train, &with_layout(LayoutMode::Off)).unwrap();
        br_ir::verify_module(&off.module).unwrap();
        let g = run(&greedy.module, &test, &VmOptions::default()).unwrap();
        let o = run(&off.module, &test, &VmOptions::default()).unwrap();
        assert_eq!(g.exit, o.exit);
        assert_eq!(g.output, o.output);
    }

    #[test]
    fn exttsp_layout_is_deterministic() {
        let m = build();
        let train = letters(150);
        let a = reorder_module(&m, &train, &with_layout(LayoutMode::ExtTsp)).unwrap();
        let b = reorder_module(&m, &train, &with_layout(LayoutMode::ExtTsp)).unwrap();
        assert_eq!(
            br_ir::print_module(&a.module),
            br_ir::print_module(&b.module)
        );
    }
}

#[cfg(test)]
mod static_heuristic_tests {
    use super::*;
    use br_minic::{compile, Options};
    use br_vm::run;

    const CLASSIFY: &str = "
        int main() {
            int c; int k; k = 0;
            c = getchar();
            while (c != -1) {
                if (c == ' ') k += 1;
                else if (c == '\\n') k += 2;
                else if (c == '\\t') k += 3;
                else k += 7;
                c = getchar();
            }
            putint(k);
            return 0;
        }";

    #[test]
    fn static_heuristic_reorders_without_meaningful_training() {
        let mut m = compile(CLASSIFY, &Options::default()).unwrap();
        br_opt::optimize(&mut m);
        let opts = ReorderOptions {
            static_heuristic: true,
            ..ReorderOptions::default()
        };
        // Empty training input: a real profile would skip everything.
        let report = reorder_module(&m, b"", &opts).unwrap();
        assert!(report.reordered_count() >= 1, "{:?}", report.sequences);
        // The uniform-domain assumption puts the wide default range
        // first — beneficial on letter-dominated input.
        let text = b"plain letters dominate this text\n".repeat(50);
        let base = run(&m, &text, &VmOptions::default()).unwrap();
        let new = run(&report.module, &text, &VmOptions::default()).unwrap();
        assert_eq!(base.output, new.output);
        assert!(new.stats.insts < base.stats.insts);
    }

    #[test]
    fn real_profile_beats_static_heuristic_on_skewed_input() {
        // Input dominated by tabs: the uniform assumption ranks the tab
        // range (1 value) last, a real profile ranks it first.
        let mut m = compile(CLASSIFY, &Options::default()).unwrap();
        br_opt::optimize(&mut m);
        let tabs = vec![b'\t'; 2000];
        let profiled = reorder_module(&m, &tabs, &ReorderOptions::default()).unwrap();
        let statict = reorder_module(
            &m,
            &tabs,
            &ReorderOptions {
                static_heuristic: true,
                ..ReorderOptions::default()
            },
        )
        .unwrap();
        let p = run(&profiled.module, &tabs, &VmOptions::default()).unwrap();
        let s = run(&statict.module, &tabs, &VmOptions::default()).unwrap();
        assert_eq!(p.output, s.output);
        assert!(
            p.stats.insts < s.stats.insts,
            "profile {} should beat static {}",
            p.stats.insts,
            s.stats.insts
        );
    }
}
