//! Heuristic **Set IV** dispatch synthesis: planning and emitting
//! minimum-expected-cost comparison *trees* and bounds-checked *jump
//! tables* for a profiled range sequence, as alternatives to the
//! paper's Theorem 3 chain.
//!
//! The planners themselves live in [`br_opt::tree`] (the DP recurrence
//! and the dense-window table construction, scored under the
//! VM-measured [`CostModel`]). This module is the bridge between those
//! partition-level plans and the reordering pipeline:
//!
//! * [`plan_dispatch`] converts a sequence's [`OrderItem`]s (canonical
//!   [`crate::profile::plan_ranges`] indexing) into the sorted partition
//!   the planners want, and returns the cheaper of the tree and the
//!   table — or `None` when neither is plannable;
//! * [`check_dispatch`] structurally verifies a plan against the items
//!   (every value of every range must reach that range's exit), the
//!   Stage::Order counterpart of `check_ordering` for chains;
//! * [`emit_dispatch`] / [`apply_dispatch`] rebuild the sequence as the
//!   planned structure, reusing the chain emitter's conventions:
//!   cumulative side-effect bundles are duplicated onto exit pads
//!   (Theorem 2 en bloc), and the head is rewritten in place to enter
//!   the replica (Section 8).
//!
//! Set IV itself is *min-of-three*: the pipeline compares the plan
//! returned here against the chain ordering's cost — in the same unit,
//! one compare-and-branch test = 2.0 expected instructions — and keeps
//! the chain on ties. That comparison is what makes Set IV structurally
//! never worse than Set III on any profiled sequence.

use std::collections::HashMap;
use std::sync::OnceLock;

use br_ir::{Block, BlockId, Cond, Function, Inst, Operand, Reg, Terminator};
use br_opt::tree::{
    plan_table, plan_tree, table_groups, CostModel, TablePlan, TreeItem, TreeNode, TreePlan,
};

use crate::detect::DetectedSequence;
use crate::emit::EmitResult;
use crate::order::{ItemSource, OrderItem};

/// Which structure a sequence was rebuilt as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchStructure {
    /// The paper's chain of range conditions (Sets I–III, and Set IV
    /// when neither alternative beats it).
    Chain,
    /// A minimum-expected-cost comparison tree (DP-planned).
    Tree,
    /// A bounds-checked jump table over the dense window.
    Table,
}

impl DispatchStructure {
    /// Stable lowercase name (used by reports and artifacts).
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchStructure::Chain => "chain",
            DispatchStructure::Tree => "tree",
            DispatchStructure::Table => "table",
        }
    }

    /// Parse [`DispatchStructure::as_str`] output.
    pub fn parse(s: &str) -> Option<DispatchStructure> {
        match s {
            "chain" => Some(DispatchStructure::Chain),
            "tree" => Some(DispatchStructure::Tree),
            "table" => Some(DispatchStructure::Table),
            _ => None,
        }
    }
}

impl std::fmt::Display for DispatchStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A planned non-chain dispatch structure with its expected cost.
#[derive(Clone, Debug, PartialEq)]
pub enum DispatchPlan {
    /// A DP-planned comparison tree.
    Tree(TreePlan),
    /// A dense-window jump table.
    Table(TablePlan),
}

impl DispatchPlan {
    /// Expected per-execution cost, in the chain planner's unit.
    pub fn cost(&self) -> f64 {
        match self {
            DispatchPlan::Tree(t) => t.cost,
            DispatchPlan::Table(t) => t.cost,
        }
    }

    /// The structure this plan builds.
    pub fn structure(&self) -> DispatchStructure {
        match self {
            DispatchPlan::Tree(_) => DispatchStructure::Tree,
            DispatchPlan::Table(_) => DispatchStructure::Table,
        }
    }
}

/// The process-wide Set IV cost model: measured from the VM once, then
/// cached (the measurement runs two micro-modules; results are
/// deterministic, so caching changes nothing but time).
pub fn cost_model() -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(CostModel::measured)
}

/// The sorted partition the planners consume: one [`TreeItem`] per order
/// item, `index` keeping the canonical plan indexing, `weight` the
/// profiled probability.
fn tree_items(items: &[OrderItem]) -> Vec<TreeItem> {
    let mut out: Vec<TreeItem> = items
        .iter()
        .enumerate()
        .map(|(i, it)| TreeItem::new(it.range.lo, it.range.hi, it.prob, i))
        .collect();
    out.sort_by_key(|t| t.lo);
    out
}

/// Plan the best non-chain dispatch for a sequence's items under the
/// process-wide measured model. Returns `None` when the partition is
/// too small to dispatch over (or, defensively, malformed).
pub fn plan_dispatch(items: &[OrderItem]) -> Option<DispatchPlan> {
    plan_dispatch_with(items, cost_model())
}

/// [`plan_dispatch`] under an explicit model (tests and ablations).
pub fn plan_dispatch_with(items: &[OrderItem], model: &CostModel) -> Option<DispatchPlan> {
    let sorted = tree_items(items);
    let tree = plan_tree(&sorted, model);
    let table = plan_table(&sorted, model);
    match (tree, table) {
        (Some(tr), Some(tb)) => Some(if tb.cost + 1e-9 < tr.cost {
            DispatchPlan::Table(tb)
        } else {
            DispatchPlan::Tree(tr)
        }),
        (Some(tr), None) => Some(DispatchPlan::Tree(tr)),
        (None, Some(tb)) => Some(DispatchPlan::Table(tb)),
        (None, None) => None,
    }
}

/// Structurally verify a dispatch plan against the sequence's items:
/// every value of every range must be routed to that range's own exit.
/// This is the Stage::Order check for Set IV structures — it validates
/// the *plan*, before any code is emitted.
///
/// # Errors
///
/// Returns one description per routing defect found.
pub fn check_dispatch(items: &[OrderItem], plan: &DispatchPlan) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    match plan {
        DispatchPlan::Tree(t) => {
            for (i, item) in items.iter().enumerate() {
                check_tree_route(&t.root, item, i, &mut problems);
            }
        }
        DispatchPlan::Table(t) => {
            let span = t.limit as i128 - t.base as i128 + 1;
            if span < 1 || span != t.slots.len() as i128 {
                problems.push(format!(
                    "table window [{}, {}] disagrees with its {} slots",
                    t.base,
                    t.limit,
                    t.slots.len()
                ));
            } else {
                for (k, &idx) in t.slots.iter().enumerate() {
                    let v = t.base + k as i64;
                    match items.get(idx) {
                        Some(item) if item.range.contains(v) => {}
                        _ => problems.push(format!("slot for {v} routed to item {idx}")),
                    }
                }
            }
            match items.get(t.below) {
                Some(item) if item.range.lo == i64::MIN && item.range.hi == t.base - 1 => {}
                _ => problems.push(format!("below-window exit routed to item {}", t.below)),
            }
            match items.get(t.above) {
                Some(item) if item.range.hi == i64::MAX && item.range.lo == t.limit + 1 => {}
                _ => problems.push(format!("above-window exit routed to item {}", t.above)),
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Walk `item`'s whole range down the tree; it must land on its own leaf
/// without ever straddling a test.
fn check_tree_route(node: &TreeNode, item: &OrderItem, index: usize, problems: &mut Vec<String>) {
    match node {
        TreeNode::Leaf { item: leaf } => {
            if *leaf != index {
                problems.push(format!(
                    "range {:?} of item {index} reaches the leaf of item {leaf}",
                    item.range
                ));
            }
        }
        TreeNode::Le {
            boundary,
            below,
            above,
        } => {
            if item.range.hi <= *boundary {
                check_tree_route(below, item, index, problems);
            } else if item.range.lo > *boundary {
                check_tree_route(above, item, index, problems);
            } else {
                problems.push(format!(
                    "range {:?} of item {index} straddles the split at {boundary}",
                    item.range
                ));
            }
        }
        TreeNode::Eq { value, hit, miss } => {
            if item.range.is_single() && item.range.lo == *value {
                if *hit != index {
                    problems.push(format!(
                        "equality on {value} hits item {hit}, expected item {index}"
                    ));
                }
            } else if item.range.contains(*value) {
                problems.push(format!(
                    "range {:?} of item {index} straddles the equality test on {value}",
                    item.range
                ));
            } else {
                check_tree_route(miss, item, index, problems);
            }
        }
    }
}

/// Exit-pad factory shared by both emitters: an exit edge for item
/// `idx` is the item's target directly when its side-effect bundle is
/// empty, else a pad block running the bundle first — memoized so a
/// table's many window slots share one pad per item.
struct ExitPads<'a> {
    items: &'a [OrderItem],
    flat_bundle: Vec<Inst>,
    cumulative: Vec<usize>,
    pads: HashMap<usize, BlockId>,
}

impl<'a> ExitPads<'a> {
    fn new(seq: &DetectedSequence, items: &'a [OrderItem]) -> ExitPads<'a> {
        // Cumulative side-effect bundles, exactly as the chain emitter
        // builds them: bundle(j) = side effects of conditions 1..=j (the
        // head's own prefix stays at the sequence entry).
        let mut cumulative = Vec::with_capacity(seq.conds.len());
        let mut flat_bundle: Vec<Inst> = Vec::new();
        for (j, c) in seq.conds.iter().enumerate() {
            if j > 0 {
                flat_bundle.extend(c.side_effects.iter().cloned());
            }
            cumulative.push(flat_bundle.len());
        }
        ExitPads {
            items,
            flat_bundle,
            cumulative,
            pads: HashMap::new(),
        }
    }

    fn exit(&mut self, f: &mut Function, idx: usize) -> BlockId {
        if let Some(&pad) = self.pads.get(&idx) {
            return pad;
        }
        let item = &self.items[idx];
        let end = match item.source {
            ItemSource::Explicit(j) => self.cumulative[j],
            ItemSource::Default(_) => self.flat_bundle.len(),
        };
        let block = if end == 0 {
            item.target
        } else {
            let pad = f.add_block(Block::new(Terminator::Jump(item.target)));
            f.block_mut(pad).insts = self.flat_bundle[..end].to_vec();
            pad
        };
        self.pads.insert(idx, block);
        block
    }
}

/// Emit the planned dispatch structure into `f`, returning its entry
/// block and branch/compare counts. Like the chain emitter, the
/// original blocks are left untouched; the caller rewires the head and
/// dead-code elimination reclaims the rest.
pub fn emit_dispatch(
    f: &mut Function,
    seq: &DetectedSequence,
    items: &[OrderItem],
    plan: &DispatchPlan,
) -> EmitResult {
    let mut pads = ExitPads::new(seq, items);
    match plan {
        DispatchPlan::Tree(t) => {
            let mut counts = (0u32, 0u32);
            let entry = emit_tree(f, seq.var, &t.root, &mut pads, &mut counts);
            EmitResult {
                entry,
                branches: counts.0,
                compares: counts.1,
            }
        }
        DispatchPlan::Table(t) => emit_table(f, seq.var, t, &mut pads),
    }
}

/// Emit a tree node: leaves become exit edges, inner nodes one
/// compare-and-branch block each.
fn emit_tree(
    f: &mut Function,
    var: Reg,
    node: &TreeNode,
    pads: &mut ExitPads<'_>,
    counts: &mut (u32, u32),
) -> BlockId {
    match node {
        TreeNode::Leaf { item } => pads.exit(f, *item),
        TreeNode::Le {
            boundary,
            below,
            above,
        } => {
            let taken = emit_tree(f, var, below, pads, counts);
            let not_taken = emit_tree(f, var, above, pads, counts);
            counts.0 += 1;
            counts.1 += 1;
            let b = f.add_block(Block::new(Terminator::branch(Cond::Le, taken, not_taken)));
            f.block_mut(b).insts.push(Inst::Cmp {
                lhs: Operand::Reg(var),
                rhs: Operand::Imm(*boundary),
            });
            b
        }
        TreeNode::Eq { value, hit, miss } => {
            let taken = pads.exit(f, *hit);
            let not_taken = emit_tree(f, var, miss, pads, counts);
            counts.0 += 1;
            counts.1 += 1;
            let b = f.add_block(Block::new(Terminator::branch(Cond::Eq, taken, not_taken)));
            f.block_mut(b).insts.push(Inst::Cmp {
                lhs: Operand::Reg(var),
                rhs: Operand::Imm(*value),
            });
            b
        }
    }
}

/// Emit a bounds-checked jump table: two guarding tests, then an index
/// subtract into a fresh temporary and an indirect jump through one
/// target slot per window value (slots of the same item share a pad).
fn emit_table(f: &mut Function, var: Reg, plan: &TablePlan, pads: &mut ExitPads<'_>) -> EmitResult {
    let below = pads.exit(f, plan.below);
    let above = pads.exit(f, plan.above);
    let mut targets = Vec::with_capacity(plan.slots.len());
    for &idx in &plan.slots {
        targets.push(pads.exit(f, idx));
    }
    let temp = f.new_reg();
    let dispatch = f.add_block(Block::new(Terminator::IndirectJump {
        index: temp,
        targets,
    }));
    f.block_mut(dispatch).insts.push(Inst::Bin {
        op: br_ir::BinOp::Sub,
        dst: temp,
        lhs: Operand::Reg(var),
        rhs: Operand::Imm(plan.base),
    });
    let upper = f.add_block(Block::new(Terminator::branch(Cond::Gt, above, dispatch)));
    f.block_mut(upper).insts.push(Inst::Cmp {
        lhs: Operand::Reg(var),
        rhs: Operand::Imm(plan.limit),
    });
    let lower = f.add_block(Block::new(Terminator::branch(Cond::Lt, below, upper)));
    f.block_mut(lower).insts.push(Inst::Cmp {
        lhs: Operand::Reg(var),
        rhs: Operand::Imm(plan.base),
    });
    EmitResult {
        entry: lower,
        branches: 2,
        compares: 2,
    }
}

/// Splice the planned dispatch replica of `seq` into `f`: emit, then
/// rewrite the head in place exactly like `apply_reordering` — drop its
/// trailing compare and jump to the replica entry.
pub fn apply_dispatch(
    f: &mut Function,
    seq: &DetectedSequence,
    items: &[OrderItem],
    plan: &DispatchPlan,
) -> EmitResult {
    let result = emit_dispatch(f, seq, items, plan);
    let head = f.block_mut(seq.head);
    let popped = head.insts.pop();
    debug_assert!(
        matches!(popped, Some(Inst::Cmp { .. })),
        "sequence head must end in its compare"
    );
    head.term = Terminator::Jump(result.entry);
    result
}

/// How many window slots a table plan dispatches to, grouped by item —
/// a report-friendly summary delegated to [`br_opt::tree::table_groups`].
pub fn table_group_count(plan: &TablePlan) -> usize {
    table_groups(plan).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_sequences;
    use crate::profile::{order_items, SequenceProfile};
    use br_ir::{FuncBuilder, Module};
    use br_vm::{run, VmOptions};

    /// A classify loop over `n` consecutive singleton cases starting at
    /// `'a'`: `if (c=='a') acc+=1; else if (c=='b') acc+=2; ...` with a
    /// distinct weight per case, looping on getchar until EOF.
    fn dense_classifier(n: usize) -> Module {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main");
        let c = b.new_reg();
        let acc = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let quit = b.new_block();
        b.copy(e, acc, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.push(
            head,
            Inst::Call {
                dst: Some(c),
                callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
                args: vec![],
            },
        );
        // Sequence: c == -1 -> quit, then the n cases, default loops.
        let mut cur = head;
        let mut next = b.new_block();
        b.cmp_branch(cur, c, -1i64, Cond::Eq, quit, next);
        for i in 0..n {
            cur = next;
            next = b.new_block();
            let t = b.new_block();
            b.cmp_branch(cur, c, b'a' as i64 + i as i64, Cond::Eq, t, next);
            b.bin(t, br_ir::BinOp::Add, acc, acc, (i + 1) as i64);
            b.set_term(t, Terminator::Jump(head));
        }
        // Default: acc += 1000, loop.
        b.bin(next, br_ir::BinOp::Add, acc, acc, 1000i64);
        b.set_term(next, Terminator::Jump(head));
        b.set_term(quit, Terminator::Return(Some(Operand::Reg(acc))));
        m.main = Some(m.add_function(b.finish()));
        m
    }

    fn seq_and_items(f: &Function, counts: Vec<u64>) -> (DetectedSequence, Vec<OrderItem>) {
        let seq = detect_sequences(f).remove(0);
        let items = order_items(&seq, &SequenceProfile { counts });
        (seq, items)
    }

    /// Flat counts over the dense classifier's plan ranges: EOF once,
    /// each case `w`, the below/above defaults lightly.
    fn flat_counts(n: usize, w: u64) -> Vec<u64> {
        // plan: [-1], ['a'], ['a'+1], ..., then defaults ascending.
        let mut counts = vec![1u64];
        counts.extend(std::iter::repeat_n(w, n));
        // defaults: [..-2], [0..96], ['a'+n..] — complement of the above.
        counts.extend([0, 2, 2]);
        counts
    }

    #[test]
    fn flat_dense_sequence_plans_a_table() {
        let m = dense_classifier(30);
        let (_, items) = seq_and_items(&m.functions[0], flat_counts(30, 10));
        let plan = plan_dispatch_with(&items, &CostModel::reference()).expect("plannable");
        assert_eq!(plan.structure(), DispatchStructure::Table);
        check_dispatch(&items, &plan).expect("plan routes correctly");
    }

    #[test]
    fn skewed_sequence_plans_a_tree() {
        let m = dense_classifier(30);
        let mut counts = flat_counts(30, 1);
        counts[15] = 500; // one hot interior case
        let (_, items) = seq_and_items(&m.functions[0], counts);
        let plan = plan_dispatch_with(&items, &CostModel::reference()).expect("plannable");
        assert_eq!(plan.structure(), DispatchStructure::Tree);
        check_dispatch(&items, &plan).expect("plan routes correctly");
    }

    #[test]
    fn table_dispatch_preserves_behaviour() {
        let m = dense_classifier(30);
        let input: Vec<u8> = (0..600).map(|i| b'a' + (i % 30) as u8).collect();
        let base = run(&m, &input, &VmOptions::default()).unwrap();
        let mut out = m.clone();
        {
            let f = &mut out.functions[0];
            let (seq, items) = seq_and_items(f, flat_counts(30, 20));
            let plan = plan_dispatch_with(&items, &CostModel::reference()).unwrap();
            assert_eq!(plan.structure(), DispatchStructure::Table);
            let r = apply_dispatch(f, &seq, &items, &plan);
            assert_eq!(r.branches, 2);
            br_opt::cleanup_function(f);
        }
        br_ir::verify_module(&out).unwrap();
        let got = run(&out, &input, &VmOptions::default()).unwrap();
        assert_eq!(base.exit, got.exit);
        assert_eq!(base.output, got.output);
        assert!(got.stats.indirect_jumps > 0, "table must actually dispatch");
        assert!(
            got.stats.cond_branches < base.stats.cond_branches,
            "flat 30-way dispatch must cut branches: {} -> {}",
            base.stats.cond_branches,
            got.stats.cond_branches
        );
    }

    #[test]
    fn tree_dispatch_preserves_behaviour() {
        let m = dense_classifier(8);
        let input: Vec<u8> = (0..400).map(|i| b'a' + (i % 8) as u8).collect();
        let base = run(&m, &input, &VmOptions::default()).unwrap();
        let mut out = m.clone();
        {
            let f = &mut out.functions[0];
            let (seq, items) = seq_and_items(f, flat_counts(8, 20));
            let plan = plan_dispatch_with(&items, &CostModel::reference()).unwrap();
            assert_eq!(plan.structure(), DispatchStructure::Tree);
            apply_dispatch(f, &seq, &items, &plan);
            br_opt::cleanup_function(f);
        }
        br_ir::verify_module(&out).unwrap();
        let got = run(&out, &input, &VmOptions::default()).unwrap();
        assert_eq!(base.exit, got.exit);
        assert_eq!(base.output, got.output);
    }

    #[test]
    fn dispatch_duplicates_side_effect_bundles() {
        // A sequence with an intervening store: exits past it must run
        // it exactly once, whatever the structure.
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        let x = b.new_reg();
        b.set_param_regs(vec![v, x]);
        let e = b.entry();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 1i64, Cond::Eq, t1, c2);
        b.store(c2, 500i64, 0i64, x);
        b.cmp_branch(c2, v, 2i64, Cond::Eq, t2, td);
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(None));
        }
        let mut f = b.finish();
        let before = f.blocks.len();
        let (seq, items) = seq_and_items(&f, vec![3, 3, 1, 1]);
        let plan = plan_dispatch_with(&items, &CostModel::reference()).unwrap();
        check_dispatch(&items, &plan).unwrap();
        emit_dispatch(&mut f, &seq, &items, &plan);
        let stores = f.blocks[before..]
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert!(stores >= 1, "side effect must reach the replica's pads");
        br_ir::verify_function(&f, None).unwrap();
    }

    #[test]
    fn check_dispatch_rejects_corrupted_plans() {
        let m = dense_classifier(10);
        let (_, items) = seq_and_items(&m.functions[0], flat_counts(10, 5));
        let plan = plan_dispatch_with(&items, &CostModel::reference()).unwrap();
        match plan {
            DispatchPlan::Table(mut t) => {
                t.slots.swap(0, 1);
                let bad = DispatchPlan::Table(t);
                assert!(check_dispatch(&items, &bad).is_err());
            }
            DispatchPlan::Tree(mut t) => {
                if let TreeNode::Le { below, above, .. } = &mut t.root {
                    std::mem::swap(below, above);
                }
                let bad = DispatchPlan::Tree(t);
                assert!(check_dispatch(&items, &bad).is_err());
            }
        }
    }

    #[test]
    fn structure_names_round_trip() {
        for s in [
            DispatchStructure::Chain,
            DispatchStructure::Tree,
            DispatchStructure::Table,
        ] {
            assert_eq!(DispatchStructure::parse(s.as_str()), Some(s));
        }
        assert_eq!(DispatchStructure::parse("ladder"), None);
    }

    #[test]
    fn cost_model_is_cached_and_sane() {
        let a = cost_model();
        let b = cost_model();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.test_units, 2.0);
        assert!(a.table_units > 0.0);
    }
}
