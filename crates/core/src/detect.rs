//! Detecting reorderable sequences of range conditions (the paper's
//! Section 3, Figure 4).
//!
//! A *range condition* is one branch — or a pair of branches forming a
//! bounded range (Table 1, Form 4) — testing whether a common variable
//! lies in a range. A *reorderable sequence* is a path of range
//! conditions over nonoverlapping ranges testing the same variable.
//!
//! The walk follows the paper's algorithm: find two nonoverlapping range
//! conditions (retrying the first with its complementary interpretation
//! if needed), then keep extending until no further nonoverlapping
//! condition exists.

use std::collections::HashSet;

use br_ir::{reverse_postorder, BlockId, Cond, Function, Inst, Operand, Reg, Terminator};

use crate::range::{nonoverlapping, Range};

/// One detected range condition.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectedCondition {
    /// The tested range; control exits to `target` when the variable is
    /// inside it.
    pub range: Range,
    /// Exit target of the sequence for this condition.
    pub target: BlockId,
    /// Block(s) implementing the condition: one, or two for Form 4.
    pub blocks: Vec<BlockId>,
    /// Instructions preceding the compare in the condition's first block.
    /// For the sequence head these stay put; for later conditions they
    /// are the *intervening side effects* moved below the sequence by
    /// duplication (Theorem 2).
    pub side_effects: Vec<Inst>,
}

impl DetectedCondition {
    /// Branches this condition executes (Table 1).
    pub fn branch_count(&self) -> u32 {
        self.range.branch_count()
    }
}

/// A detected reorderable sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectedSequence {
    /// The common branch variable.
    pub var: Reg,
    /// Block of the first range condition.
    pub head: BlockId,
    /// The conditions, in original order. Always `>= 2`.
    pub conds: Vec<DetectedCondition>,
    /// Where control continues when no condition is satisfied (the
    /// original default target `TD`).
    pub default_target: BlockId,
}

impl DetectedSequence {
    /// Total branches in the original sequence (the paper's "original
    /// sequence length").
    pub fn branch_len(&self) -> u32 {
        self.conds.iter().map(|c| c.branch_count()).sum()
    }

    /// The explicit ranges, in condition order.
    pub fn explicit_ranges(&self) -> Vec<Range> {
        self.conds.iter().map(|c| c.range).collect()
    }
}

/// The compare of a block, normalized to `reg ? constant` form.
fn const_compare(f: &Function, b: BlockId) -> Option<(Reg, i64, Cond)> {
    let block = f.block(b);
    let Terminator::Branch { cond, .. } = block.term else {
        return None;
    };
    // Require the compare to be the final instruction so everything
    // before it is a self-contained prefix (candidate side effects).
    let last = block.insts.last()?;
    let Inst::Cmp { lhs, rhs } = last else {
        return None;
    };
    match (lhs, rhs) {
        (Operand::Reg(r), Operand::Imm(c)) => Some((*r, *c, cond)),
        (Operand::Imm(c), Operand::Reg(r)) => Some((*r, *c, cond.swap())),
        _ => None,
    }
}

fn branch_targets(f: &Function, b: BlockId) -> (BlockId, BlockId) {
    match f.block(b).term {
        Terminator::Branch {
            taken, not_taken, ..
        } => (taken, not_taken),
        _ => unreachable!("caller checked terminator"),
    }
}

/// Value range for which the branch in `b` *takes*, and for which it
/// *falls through*, given the compare `v ? c`.
fn branch_halves(cond: Cond, c: i64) -> Option<(Range, Range)> {
    Some(match cond {
        Cond::Eq => (Range::single(c), Range::full()), // fall side handled by caller
        Cond::Ne => (Range::full(), Range::single(c)),
        Cond::Lt => (Range::new(i64::MIN, c.checked_sub(1)?)?, Range::from(c)),
        Cond::Le => (Range::up_to(c), Range::from(c.checked_add(1)?)),
        Cond::Gt => (Range::from(c.checked_add(1)?), Range::up_to(c)),
        Cond::Ge => (Range::from(c), Range::new(i64::MIN, c.checked_sub(1)?)?),
    })
}

/// One step of the paper's `Find_Range_Cond`.
///
/// Looks for a range condition at block `b` testing `var` (or, when `var`
/// is `None`, any register — the first condition fixes the variable) that
/// does not overlap `ranges`. Returns the condition and the continuation
/// block.
fn find_range_cond(
    f: &Function,
    ranges: &[Range],
    var: Option<Reg>,
    b: BlockId,
) -> Option<(DetectedCondition, BlockId, Reg)> {
    let (v, c, cond) = const_compare(f, b)?;
    if let Some(expected) = var {
        if v != expected {
            return None;
        }
    }
    let (taken, not_taken) = branch_targets(f, b);
    let side_effects = {
        let insts = &f.block(b).insts;
        insts[..insts.len() - 1].to_vec()
    };
    let mk = |range: Range, target: BlockId, blocks: Vec<BlockId>| DetectedCondition {
        range,
        target,
        blocks,
        side_effects: side_effects.clone(),
    };
    match cond {
        Cond::Eq => {
            let r = Range::single(c);
            nonoverlapping(&r, ranges).then(|| (mk(r, taken, vec![b]), not_taken, v))
        }
        Cond::Ne => {
            let r = Range::single(c);
            nonoverlapping(&r, ranges).then(|| (mk(r, not_taken, vec![b]), taken, v))
        }
        _ => {
            // Form 4: this branch plus a successor's branch may bound a
            // range, with the out-of-range sides sharing a successor.
            if let Some(found) = find_bounded_pair(f, ranges, v, b, c, cond) {
                return Some(found);
            }
            let (taken_range, fall_range) = branch_halves(cond, c)?;
            if nonoverlapping(&taken_range, ranges) {
                Some((mk(taken_range, taken, vec![b]), not_taken, v))
            } else if nonoverlapping(&fall_range, ranges) {
                Some((mk(fall_range, not_taken, vec![b]), taken, v))
            } else {
                None
            }
        }
    }
}

/// The Form 4 case: `b`'s branch and the branch of a successor `s` form a
/// bounded range, and `b` and `s` share the out-of-range successor.
fn find_bounded_pair(
    f: &Function,
    ranges: &[Range],
    v: Reg,
    b: BlockId,
    c: i64,
    cond: Cond,
) -> Option<(DetectedCondition, BlockId, Reg)> {
    let (b_taken, b_fall) = branch_targets(f, b);
    let (taken_range, fall_range) = branch_halves(cond, c)?;
    let side_effects = {
        let insts = &f.block(b).insts;
        insts[..insts.len() - 1].to_vec()
    };
    // Try continuing through each successor of b.
    for (s, incoming, other_b) in [
        (b_taken, taken_range, b_fall),
        (b_fall, fall_range, b_taken),
    ] {
        if s == other_b || s == b {
            continue;
        }
        // The second block must be *only* a compare of the same variable.
        let Some((v2, c2, cond2)) = const_compare(f, s) else {
            continue;
        };
        if v2 != v || f.block(s).insts.len() != 1 {
            continue;
        }
        // Only relational second compares: the fall-through side of an
        // equality test is not a contiguous range.
        if matches!(cond2, Cond::Eq | Cond::Ne) {
            continue;
        }
        let Some((s_taken_half, s_fall_half)) = branch_halves(cond2, c2) else {
            continue;
        };
        let (s_taken, s_fall) = branch_targets(f, s);
        for (target, half, other_s) in [
            (s_taken, s_taken_half, s_fall),
            (s_fall, s_fall_half, s_taken),
        ] {
            // Bounded intersection of the incoming interval with this arm.
            let lo = incoming.lo.max(half.lo);
            let hi = incoming.hi.min(half.hi);
            let Some(r) = Range::new(lo, hi) else {
                continue;
            };
            if !r.is_bounded_multi() {
                continue;
            }
            // The out-of-range sides must merge: s's other arm == b's
            // other arm (the common successor), and it is the
            // continuation of the sequence.
            if other_s != other_b || target == other_b {
                continue;
            }
            if !nonoverlapping(&r, ranges) {
                continue;
            }
            return Some((
                DetectedCondition {
                    range: r,
                    target,
                    blocks: vec![b, s],
                    side_effects,
                },
                other_b,
                v,
            ));
        }
    }
    None
}

/// The paper's `Find_First_Two_Conds`: find the first two nonoverlapping
/// conditions starting at `b`, retrying the first condition with its
/// complementary interpretation when the straightforward one leads
/// nowhere.
fn find_first_two(
    f: &Function,
    b: BlockId,
) -> Option<(DetectedCondition, DetectedCondition, BlockId, Reg)> {
    if let Some((r1, n1, v)) = find_range_cond(f, &[], None, b) {
        if let Some((r2, n2, _)) = find_range_cond(f, &[r1.range], Some(v), n1) {
            if disjoint_blocks(&r1, &r2) {
                return Some((r1, r2, n2, v));
            }
        }
        // Retry: excluding the found range forces the complementary
        // interpretation (continuation through the other successor).
        let blocked = [r1.range];
        if let Some((r1b, n1b, v)) = find_range_cond(f, &blocked, None, b) {
            if let Some((r2, n2, _)) = find_range_cond(f, &[r1b.range], Some(v), n1b) {
                if disjoint_blocks(&r1b, &r2) {
                    return Some((r1b, r2, n2, v));
                }
            }
        }
    }
    None
}

fn disjoint_blocks(a: &DetectedCondition, b: &DetectedCondition) -> bool {
    b.blocks.iter().all(|bb| !a.blocks.contains(bb))
}

/// Side effects between conditions may be moved below the sequence only
/// if they do not affect the branch variable (Theorem 2). Calls also
/// cannot define it. Profiling probes never appear mid-sequence.
fn side_effects_movable(cond: &DetectedCondition, var: Reg) -> bool {
    cond.side_effects.iter().all(|inst| {
        inst.def() != Some(var) && !matches!(inst, Inst::Cmp { .. } | Inst::ProfileRanges { .. })
    })
}

/// Every exit target of the sequence must not *consume* condition codes
/// set inside the sequence: after reordering, the compare that set them
/// will be a different one.
fn targets_cc_clean(f: &Function, seq: &DetectedSequence) -> bool {
    let needs_cc = needs_cc_on_entry(f);
    seq.conds
        .iter()
        .map(|c| c.target)
        .chain([seq.default_target])
        .all(|t| !needs_cc[t.index()])
}

/// Blocks whose behaviour depends on condition codes live at entry.
fn needs_cc_on_entry(f: &Function) -> Vec<bool> {
    let n = f.blocks.len();
    let mut needs = vec![false; n];
    loop {
        let mut changed = false;
        for b in (0..n).rev() {
            let block = &f.blocks[b];
            let writes_cc = block
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Cmp { .. } | Inst::Call { .. }));
            let val = if writes_cc {
                false
            } else {
                matches!(block.term, Terminator::Branch { .. })
                    || block.term.successors().iter().any(|s| needs[s.index()])
            };
            if val != needs[b] {
                needs[b] = val;
                changed = true;
            }
        }
        if !changed {
            return needs;
        }
    }
}

/// Detect every reorderable sequence in `f` (the paper's Figure 4 outer
/// loop). Sequences are disjoint: each block belongs to at most one.
/// Results are in reverse-postorder of their head blocks, so detection is
/// deterministic and identical across the profiling and reordering
/// compilation passes.
///
/// ```
/// use br_ir::{Cond, FuncBuilder, Operand, Terminator};
/// use br_reorder::detect_sequences;
///
/// // if (v == 10) T1; else if (v == 20) T2; else TD
/// let mut b = FuncBuilder::new("f");
/// let v = b.new_reg();
/// b.set_param_regs(vec![v]);
/// let (e, c2) = (b.entry(), b.new_block());
/// let (t1, t2, td) = (b.new_block(), b.new_block(), b.new_block());
/// b.cmp_branch(e, v, 10i64, Cond::Eq, t1, c2);
/// b.cmp_branch(c2, v, 20i64, Cond::Eq, t2, td);
/// for t in [t1, t2, td] { b.set_term(t, Terminator::Return(None)); }
///
/// let seqs = detect_sequences(&b.finish());
/// assert_eq!(seqs.len(), 1);
/// assert_eq!(seqs[0].conds.len(), 2);
/// ```
pub fn detect_sequences(f: &Function) -> Vec<DetectedSequence> {
    let mut out = Vec::new();
    let mut marked: HashSet<BlockId> = HashSet::new();
    for b in reverse_postorder(f) {
        if marked.contains(&b) {
            continue;
        }
        let Some((r1, r2, mut next, var)) = find_first_two(f, b) else {
            continue;
        };
        // Intervening side effects of the second condition must be
        // movable (the head's prefix stays put, so r1 is unconstrained).
        if !side_effects_movable(&r2, var) {
            continue;
        }
        if r1
            .blocks
            .iter()
            .chain(&r2.blocks)
            .any(|bb| marked.contains(bb))
        {
            continue;
        }
        let mut ranges = vec![r1.range, r2.range];
        let mut used: HashSet<BlockId> = r1.blocks.iter().chain(&r2.blocks).copied().collect();
        let mut conds = vec![r1, r2];
        // Keep extending (Figure 4's while loop).
        while let Some((cond, n, _)) = find_range_cond(f, &ranges, Some(var), next) {
            if !side_effects_movable(&cond, var)
                || cond
                    .blocks
                    .iter()
                    .any(|bb| used.contains(bb) || marked.contains(bb))
            {
                break;
            }
            ranges.push(cond.range);
            used.extend(cond.blocks.iter().copied());
            next = n;
            conds.push(cond);
        }
        let seq = DetectedSequence {
            var,
            head: b,
            conds,
            default_target: next,
        };
        // Exits must not consume in-sequence condition codes.
        if !targets_cc_clean(f, &seq) {
            continue;
        }
        marked.extend(used);
        out.push(seq);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{FuncBuilder, Operand};

    /// if (v == 10) T1; else if (v == 20) T2; else if (v < 5) T3; else TD
    fn chain_function() -> Function {
        let mut b = FuncBuilder::new("chain");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let c3 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let t3 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 10i64, Cond::Eq, t1, c2);
        b.cmp_branch(c2, v, 20i64, Cond::Eq, t2, c3);
        b.cmp_branch(c3, v, 5i64, Cond::Lt, t3, td);
        for (t, val) in [(t1, 1i64), (t2, 2), (t3, 3), (td, 4)] {
            b.set_term(t, Terminator::Return(Some(Operand::Imm(val))));
        }
        b.finish()
    }

    #[test]
    fn detects_equality_chain_with_relational_tail() {
        let f = chain_function();
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
        let s = &seqs[0];
        assert_eq!(s.var, Reg(0));
        assert_eq!(s.head, BlockId(0));
        assert_eq!(
            s.explicit_ranges(),
            vec![Range::single(10), Range::single(20), Range::up_to(4)]
        );
        assert_eq!(s.default_target, BlockId(6));
        assert_eq!(s.branch_len(), 3);
    }

    #[test]
    fn ne_condition_exits_through_fallthrough() {
        // while-style: if (v != 0) continue_sequence... i.e. `bne` exits
        // to the *taken* side only when... Ne: range [c..c] exits via
        // not_taken, sequence continues through taken.
        let mut b = FuncBuilder::new("ne");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 0i64, Cond::Ne, c2, t1);
        b.cmp_branch(c2, v, 7i64, Cond::Eq, t2, td);
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(None));
        }
        let f = b.finish();
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
        assert_eq!(
            seqs[0].explicit_ranges(),
            vec![Range::single(0), Range::single(7)]
        );
        assert_eq!(seqs[0].conds[0].target, t1);
    }

    #[test]
    fn detects_bounded_pair_as_one_condition() {
        // if (v >= 'a' && v <= 'z') T1; else if (v == ' ') T2; else TD
        let mut b = FuncBuilder::new("bounds");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let hi = b.new_block();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 97i64, Cond::Lt, c2, hi);
        b.cmp_branch(hi, v, 122i64, Cond::Gt, c2, t1);
        b.cmp_branch(c2, v, 32i64, Cond::Eq, t2, td);
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(None));
        }
        let f = b.finish();
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
        let s = &seqs[0];
        assert_eq!(
            s.explicit_ranges(),
            vec![Range::new(97, 122).unwrap(), Range::single(32)]
        );
        assert_eq!(s.conds[0].blocks.len(), 2);
        assert_eq!(s.conds[0].target, t1);
        assert_eq!(s.branch_len(), 3);
    }

    #[test]
    fn overlapping_ranges_end_the_sequence() {
        // v == 10 then v < 50 (overlaps 10? no: [MIN..49] overlaps [10]).
        let mut b = FuncBuilder::new("overlap");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let c3 = b.new_block();
        let t = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 10i64, Cond::Eq, t, c2);
        // [MIN..49] overlaps [10..10]: but its complement [50..MAX] is
        // the fall-through range, so detection flips interpretation:
        // exits via fall-through when v >= 50.
        b.cmp_branch(c2, v, 50i64, Cond::Lt, c3, t);
        b.cmp_branch(c3, v, 20i64, Cond::Eq, t, td);
        b.set_term(t, Terminator::Return(None));
        b.set_term(td, Terminator::Return(None));
        let f = b.finish();
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
        assert_eq!(
            seqs[0].explicit_ranges(),
            vec![Range::single(10), Range::from(50), Range::single(20)]
        );
    }

    #[test]
    fn different_variables_break_the_sequence() {
        let mut b = FuncBuilder::new("vars");
        let v = b.new_reg();
        let w = b.new_reg();
        b.set_param_regs(vec![v, w]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 1i64, Cond::Eq, t, c2);
        b.cmp_branch(c2, w, 2i64, Cond::Eq, t, td);
        b.set_term(t, Terminator::Return(None));
        b.set_term(td, Terminator::Return(None));
        let f = b.finish();
        assert!(
            detect_sequences(&f).is_empty(),
            "needs two conds on one var"
        );
    }

    #[test]
    fn non_constant_compare_is_not_a_range_condition() {
        let mut b = FuncBuilder::new("regreg");
        let v = b.new_reg();
        let w = b.new_reg();
        b.set_param_regs(vec![v, w]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, w, Cond::Eq, t, c2); // reg-reg compare
        b.cmp_branch(c2, v, 2i64, Cond::Eq, t, td);
        b.set_term(t, Terminator::Return(None));
        b.set_term(td, Terminator::Return(None));
        let f = b.finish();
        assert!(detect_sequences(&f).is_empty());
    }

    #[test]
    fn swapped_compare_operands_are_normalized() {
        // cmp 10, v ; blt T  means  10 < v  i.e. v > 10.
        let mut b = FuncBuilder::new("swap");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let td = b.new_block();
        b.cmp(e, 10i64, v);
        b.set_term(e, Terminator::branch(Cond::Lt, t, c2));
        b.cmp_branch(c2, v, 3i64, Cond::Eq, t, td);
        b.set_term(t, Terminator::Return(None));
        b.set_term(td, Terminator::Return(None));
        let f = b.finish();
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
        assert_eq!(
            seqs[0].explicit_ranges(),
            vec![Range::from(11), Range::single(3)]
        );
    }

    #[test]
    fn side_effect_on_branch_variable_stops_extension() {
        // First condition ok; second block reassigns v before comparing.
        let mut b = FuncBuilder::new("sidefx");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let c3 = b.new_block();
        let t = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 1i64, Cond::Eq, t, c2);
        b.copy(c2, v, 99i64); // defines the branch variable
        b.cmp_branch(c2, v, 2i64, Cond::Eq, t, c3);
        b.cmp_branch(c3, v, 3i64, Cond::Eq, t, td);
        b.set_term(t, Terminator::Return(None));
        b.set_term(td, Terminator::Return(None));
        let f = b.finish();
        let seqs = detect_sequences(&f);
        // [e, c2] is rejected (side effect on v), but [c2, c3] is a valid
        // two-condition sequence whose head prefix (the copy) stays put.
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].head, c2);
        assert_eq!(seqs[0].conds.len(), 2);
    }

    #[test]
    fn movable_side_effects_are_collected() {
        let mut b = FuncBuilder::new("movable");
        let v = b.new_reg();
        let x = b.new_reg();
        b.set_param_regs(vec![v, x]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 1i64, Cond::Eq, t, c2);
        b.store(c2, 100i64, 0i64, x); // movable side effect
        b.cmp_branch(c2, v, 2i64, Cond::Eq, t, td);
        b.set_term(t, Terminator::Return(None));
        b.set_term(td, Terminator::Return(None));
        let f = b.finish();
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].conds[1].side_effects.len(), 1);
    }

    #[test]
    fn loop_shaped_chain_terminates_and_detects() {
        // while ((c = v) != -1) classify: conditions loop back to head.
        let f = chain_function();
        // Rewire T1 back to the head to create a cycle through targets.
        let mut f = f;
        f.blocks[3].term = Terminator::Jump(BlockId(0));
        let seqs = detect_sequences(&f);
        assert_eq!(seqs.len(), 1);
    }

    #[test]
    fn detection_is_deterministic() {
        let f = chain_function();
        assert_eq!(detect_sequences(&f), detect_sequences(&f));
    }

    #[test]
    fn cc_consuming_target_rejects_sequence() {
        // A target block with a branch but no cmp of its own (relies on
        // the sequence's cc): reordering would change what it observes.
        let mut b = FuncBuilder::new("ccdirty");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let t = b.new_block();
        let dirty = b.new_block();
        let x = b.new_block();
        b.cmp_branch(e, v, 1i64, Cond::Eq, t, c2);
        b.cmp_branch(c2, v, 2i64, Cond::Eq, t, dirty);
        // `dirty` consumes incoming condition codes.
        b.set_term(dirty, Terminator::branch(Cond::Lt, x, t));
        b.set_term(t, Terminator::Return(None));
        b.set_term(x, Terminator::Return(None));
        let f = b.finish();
        assert!(detect_sequences(&f).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use br_ir::{FuncBuilder, Operand, Terminator};
    use br_workloads::rng::SmallRng;

    /// Build an if/else-if chain function over random distinct constants
    /// and operators, returning it plus the number of conditions built.
    fn build_chain(consts: &[i64], ops: &[u8]) -> Function {
        let mut b = FuncBuilder::new("chain");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let mut cur = b.entry();
        let exit = b.new_block();
        b.set_term(exit, Terminator::Return(Some(Operand::Imm(-1))));
        for (i, (&c, &op)) in consts.iter().zip(ops).enumerate() {
            let target = b.new_block();
            b.set_term(target, Terminator::Return(Some(Operand::Imm(i as i64))));
            let next = b.new_block();
            let cond = match op % 3 {
                0 => Cond::Eq,
                1 => Cond::Ne,
                _ => Cond::Eq,
            };
            match cond {
                Cond::Ne => b.cmp_branch(cur, v, c, Cond::Ne, next, target),
                _ => b.cmp_branch(cur, v, c, Cond::Eq, target, next),
            }
            cur = next;
        }
        b.set_term(cur, Terminator::Jump(exit));
        b.finish()
    }

    /// Random distinct constants plus operator picks for `build_chain`.
    fn arb_chain(rng: &mut SmallRng) -> Option<(Vec<i64>, Vec<u8>)> {
        let n = rng.gen_range(2usize..10);
        let mut consts: Vec<i64> = (0..n).map(|_| rng.gen_range(-100i64..100)).collect();
        consts.sort_unstable();
        consts.dedup();
        if consts.len() < 2 {
            return None;
        }
        let ops: Vec<u8> = (0..10).map(|_| rng.gen_range(0u8..3)).collect();
        Some((consts, ops))
    }

    #[test]
    fn equality_chains_detect_fully() {
        for seed in 0..256u64 {
            let Some((consts, ops)) = arb_chain(&mut SmallRng::seed_from_u64(seed)) else {
                continue;
            };
            let f = build_chain(&consts, &ops);
            let seqs = detect_sequences(&f);
            assert_eq!(seqs.len(), 1, "seed {seed}");
            let seq = &seqs[0];
            assert_eq!(seq.conds.len(), consts.len(), "seed {seed}");
            // Detected ranges are exactly the singletons, in order.
            let expected: Vec<Range> = consts.iter().map(|&c| Range::single(c)).collect();
            assert_eq!(seq.explicit_ranges(), expected, "seed {seed}");
        }
    }

    #[test]
    fn detected_ranges_never_overlap() {
        for seed in 0..256u64 {
            let Some((consts, ops)) = arb_chain(&mut SmallRng::seed_from_u64(seed)) else {
                continue;
            };
            let f = build_chain(&consts, &ops);
            for seq in detect_sequences(&f) {
                let ranges = seq.explicit_ranges();
                for (i, a) in ranges.iter().enumerate() {
                    for b in &ranges[i + 1..] {
                        assert!(!a.overlaps(b), "seed {seed}: {a:?} overlaps {b:?}");
                    }
                }
            }
        }
    }
}
