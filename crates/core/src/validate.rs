//! Stage-attributing translation validation for the pipeline.
//!
//! [`validate_sequence`] wraps `br_analysis`'s equivalence prover with
//! the pipeline's vocabulary: given the detected sequence, the function
//! as it was just before `apply_reordering`, and the function just
//! after, it proves the replica equivalent to the original chain — and
//! when the proof fails, it names the pipeline [`Stage`] that broke the
//! program, so a validation failure is a bug report, not a mystery.
//!
//! Attribution logic:
//!
//! - Theorem 2 legality violations (moved side effects writing the
//!   tested variable, cc-consuming exit targets) and partition errors
//!   on the *original* chain mean the detector modeled the program
//!   wrong: [`Stage::Detect`].
//! - Structurally inconsistent orderings (duplicate or out-of-bounds
//!   item indices, a missing default) mean selection broke:
//!   [`Stage::Order`].
//! - Partition or effect divergence in the *replica* means emission
//!   broke: [`Stage::Emit`].
//! - A module that stops verifying after the clean-up pass:
//!   [`Stage::Cleanup`] (checked by the pipeline, not here).

use br_analysis::validate::{EquivalenceCheck, EquivalenceProof};
use br_analysis::Interval;
use br_ir::{BlockId, FuncId, Function};
use std::collections::BTreeSet;

use crate::detect::DetectedSequence;
use crate::order::{OrderItem, Ordering};
use crate::profile::plan_ranges;

/// The pipeline stage a validation failure implicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Sequence detection (including Theorem 2 legality screening).
    Detect,
    /// Ordering selection (greedy / exhaustive).
    Order,
    /// Replica emission and CFG splicing.
    Emit,
    /// The post-reordering clean-up optimizations.
    Cleanup,
    /// The profile-guided block-layout pass (`--layout exttsp`).
    Layout,
}

impl Stage {
    /// The stage's stable diagnostic code (see the code table in
    /// DESIGN.md §13): `brc lint --deny` and CI key on these, so they
    /// never change meaning once assigned.
    pub fn code(&self) -> &'static str {
        match self {
            Stage::Detect => "BR0201",
            Stage::Order => "BR0202",
            Stage::Emit => "BR0203",
            Stage::Cleanup => "BR0204",
            Stage::Layout => "BR0205",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Detect => write!(f, "detect"),
            Stage::Order => write!(f, "order"),
            Stage::Emit => write!(f, "emit"),
            Stage::Cleanup => write!(f, "cleanup"),
            Stage::Layout => write!(f, "layout"),
        }
    }
}

/// One failed validation, attributed to a stage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageFailure {
    /// The offending stage.
    pub stage: Stage,
    /// Function the sequence lives in.
    pub func: FuncId,
    /// Sequence head (pre-transformation block id), when per-sequence.
    pub head: Option<BlockId>,
    /// Human-readable violations.
    pub details: Vec<String>,
}

impl std::fmt::Display for StageFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] validation failed in the `{}` stage",
            self.stage.code(),
            self.stage
        )?;
        if let Some(h) = self.head {
            write!(f, " (sequence at {h})")?;
        }
        for d in &self.details {
            write!(f, "\n  - {d}")?;
        }
        Ok(())
    }
}

/// Every exit of a sequence: all condition targets plus the default.
pub fn sequence_exits(seq: &DetectedSequence) -> BTreeSet<BlockId> {
    seq.conds
        .iter()
        .map(|c| c.target)
        .chain([seq.default_target])
        .collect()
}

/// The detector's declared range→target plan, in validator vocabulary.
pub fn declared_plan(seq: &DetectedSequence) -> Vec<(Interval, BlockId)> {
    plan_ranges(seq)
        .into_iter()
        .map(|(r, _, target)| (Interval::new(r.lo, r.hi), target))
        .collect()
}

/// Structural sanity of a selected ordering: item indices in bounds and
/// unique, every item accounted for exactly once.
pub fn check_ordering(items: &[OrderItem], ordering: &Ordering) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut seen = vec![0u8; items.len()];
    for &i in ordering.explicit.iter().chain(&ordering.eliminated) {
        match seen.get_mut(i) {
            Some(s) => *s += 1,
            None => problems.push(format!("ordering names nonexistent item {i}")),
        }
    }
    for (i, &s) in seen.iter().enumerate() {
        if s == 0 {
            problems.push(format!(
                "item {i} ({:?}) dropped by the ordering",
                items[i].range
            ));
        } else if s > 1 {
            problems.push(format!("item {i} appears {s} times in the ordering"));
        }
    }
    for &i in &ordering.eliminated {
        if items
            .get(i)
            .is_some_and(|it| it.target != ordering.default_target)
        {
            problems.push(format!(
                "eliminated item {i} targets {} but the fall-through goes to {}",
                items[i].target, ordering.default_target
            ));
        }
    }
    if !ordering.cost.is_finite() || ordering.cost < 0.0 {
        problems.push(format!("ordering cost {} is not sane", ordering.cost));
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Independent Theorem 2 legality check of a detected sequence: the
/// side effects the transformation will move, re-screened with the
/// dataflow-based purity analysis rather than the detector's own scan.
pub fn check_motion_legality(f: &Function, seq: &DetectedSequence) -> Result<(), Vec<String>> {
    let moved: Vec<BlockId> = seq
        .conds
        .iter()
        .skip(1)
        .flat_map(|c| c.blocks.iter().copied())
        .collect();
    let exits: Vec<BlockId> = sequence_exits(seq).into_iter().collect();
    let violations = br_analysis::check_motion(f, seq.var, &moved, &exits);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.iter().map(|v| v.to_string()).collect())
    }
}

/// Prove one applied sequence equivalent to its original chain.
///
/// `original` is the function just before `apply_reordering`,
/// `reordered` just after (before clean-up, so block ids align), and
/// `replica_start` the block count of `original` (the first replica
/// block's id). On failure the [`StageFailure`] names the stage.
///
/// # Errors
///
/// Returns the attributed failure when any proof obligation fails.
pub fn validate_sequence(
    func: FuncId,
    original: &Function,
    reordered: &Function,
    seq: &DetectedSequence,
    replica_start: u32,
) -> Result<EquivalenceProof, StageFailure> {
    // Theorem 2 re-screen: a violation here is a detector bug even if
    // the emitted code happens to be equivalent.
    if let Err(details) = check_motion_legality(original, seq) {
        return Err(StageFailure {
            stage: Stage::Detect,
            func,
            head: Some(seq.head),
            details,
        });
    }
    let check = EquivalenceCheck {
        original,
        reordered,
        var: seq.var,
        head: seq.head,
        exits: sequence_exits(seq),
        replica_start,
        expected: declared_plan(seq),
    };
    br_analysis::check_equivalence(&check).map_err(|errors| {
        let stage = if errors.iter().any(|e| e.blames_original()) {
            Stage::Detect
        } else {
            Stage::Emit
        };
        StageFailure {
            stage,
            func,
            head: Some(seq.head),
            details: errors.iter().map(|e| e.to_string()).collect(),
        }
    })
}

/// Certify one applied sequence: everything [`validate_sequence`]
/// proves, upgraded to the certifying prover — soundness prechecks on
/// the replica's CFG, constraint-subsumption equivalence, and a
/// rendered proof certificate on success; on refutation, a concrete
/// counterexample witness where one exists.
///
/// # Errors
///
/// Returns the stage-attributed failure plus the solved witness.
pub fn certify_sequence(
    func: FuncId,
    original: &Function,
    reordered: &Function,
    seq: &DetectedSequence,
    replica_start: u32,
) -> Result<br_analysis::SequenceProof, CertifyFailure> {
    if let Err(details) = check_motion_legality(original, seq) {
        return Err(CertifyFailure {
            failure: StageFailure {
                stage: Stage::Detect,
                func,
                head: Some(seq.head),
                details,
            },
            witness: None,
        });
    }
    let check = EquivalenceCheck {
        original,
        reordered,
        var: seq.var,
        head: seq.head,
        exits: sequence_exits(seq),
        replica_start,
        expected: declared_plan(seq),
    };
    br_analysis::prove_sequence(&check).map_err(|refutation| {
        let stage = if refutation.errors.iter().any(|e| e.blames_original()) {
            Stage::Detect
        } else {
            Stage::Emit
        };
        let mut details: Vec<String> = refutation.errors.iter().map(|e| e.to_string()).collect();
        if let Some(w) = &refutation.witness {
            details.push(format!("counterexample witness: {w}"));
        }
        CertifyFailure {
            failure: StageFailure {
                stage,
                func,
                head: Some(seq.head),
                details,
            },
            witness: refutation.witness,
        }
    })
}

/// A refuted certification: the stage-attributed failure plus the
/// concrete counterexample, kept structured so frontends can turn it
/// into a replayable fuzz corpus entry.
#[derive(Clone, Debug)]
pub struct CertifyFailure {
    /// The attributed failure (witness already appended to details).
    pub failure: StageFailure,
    /// The solved counterexample, when a diverging value class exists.
    pub witness: Option<br_analysis::Witness>,
}

/// A proof certificate for one committed sequence, as carried in the
/// pipeline report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SequenceCertificate {
    /// Function the sequence lives in.
    pub func: FuncId,
    /// Sequence head (pre-transformation block id).
    pub head: BlockId,
    /// The full certificate text (see `br_analysis::cert`).
    pub text: String,
    /// The certificate's signature / content address.
    pub sig: u64,
}

/// Summary of a validated pipeline run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ValidationSummary {
    /// Sequences whose equivalence proof succeeded.
    pub proven: usize,
    /// Total value classes compared across all proofs.
    pub value_classes: usize,
    /// Every failure, stage-attributed.
    pub failures: Vec<StageFailure>,
    /// Proof certificates for the committed reorderings; populated in
    /// `Certify` mode only.
    pub certificates: Vec<SequenceCertificate>,
}

impl ValidationSummary {
    /// Whether every proof obligation held.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for ValidationSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sequence(s) proven equivalent across {} value class(es)",
            self.proven, self.value_classes
        )?;
        if !self.certificates.is_empty() {
            write!(f, ", {} certificate(s) emitted", self.certificates.len())?;
        }
        for failure in &self.failures {
            write!(f, "\n{failure}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_sequences;
    use crate::order::select_ordering;
    use crate::pipeline::eliminable_items;
    use crate::profile::{order_items, SequenceProfile};
    use br_ir::{Cond, FuncBuilder, Operand, Terminator};

    use super::certify_sequence;

    fn chain_function() -> Function {
        let mut b = FuncBuilder::new("chain");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let c3 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let t3 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 10i64, Cond::Eq, t1, c2);
        b.cmp_branch(c2, v, 20i64, Cond::Eq, t2, c3);
        b.cmp_branch(c3, v, 5i64, Cond::Lt, t3, td);
        for (t, val) in [(t1, 1i64), (t2, 2), (t3, 3), (td, 4)] {
            b.set_term(t, Terminator::Return(Some(Operand::Imm(val))));
        }
        b.finish()
    }

    fn reorder_with(f: &mut Function, counts: Vec<u64>) -> (DetectedSequence, u32) {
        let seqs = detect_sequences(f);
        let seq = seqs[0].clone();
        let n = plan_ranges(&seq).len();
        let counts: Vec<u64> = (0..n).map(|i| counts[i % counts.len()]).collect();
        let items = order_items(&seq, &SequenceProfile { counts });
        let eliminable = eliminable_items(&seq, &items);
        let mut candidates: Vec<BlockId> = sequence_exits(&seq).into_iter().collect();
        candidates.sort();
        let ordering = select_ordering(&items, &candidates, &eliminable, seq.default_target);
        check_ordering(&items, &ordering).unwrap();
        let replica_start = f.blocks.len() as u32;
        crate::apply::apply_reordering(f, &seq, &items, &ordering);
        (seq, replica_start)
    }

    #[test]
    fn pipeline_reordering_validates() {
        for counts in [
            vec![1, 2, 3, 4, 5],
            vec![100, 1, 1, 1, 1],
            vec![0, 0, 0, 0, 9],
        ] {
            let original = chain_function();
            let mut f = original.clone();
            let (seq, replica_start) = reorder_with(&mut f, counts.clone());
            let proof = validate_sequence(FuncId(0), &original, &f, &seq, replica_start).unwrap();
            assert!(proof.exits >= 2, "counts {counts:?}");
        }
    }

    #[test]
    fn pipeline_reordering_certifies_with_checkable_certificate() {
        let original = chain_function();
        let mut f = original.clone();
        let (seq, replica_start) = reorder_with(&mut f, vec![5, 4, 3, 2, 1]);
        let proof = certify_sequence(FuncId(0), &original, &f, &seq, replica_start).unwrap();
        assert_eq!(proof.fallbacks, 0, "subsumption only, never enumeration");
        // Double entry: the independent checker accepts the certificate.
        let checked = br_analysis::cert::check(&proof.certificate).expect("checker accepts");
        assert_eq!(checked.sig, proof.sig);
        assert_eq!(checked.classes, proof.value_classes);
    }

    #[test]
    fn corrupted_replica_yields_witness_under_certification() {
        let original = chain_function();
        let mut f = original.clone();
        let (seq, replica_start) = reorder_with(&mut f, vec![5, 4, 3, 2, 1]);
        let mut swapped = false;
        for b in replica_start..f.blocks.len() as u32 {
            if let Terminator::Branch {
                taken, not_taken, ..
            } = &mut f.block_mut(BlockId(b)).term
            {
                if taken != not_taken {
                    std::mem::swap(taken, not_taken);
                    swapped = true;
                    break;
                }
            }
        }
        assert!(swapped);
        let refuted = certify_sequence(FuncId(0), &original, &f, &seq, replica_start).unwrap_err();
        assert_eq!(refuted.failure.stage, Stage::Emit);
        let w = refuted.witness.expect("a diverging class has a witness");
        assert!(refuted
            .failure
            .details
            .iter()
            .any(|d| d.contains("counterexample witness")));
        // The witness value really belongs to a diverging class: route
        // it through both declared plans... the cheap proxy here is that
        // it is a concrete i64 the chain tests (the full divergence
        // replay lives in tests/prove.rs).
        let _ = w.value;
    }

    #[test]
    fn corrupted_replica_names_the_emit_stage() {
        let original = chain_function();
        let mut f = original.clone();
        let (seq, replica_start) = reorder_with(&mut f, vec![5, 4, 3, 2, 1]);
        // Swap two branch targets somewhere in the replica.
        let mut swapped = false;
        for b in replica_start..f.blocks.len() as u32 {
            if let Terminator::Branch {
                taken, not_taken, ..
            } = &mut f.block_mut(BlockId(b)).term
            {
                if taken != not_taken {
                    std::mem::swap(taken, not_taken);
                    swapped = true;
                    break;
                }
            }
        }
        assert!(swapped, "replica should contain a conditional branch");
        let failure = validate_sequence(FuncId(0), &original, &f, &seq, replica_start).unwrap_err();
        assert_eq!(failure.stage, Stage::Emit, "{failure}");
        assert_eq!(failure.head, Some(seq.head));
        assert!(!failure.details.is_empty());
    }

    #[test]
    fn misdeclared_plan_names_the_detect_stage() {
        let original = chain_function();
        let mut f = original.clone();
        let (mut seq, replica_start) = reorder_with(&mut f, vec![5, 4, 3, 2, 1]);
        // Lie about the detection after the fact: swap two targets in
        // the declared conditions.
        let t0 = seq.conds[0].target;
        seq.conds[0].target = seq.conds[1].target;
        seq.conds[1].target = t0;
        let failure = validate_sequence(FuncId(0), &original, &f, &seq, replica_start).unwrap_err();
        assert_eq!(failure.stage, Stage::Detect, "{failure}");
    }

    #[test]
    fn broken_ordering_is_caught_structurally() {
        let f = chain_function();
        let seqs = detect_sequences(&f);
        let seq = &seqs[0];
        let items = order_items(
            seq,
            &SequenceProfile {
                counts: vec![1; plan_ranges(seq).len()],
            },
        );
        let bad = Ordering {
            explicit: vec![0, 0],
            eliminated: vec![9],
            default_target: seq.default_target,
            cost: f64::NAN,
        };
        let problems = check_ordering(&items, &bad).unwrap_err();
        assert!(problems.len() >= 3, "{problems:?}");
    }
}
