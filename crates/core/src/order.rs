//! Selecting the sequence ordering (the paper's Section 6).
//!
//! Each range of the sequence — explicit or default — becomes an
//! [`OrderItem`] with an exit probability `p` (from profiling) and a cost
//! `c` (instructions to test it). Theorem 3: explicit conditions are
//! optimally ordered by decreasing `p/c`. The ranges of one chosen
//! *default target* need not all be tested — once only a single target
//! remains, control can fall through. The selection algorithm (Figure 8)
//! computes the all-explicit cost (Equation 1) and then incrementally
//! evaluates, for every unique target, leaving out that target's ranges
//! from lowest `p/c` up (Equation 4), in O(n) after sorting.

use br_ir::BlockId;

use crate::range::Range;

/// Where an order item came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemSource {
    /// The `i`-th original condition of the detected sequence.
    Explicit(usize),
    /// A default range (the `i`-th of the complement cover).
    Default(usize),
}

/// One range of the sequence with its profile and cost estimates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderItem {
    /// The tested range.
    pub range: Range,
    /// Block control exits to when the variable is in the range.
    pub target: BlockId,
    /// Probability this range exits the sequence (Definition 9).
    pub prob: f64,
    /// Instructions to test the range condition (Definition 10): two per
    /// branch (compare + branch), so 2 or 4 by Table 1's forms.
    pub cost: f64,
    /// Provenance (used by emission for side-effect bundles).
    pub source: ItemSource,
}

impl OrderItem {
    /// Estimated cost of a range of the given shape.
    pub fn cost_of(range: &Range) -> f64 {
        2.0 * range.branch_count() as f64
    }
}

/// A selected ordering.
#[derive(Clone, Debug, PartialEq)]
pub struct Ordering {
    /// Indices into the input items, in emission order (every item *not*
    /// left to the default).
    pub explicit: Vec<usize>,
    /// Indices left untested; all share [`Ordering::default_target`].
    pub eliminated: Vec<usize>,
    /// Where fall-through control goes after all explicit tests.
    pub default_target: BlockId,
    /// Estimated cost (Equation 2/4) of this ordering.
    pub cost: f64,
}

/// Direct cost evaluation (Equations 1–3): explicit items in the given
/// order, plus the eliminated probability mass paying for every explicit
/// test.
pub fn evaluate_cost(items: &[OrderItem], explicit: &[usize], eliminated: &[usize]) -> f64 {
    let mut prefix = 0.0;
    let mut cost = 0.0;
    for &i in explicit {
        prefix += items[i].cost;
        cost += items[i].prob * prefix;
    }
    let default_prob: f64 = eliminated.iter().map(|&i| items[i].prob).sum();
    cost + default_prob * prefix
}

/// Select the minimum-cost ordering (Figure 8).
///
/// `candidate_defaults` restricts which targets may be used as the
/// default target, and `eliminable[i]` says whether item `i` may be left
/// untested at all. Values of untested ranges reach the default target
/// through the fall-through path, which executes the sequence's *entire*
/// side-effect bundle — so with intervening side effects, only items
/// whose original exit ran every side effect (default ranges, and
/// explicit conditions at or past the last side effect) are eligible.
/// The all-explicit ordering (with `fallback_default` as the — never
/// reached — fall-through) is the baseline.
///
/// ```
/// use br_ir::BlockId;
/// use br_reorder::order::{select_ordering, ItemSource, OrderItem};
/// use br_reorder::Range;
///
/// // Two ranges: a cold one tested first in source order, a hot one
/// // second. Selection puts the hot range first.
/// let items = [
///     OrderItem { range: Range::single(1), target: BlockId(1), prob: 0.1,
///                 cost: 2.0, source: ItemSource::Explicit(0) },
///     OrderItem { range: Range::single(2), target: BlockId(2), prob: 0.9,
///                 cost: 2.0, source: ItemSource::Explicit(1) },
/// ];
/// let ordering = select_ordering(
///     &items, &[BlockId(1), BlockId(2)], &[true, true], BlockId(9));
/// assert_eq!(ordering.explicit.first(), Some(&1));
/// ```
pub fn select_ordering(
    items: &[OrderItem],
    candidate_defaults: &[BlockId],
    eliminable: &[bool],
    fallback_default: BlockId,
) -> Ordering {
    assert!(!items.is_empty(), "ordering needs at least one item");
    // Sort by decreasing p/c; stable tie-break on index for determinism.
    let mut order: Vec<usize> = (0..items.len()).collect();
    let ratio = |i: usize| items[i].prob / items[i].cost;
    order.sort_by(|&a, &b| {
        ratio(b)
            .partial_cmp(&ratio(a))
            .expect("probs and costs are finite")
            .then(a.cmp(&b))
    });
    // Equation 1 over the sorted order.
    let n = order.len();
    let mut explicit_cost = 0.0;
    let mut prefix = 0.0;
    for &i in &order {
        prefix += items[i].cost;
        explicit_cost += items[i].prob * prefix;
    }
    // tcost[k] = sum of costs after position k; tprob[k] = prob from k on.
    let mut tcost = vec![0.0; n];
    let mut tprob = vec![0.0; n];
    let mut running_cost = 0.0;
    let mut running_prob = 0.0;
    for k in (0..n).rev() {
        running_prob += items[order[k]].prob;
        tprob[k] = running_prob;
        tcost[k] = running_cost;
        running_cost += items[order[k]].cost;
    }
    let mut best = Ordering {
        explicit: order.clone(),
        eliminated: Vec::new(),
        default_target: fallback_default,
        cost: explicit_cost,
    };
    for &target in candidate_defaults {
        // Positions (in sorted order) of this target's eliminable items,
        // lowest p/c first — i.e. walking the sorted list from the back.
        let positions: Vec<usize> = (0..n)
            .rev()
            .filter(|&k| items[order[k]].target == target && eliminable[order[k]])
            .collect();
        let mut cost = explicit_cost;
        let mut elim_cost = 0.0;
        let mut eliminated = Vec::new();
        for &k in &positions {
            let i = order[k];
            cost += items[i].prob * (tcost[k] - elim_cost) - items[i].cost * tprob[k];
            elim_cost += items[i].cost;
            eliminated.push(k);
            if cost < best.cost {
                best = Ordering {
                    explicit: order
                        .iter()
                        .enumerate()
                        .filter(|(pos, _)| !eliminated.contains(pos))
                        .map(|(_, &i)| i)
                        .collect(),
                    eliminated: eliminated.iter().map(|&k| order[k]).collect(),
                    default_target: target,
                    cost,
                };
            }
        }
    }
    best
}

/// Exhaustive minimum over every per-target elimination subset, with the
/// remaining items in optimal (`p/c`-sorted) order. Used as an oracle in
/// tests and by the ablation benchmarks; exponential in the number of
/// items per target.
pub fn exhaustive_ordering(
    items: &[OrderItem],
    candidate_defaults: &[BlockId],
    eliminable: &[bool],
    fallback_default: BlockId,
) -> Ordering {
    let mut order: Vec<usize> = (0..items.len()).collect();
    let ratio = |i: usize| items[i].prob / items[i].cost;
    order.sort_by(|&a, &b| {
        ratio(b)
            .partial_cmp(&ratio(a))
            .expect("finite")
            .then(a.cmp(&b))
    });
    let mut best = Ordering {
        explicit: order.clone(),
        eliminated: Vec::new(),
        default_target: fallback_default,
        cost: evaluate_cost(items, &order, &[]),
    };
    for &target in candidate_defaults {
        let members: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].target == target && eliminable[i])
            .collect();
        for mask in 1u32..(1 << members.len()) {
            let eliminated: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|(j, _)| mask & (1 << j) != 0)
                .map(|(_, &i)| i)
                .collect();
            let explicit: Vec<usize> = order
                .iter()
                .copied()
                .filter(|i| !eliminated.contains(i))
                .collect();
            let cost = evaluate_cost(items, &explicit, &eliminated);
            if cost < best.cost {
                best = Ordering {
                    explicit,
                    eliminated,
                    default_target: target,
                    cost,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(lo: i64, hi: i64, target: u32, prob: f64, idx: usize) -> OrderItem {
        let range = Range::new(lo, hi).unwrap();
        OrderItem {
            range,
            target: BlockId(target),
            prob,
            cost: OrderItem::cost_of(&range),
            source: ItemSource::Explicit(idx),
        }
    }

    #[test]
    fn theorem_3_two_condition_exchange() {
        // p1/c1 < p2/c2 => [R2, R1] ordering is at most as costly.
        let items = [item(1, 1, 1, 0.2, 0), item(2, 2, 2, 0.8, 1)];
        let fwd = evaluate_cost(&items, &[0, 1], &[]);
        let rev = evaluate_cost(&items, &[1, 0], &[]);
        assert!(rev < fwd);
        // Equal ratios: equal cost.
        let items = [item(1, 1, 1, 0.5, 0), item(2, 2, 2, 0.5, 1)];
        let fwd = evaluate_cost(&items, &[0, 1], &[]);
        let rev = evaluate_cost(&items, &[1, 0], &[]);
        assert!((fwd - rev).abs() < 1e-12);
    }

    #[test]
    fn equation_1_matches_by_hand() {
        // Two items, costs 2 and 4, probs .6/.4:
        // p1*c1 + p2*(c1+c2) = .6*2 + .4*6 = 3.6
        let items = [item(1, 1, 1, 0.6, 0), item(2, 9, 2, 0.4, 1)];
        assert!((evaluate_cost(&items, &[0, 1], &[]) - 3.6).abs() < 1e-12);
    }

    #[test]
    fn elimination_saves_the_last_test() {
        // Both ranges share a target; eliminating the colder one means
        // its probability mass pays only for the first test.
        let items = [item(1, 1, 7, 0.9, 0), item(2, 2, 7, 0.1, 1)];
        let full = evaluate_cost(&items, &[0, 1], &[]);
        let elim = evaluate_cost(&items, &[0], &[1]);
        assert!((full - (0.9 * 2.0 + 0.1 * 4.0)).abs() < 1e-12);
        assert!((elim - (0.9 * 2.0 + 0.1 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn select_prefers_hot_cheap_first() {
        let items = [
            item(1, 1, 1, 0.1, 0),
            item(2, 2, 2, 0.7, 1),
            item(3, 3, 3, 0.2, 2),
        ];
        let o = select_ordering(
            &items,
            &[BlockId(1), BlockId(2), BlockId(3)],
            &vec![true; items.len()],
            BlockId(9),
        );
        // Hot item 1 must be tested first.
        assert_eq!(o.explicit.first(), Some(&1));
        // The coldest item's target becomes the default: its test is
        // dropped.
        assert!(o.eliminated.contains(&0) || o.eliminated.contains(&2));
    }

    #[test]
    fn bounded_ranges_cost_twice_as_much() {
        // Same probability: the single-value (cheap) item wins the front
        // spot over the bounded (expensive) one.
        let items = [item(10, 20, 1, 0.5, 0), item(1, 1, 2, 0.5, 1)];
        assert_eq!(items[0].cost, 4.0);
        assert_eq!(items[1].cost, 2.0);
        let o = select_ordering(
            &items,
            &[BlockId(1), BlockId(2)],
            &vec![true; items.len()],
            BlockId(9),
        );
        assert_eq!(o.explicit.first(), Some(&1));
    }

    #[test]
    fn incremental_matches_direct_evaluation() {
        let items = [
            item(1, 1, 1, 0.3, 0),
            item(2, 2, 1, 0.25, 1),
            item(3, 3, 2, 0.25, 2),
            item(4, 8, 2, 0.2, 3),
        ];
        let sel = select_ordering(
            &items,
            &[BlockId(1), BlockId(2)],
            &vec![true; items.len()],
            BlockId(9),
        );
        let direct = evaluate_cost(&items, &sel.explicit, &sel.eliminated);
        assert!(
            (sel.cost - direct).abs() < 1e-9,
            "incremental {} vs direct {}",
            sel.cost,
            direct
        );
    }

    #[test]
    fn greedy_matches_exhaustive_on_fixed_cases() {
        let cases: Vec<Vec<OrderItem>> = vec![
            vec![
                item(1, 1, 1, 0.5, 0),
                item(2, 2, 2, 0.3, 1),
                item(3, 3, 1, 0.2, 2),
            ],
            vec![
                item(1, 1, 1, 0.05, 0),
                item(2, 6, 2, 0.5, 1),
                item(7, 7, 2, 0.25, 2),
                item(8, 9, 3, 0.2, 3),
            ],
            vec![
                item(1, 1, 4, 0.25, 0),
                item(2, 2, 4, 0.25, 1),
                item(3, 3, 4, 0.25, 2),
                item(4, 4, 4, 0.25, 3),
            ],
        ];
        for items in cases {
            let targets: Vec<BlockId> = {
                let mut t: Vec<BlockId> = items.iter().map(|i| i.target).collect();
                t.dedup();
                t.sort();
                t.dedup();
                t
            };
            let greedy = select_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            let best = exhaustive_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            assert!(
                (greedy.cost - best.cost).abs() < 1e-9,
                "greedy {} vs exhaustive {} on {items:?}",
                greedy.cost,
                best.cost
            );
        }
    }

    #[test]
    fn restricted_candidates_respected() {
        let items = [
            item(1, 1, 1, 0.05, 0),
            item(2, 2, 2, 0.9, 1),
            item(3, 3, 1, 0.05, 2),
        ];
        // Only target 1 may be the default.
        let o = select_ordering(&items, &[BlockId(1)], &vec![true; items.len()], BlockId(1));
        assert_eq!(o.default_target, BlockId(1));
        for &e in &o.eliminated {
            assert_eq!(items[e].target, BlockId(1));
        }
    }

    #[test]
    fn zero_probability_items_get_eliminated_or_last() {
        let items = [item(1, 1, 1, 0.0, 0), item(2, 2, 2, 1.0, 1)];
        let o = select_ordering(
            &items,
            &[BlockId(1), BlockId(2)],
            &vec![true; items.len()],
            BlockId(9),
        );
        // Never-satisfied range should not be tested before the hot one.
        assert_eq!(o.explicit.first(), Some(&1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use br_workloads::rng::SmallRng;

    fn arb_items(rng: &mut SmallRng) -> Vec<OrderItem> {
        let n = rng.gen_range(1usize..7);
        let specs: Vec<(u32, u32, u32)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0u32..4),
                    rng.gen_range(1u32..100),
                    if rng.gen_bool(0.5) { 1u32 } else { 2 },
                )
            })
            .collect();
        let total: u32 = specs.iter().map(|s| s.1).sum();
        specs
            .iter()
            .enumerate()
            .map(|(i, &(target, weight, branches))| {
                let lo = (i as i64) * 10;
                let range = if branches == 1 {
                    Range::single(lo)
                } else {
                    Range::new(lo, lo + 5).unwrap()
                };
                OrderItem {
                    range,
                    target: BlockId(target),
                    prob: weight as f64 / total as f64,
                    cost: OrderItem::cost_of(&range),
                    source: ItemSource::Explicit(i),
                }
            })
            .collect()
    }

    fn targets_of(items: &[OrderItem]) -> Vec<BlockId> {
        let mut t: Vec<BlockId> = items.iter().map(|i| i.target).collect();
        t.sort();
        t.dedup();
        t
    }

    #[test]
    fn incremental_cost_equals_direct() {
        for seed in 0..256u64 {
            let items = arb_items(&mut SmallRng::seed_from_u64(seed));
            let targets = targets_of(&items);
            let sel = select_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            let direct = evaluate_cost(&items, &sel.explicit, &sel.eliminated);
            assert!((sel.cost - direct).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn greedy_is_never_worse_than_original_order() {
        for seed in 0..256u64 {
            let items = arb_items(&mut SmallRng::seed_from_u64(seed));
            let targets = targets_of(&items);
            let sel = select_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            let original: Vec<usize> = (0..items.len()).collect();
            let original_cost = evaluate_cost(&items, &original, &[]);
            assert!(sel.cost <= original_cost + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn greedy_matches_exhaustive() {
        // The paper reports its greedy selection matched an
        // exhaustive search on every sequence in every test program.
        for seed in 0..256u64 {
            let items = arb_items(&mut SmallRng::seed_from_u64(seed));
            let targets = targets_of(&items);
            let greedy = select_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            let best = exhaustive_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            assert!(
                (greedy.cost - best.cost).abs() < 1e-9,
                "seed {seed}: greedy {} vs exhaustive {}",
                greedy.cost,
                best.cost
            );
        }
    }

    #[test]
    fn explicit_plus_eliminated_partition_items() {
        for seed in 0..256u64 {
            let items = arb_items(&mut SmallRng::seed_from_u64(seed));
            let targets = targets_of(&items);
            let sel = select_ordering(&items, &targets, &vec![true; items.len()], BlockId(99));
            let mut all: Vec<usize> = sel
                .explicit
                .iter()
                .chain(&sel.eliminated)
                .copied()
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..items.len()).collect::<Vec<_>>(), "seed {seed}");
        }
    }
}
