//! Emitting the replicated, reordered sequence (the paper's Sections 7–8).
//!
//! The reordered sequence is rebuilt from ranges rather than moved
//! block-by-block:
//!
//! * every explicit range becomes one or two compare/branch blocks, in
//!   the selected order;
//! * a bounded (Form 4) range emits its two branches in the order most
//!   likely to disqualify early, using the profile of the ranges still
//!   remaining at that point (Section 7);
//! * compares redundant with the incoming condition codes are elided,
//!   choosing among equivalent encodings of each test (`v >= c+1` vs
//!   `v > c`) to maximize sharing (Figure 9);
//! * intervening side effects are duplicated onto the exit edges that
//!   need them (Theorem 2 applied en bloc);
//! * the fall-through path duplicates straight-line code from the default
//!   target so the reordered sequence adds no unconditional jump
//!   (Section 8).

use br_ir::{Block, BlockId, Cond, Function, Inst, Operand, Terminator};

use crate::detect::DetectedSequence;
use crate::order::{ItemSource, OrderItem, Ordering};
use crate::range::Range;

/// Cap on instructions duplicated from the default target's tail.
const MAX_TAIL_INSTS: usize = 24;

/// What emission produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmitResult {
    /// Entry block of the replicated sequence.
    pub entry: BlockId,
    /// Conditional branches in the replicated sequence (the paper's
    /// "reordered sequence length").
    pub branches: u32,
    /// Compares actually emitted (lower than `branches` when redundant
    /// comparisons were eliminated).
    pub compares: u32,
}

/// Destination of a branch when it is satisfied.
enum TrueDest {
    /// Exit the sequence to `target`, running `bundle` on the way.
    Exit { target: BlockId, bundle: BundleRef },
    /// Skip to the next item (a Form 4 disqualifying branch).
    NextItem,
}

/// Which cumulative side-effect bundle an exit needs.
#[derive(Clone, Copy)]
enum BundleRef {
    /// Bundle of the original condition `j` (side effects of conditions
    /// `1..=j`).
    UpTo(usize),
    /// Every side effect of the sequence.
    All,
}

/// One branch to emit: equivalent `(constant, condition)` encodings (any
/// of them tests the same predicate on the variable) plus the true-side
/// destination.
struct BranchSpec {
    options: Vec<(i64, Cond)>,
    true_dest: TrueDest,
    /// Index of the item this spec belongs to (for item boundaries).
    item_pos: usize,
}

/// Encodings of "exit when `v` is in `range`" for single-branch forms.
fn single_branch_options(range: &Range) -> Vec<(i64, Cond)> {
    if range.is_single() {
        vec![(range.lo, Cond::Eq)]
    } else if range.lo == i64::MIN {
        // [.., h]: v <= h, or v < h+1.
        let mut o = vec![(range.hi, Cond::Le)];
        if let Some(h1) = range.hi.checked_add(1) {
            o.push((h1, Cond::Lt));
        }
        o
    } else {
        // [l, ..]: v >= l, or v > l-1.
        debug_assert_eq!(range.hi, i64::MAX);
        let mut o = vec![(range.lo, Cond::Ge)];
        if let Some(l1) = range.lo.checked_sub(1) {
            o.push((l1, Cond::Gt));
        }
        o
    }
}

/// Encodings of the Form 4 branches for `[l..h]`.
fn below_disqualify(l: i64) -> Vec<(i64, Cond)> {
    let mut o = vec![(l, Cond::Lt)];
    if let Some(l1) = l.checked_sub(1) {
        o.push((l1, Cond::Le));
    }
    o
}

fn above_disqualify(h: i64) -> Vec<(i64, Cond)> {
    let mut o = vec![(h, Cond::Gt)];
    if let Some(h1) = h.checked_add(1) {
        o.push((h1, Cond::Ge));
    }
    o
}

fn upper_qualify(h: i64) -> Vec<(i64, Cond)> {
    let mut o = vec![(h, Cond::Le)];
    if let Some(h1) = h.checked_add(1) {
        o.push((h1, Cond::Lt));
    }
    o
}

fn lower_qualify(l: i64) -> Vec<(i64, Cond)> {
    let mut o = vec![(l, Cond::Ge)];
    if let Some(l1) = l.checked_sub(1) {
        o.push((l1, Cond::Gt));
    }
    o
}

/// Emit the replicated, reordered sequence into `f`, returning its entry
/// block. The original blocks are left untouched (the caller rewires the
/// head; dead-code elimination reclaims the rest).
pub fn emit_reordered(
    f: &mut Function,
    seq: &DetectedSequence,
    items: &[OrderItem],
    ordering: &Ordering,
) -> EmitResult {
    let var = seq.var;
    // Cumulative side-effect bundles: bundle(j) = side effects of
    // conditions 1..=j (the head's prefix stays at the sequence entry).
    let mut cumulative: Vec<usize> = Vec::with_capacity(seq.conds.len());
    let mut flat_bundle: Vec<Inst> = Vec::new();
    for (j, c) in seq.conds.iter().enumerate() {
        if j > 0 {
            flat_bundle.extend(c.side_effects.iter().cloned());
        }
        cumulative.push(flat_bundle.len());
    }
    let bundle_insts = |r: BundleRef| -> &[Inst] {
        match r {
            BundleRef::UpTo(j) => &flat_bundle[..cumulative[j]],
            BundleRef::All => &flat_bundle,
        }
    };

    // Build the branch specs in emission order.
    let mut specs: Vec<BranchSpec> = Vec::new();
    let mut item_first_spec: Vec<usize> = Vec::new();
    for (pos, &idx) in ordering.explicit.iter().enumerate() {
        let item = &items[idx];
        let bundle = match item.source {
            ItemSource::Explicit(j) => BundleRef::UpTo(j),
            ItemSource::Default(_) => BundleRef::All,
        };
        item_first_spec.push(specs.len());
        let exit = TrueDest::Exit {
            target: item.target,
            bundle,
        };
        if item.range.is_bounded_multi() {
            // Form 4: order the two branches by which side is more
            // likely to disqualify, judged from the ranges that can
            // still be live at this point (later explicit + eliminated).
            let remaining = ordering.explicit[pos + 1..]
                .iter()
                .chain(&ordering.eliminated);
            let (mut below, mut above) = (0.0f64, 0.0f64);
            for &r in remaining {
                if items[r].range.hi < item.range.lo {
                    below += items[r].prob;
                } else if items[r].range.lo > item.range.hi {
                    above += items[r].prob;
                }
            }
            if below >= above {
                specs.push(BranchSpec {
                    options: below_disqualify(item.range.lo),
                    true_dest: TrueDest::NextItem,
                    item_pos: pos,
                });
                specs.push(BranchSpec {
                    options: upper_qualify(item.range.hi),
                    true_dest: exit,
                    item_pos: pos,
                });
            } else {
                specs.push(BranchSpec {
                    options: above_disqualify(item.range.hi),
                    true_dest: TrueDest::NextItem,
                    item_pos: pos,
                });
                specs.push(BranchSpec {
                    options: lower_qualify(item.range.lo),
                    true_dest: exit,
                    item_pos: pos,
                });
            }
        } else if item.range == Range::full() {
            // Degenerate: an unconditional exit. Represented as a spec
            // with an always-true compare (v == v is not expressible, so
            // use the fall-through machinery instead: empty options).
            specs.push(BranchSpec {
                options: Vec::new(),
                true_dest: exit,
                item_pos: pos,
            });
        } else {
            specs.push(BranchSpec {
                options: single_branch_options(&item.range),
                true_dest: exit,
                item_pos: pos,
            });
        }
    }
    item_first_spec.push(specs.len()); // sentinel

    // Allocate the chain blocks up front so fall-through edges are known.
    let spec_blocks: Vec<BlockId> = specs
        .iter()
        .map(|_| f.add_block(Block::new(Terminator::Return(None))))
        .collect();
    let fall_block = f.add_block(Block::new(Terminator::Return(None)));

    // An exit edge: direct when its bundle is empty, else through a pad.
    let make_exit = |f: &mut Function, target: BlockId, bundle: BundleRef| -> BlockId {
        let insts = bundle_insts(bundle);
        if insts.is_empty() {
            target
        } else {
            let pad = f.add_block(Block::new(Terminator::Jump(target)));
            f.block_mut(pad).insts = insts.to_vec();
            pad
        }
    };

    let mut branches = 0u32;
    let mut compares = 0u32;
    // Constant of the compare governing the condition codes on the
    // linear fall-through path into the current spec; None when unknown
    // or when merge paths disagree.
    let mut last_cmp: Option<i64> = None;
    // Pending Form 4 merge: constant on the disqualifying branch's path
    // to the next item, to reconcile with the qualifying branch's
    // fall-through constant.
    let mut merge_pending: Option<Option<i64>> = None;
    let mut i = 0usize;
    while i < specs.len() {
        let spec = &specs[i];
        let this_block = spec_blocks[i];
        let next_spec_block = spec_blocks.get(i + 1).copied().unwrap_or(fall_block);
        let next_item_block = {
            let next_item = spec.item_pos + 1;
            let first = item_first_spec[next_item.min(item_first_spec.len() - 1)];
            spec_blocks.get(first).copied().unwrap_or(fall_block)
        };
        if spec.options.is_empty() {
            // Unconditional exit (full-range item).
            let TrueDest::Exit { target, bundle } = spec.true_dest else {
                unreachable!("only exits can be unconditional");
            };
            let pad = make_exit(f, target, bundle);
            f.block_mut(this_block).term = Terminator::Jump(pad);
            i += 1;
            continue;
        }
        // Pick an encoding: reuse the incoming compare when possible,
        // otherwise prefer a constant the *next* spec could reuse.
        let chosen = spec
            .options
            .iter()
            .find(|(c, _)| Some(*c) == last_cmp)
            .or_else(|| {
                let next_opts: &[(i64, Cond)] = specs
                    .get(i + 1)
                    .map(|s| s.options.as_slice())
                    .unwrap_or(&[]);
                spec.options
                    .iter()
                    .find(|(c, _)| next_opts.iter().any(|(nc, _)| nc == c))
            })
            .unwrap_or(&spec.options[0]);
        let (konst, cond) = *chosen;
        let elided = Some(konst) == last_cmp;
        if !elided {
            f.block_mut(this_block).insts.push(Inst::Cmp {
                lhs: Operand::Reg(var),
                rhs: Operand::Imm(konst),
            });
            compares += 1;
        }
        branches += 1;
        let taken = match spec.true_dest {
            TrueDest::Exit { target, bundle } => make_exit(f, target, bundle),
            TrueDest::NextItem => next_item_block,
        };
        f.block_mut(this_block).term = Terminator::Branch {
            cond,
            taken,
            not_taken: next_spec_block,
        };
        // Track condition codes along the fall-through path, accounting
        // for the NextItem merge of Form 4 pairs: the disqualifying
        // branch joins the fall-through of the qualifying branch at the
        // next item, so the merged state is only known when both paths
        // carry the same compare constant.
        let after = Some(konst);
        if matches!(spec.true_dest, TrueDest::NextItem) {
            // Emit the partner spec now with `after` as its input; the
            // merge at the next item is resolved below.
            last_cmp = after;
            let partner = i + 1;
            debug_assert_eq!(specs[partner].item_pos, spec.item_pos);
            // Process partner in the next loop iteration; remember the
            // disqualify-path constant to merge afterwards.
            merge_pending = Some(after);
            i += 1;
            continue;
        }
        // Resolve a pending Form 4 merge: the next block is reached both
        // from the disqualifying branch and from this fall-through.
        if let Some(disq) = merge_pending.take() {
            last_cmp = if disq == after { after } else { None };
        } else {
            last_cmp = after;
        }
        i += 1;
    }

    // Fall-through: all side effects, then duplicated straight-line code
    // from the default target.
    f.block_mut(fall_block).insts = flat_bundle.clone();
    duplicate_tail(f, fall_block, ordering.default_target);

    let entry = spec_blocks.first().copied().unwrap_or(fall_block);
    EmitResult {
        entry,
        branches,
        compares,
    }
}

/// Duplicate straight-line code from `target` into `pad` until an
/// unconditional jump, return, or indirect jump (the paper's Section 8),
/// bounded by [`MAX_TAIL_INSTS`].
fn duplicate_tail(f: &mut Function, pad: BlockId, target: BlockId) {
    let mut budget = MAX_TAIL_INSTS;
    let mut visited = vec![target];
    let mut cur = target;
    let mut host = pad;
    loop {
        let block = f.block(cur).clone();
        if block.insts.len() > budget {
            f.block_mut(host).term = Terminator::Jump(cur);
            return;
        }
        budget -= block.insts.len();
        f.block_mut(host).insts.extend(block.insts);
        match block.term {
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                if visited.contains(&not_taken) {
                    // A cycle along the fall-through path; stop cleanly.
                    f.block_mut(host).term = Terminator::Jump(cur);
                    return;
                }
                let next_host = f.add_block(Block::new(Terminator::Return(None)));
                f.block_mut(host).term = Terminator::Branch {
                    cond,
                    taken,
                    not_taken: next_host,
                };
                visited.push(not_taken);
                cur = not_taken;
                host = next_host;
            }
            term @ (Terminator::Jump(_)
            | Terminator::Return(_)
            | Terminator::IndirectJump { .. }) => {
                f.block_mut(host).term = term;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_sequences;
    use crate::order::select_ordering;
    use crate::profile::{order_items, plan_ranges, SequenceProfile};
    use br_ir::FuncBuilder;

    /// v == 5 -> T1; v >= 100 -> T2; default TD. No side effects.
    fn two_cond_function() -> Function {
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 5i64, br_ir::Cond::Eq, t1, c2);
        b.cmp_branch(c2, v, 100i64, br_ir::Cond::Ge, t2, td);
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(Some(Operand::Imm(t.0 as i64))));
        }
        b.finish()
    }

    fn emit_with_counts(f: &mut Function, counts: Vec<u64>) -> EmitResult {
        let seq = detect_sequences(f).remove(0);
        let items = order_items(&seq, &SequenceProfile { counts });
        let targets: Vec<BlockId> = {
            let mut t: Vec<BlockId> = seq.conds.iter().map(|c| c.target).collect();
            t.push(seq.default_target);
            t.sort();
            t.dedup();
            t
        };
        let elim = vec![true; items.len()];
        let ordering = select_ordering(&items, &targets, &elim, seq.default_target);
        emit_reordered(f, &seq, &items, &ordering)
    }

    #[test]
    fn emits_verifiable_chain() {
        let mut f = two_cond_function();
        // ranges: [5], [100..], defaults [..4], [6..99].
        let r = emit_with_counts(&mut f, vec![10, 5, 1, 1]);
        assert!(r.branches >= 1);
        assert!(r.compares <= r.branches);
        br_ir::verify_function(&f, None).expect("chain verifies");
        // Entry must be one of the freshly appended blocks.
        assert!(r.entry.index() >= 5);
    }

    #[test]
    fn redundant_comparisons_are_elided_figure_9() {
        // Adjacent ranges [6..] (as v > 5) and [5] (v == 5) share the
        // constant 5: the second compare must be elided.
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 6i64, br_ir::Cond::Ge, t1, c2); // [6..]
        b.cmp_branch(c2, v, 5i64, br_ir::Cond::Eq, t2, td); // [5]
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(Some(Operand::Imm(1))));
        }
        let mut f = b.finish();
        // Profile keeps the original order optimal: [6..] hottest.
        // ranges: [6..], [5], defaults [..4]. Eliminating nothing forces
        // both explicit; check compare sharing kicks in.
        let r = emit_with_counts(&mut f, vec![100, 50, 10]);
        assert!(
            r.compares < r.branches,
            "expected at least one elided compare: {} vs {}",
            r.compares,
            r.branches
        );
        br_ir::verify_function(&f, None).expect("verifies with shared cc");
    }

    #[test]
    fn bounded_item_emits_two_branches() {
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let hi = b.new_block();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 10i64, br_ir::Cond::Lt, c2, hi);
        b.cmp_branch(hi, v, 20i64, br_ir::Cond::Gt, c2, t1); // [10..20]
        b.cmp_branch(c2, v, 0i64, br_ir::Cond::Eq, t2, td);
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(None));
        }
        let mut f = b.finish();
        // [10..20] hot, [0] cold, defaults colder.
        let r = emit_with_counts(&mut f, vec![100, 5, 1, 1, 1]);
        // Bounded range needs 2 branches; chain emits it first.
        assert!(r.branches >= 3);
        br_ir::verify_function(&f, None).unwrap();
    }

    #[test]
    fn side_effect_bundles_appear_on_exit_pads() {
        // Sequence with one intervening side effect (a store): the
        // second condition's exits must run it, the first's must not.
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        let x = b.new_reg();
        b.set_param_regs(vec![v, x]);
        let e = b.entry();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 1i64, br_ir::Cond::Eq, t1, c2);
        b.store(c2, 500i64, 0i64, x); // movable side effect
        b.cmp_branch(c2, v, 2i64, br_ir::Cond::Eq, t2, td);
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(None));
        }
        let mut f = b.finish();
        let before_blocks = f.blocks.len();
        let seq = detect_sequences(&f).remove(0);
        let items = order_items(
            &seq,
            &SequenceProfile {
                counts: vec![1, 5, 1, 1],
            },
        );
        let elim = crate::pipeline::eliminable_items(&seq, &items);
        let ordering = select_ordering(&items, &[seq.default_target], &elim, seq.default_target);
        emit_reordered(&mut f, &seq, &items, &ordering);
        // Some pad block must carry the duplicated store.
        let stores_in_new_blocks = f.blocks[before_blocks..]
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert!(
            stores_in_new_blocks >= 1,
            "side effect must be duplicated into the replica"
        );
        br_ir::verify_function(&f, None).unwrap();
    }

    #[test]
    fn tail_duplication_absorbs_straight_line_code() {
        // Default target has a small body ending in a return: the
        // fall-through block should absorb it rather than jump to it.
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 1i64, br_ir::Cond::Eq, t1, c2);
        b.cmp_branch(c2, v, 2i64, br_ir::Cond::Eq, t2, td);
        b.set_term(t1, Terminator::Return(None));
        b.set_term(t2, Terminator::Return(None));
        let tmp = b.new_reg();
        b.copy(td, tmp, 77i64);
        b.set_term(td, Terminator::Return(Some(Operand::Reg(tmp))));
        let mut f = b.finish();
        let r = emit_with_counts(&mut f, vec![1, 1, 0, 10]);
        // Find the fall-through block (ends in Return(tmp)) among the
        // replica blocks; it must contain the duplicated copy.
        let absorbed = f.blocks[r.entry.index()..].iter().any(|blk| {
            blk.insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Copy {
                        src: Operand::Imm(77),
                        ..
                    }
                )
            }) && matches!(blk.term, Terminator::Return(_))
        });
        assert!(absorbed, "tail of TD must be duplicated into the replica");
    }

    #[test]
    fn full_range_item_jumps_unconditionally() {
        // A synthetic ordering where one item covers everything.
        let mut f = two_cond_function();
        let seq = detect_sequences(&f).remove(0);
        let items = vec![crate::order::OrderItem {
            range: Range::full(),
            target: seq.conds[0].target,
            prob: 1.0,
            cost: 2.0,
            source: crate::order::ItemSource::Explicit(0),
        }];
        let ordering = crate::order::Ordering {
            explicit: vec![0],
            eliminated: vec![],
            default_target: seq.default_target,
            cost: 0.0,
        };
        let r = emit_reordered(&mut f, &seq, &items, &ordering);
        assert_eq!(r.branches, 0);
        assert!(matches!(f.block(r.entry).term, Terminator::Jump(_)));
    }

    #[test]
    fn empty_explicit_ordering_is_all_fallthrough() {
        let mut f = two_cond_function();
        let seq = detect_sequences(&f).remove(0);
        let items = order_items(
            &seq,
            &SequenceProfile {
                counts: vec![1, 1, 1, 1],
            },
        );
        let ordering = crate::order::Ordering {
            explicit: vec![],
            eliminated: (0..items.len()).collect(),
            default_target: seq.default_target,
            cost: 0.0,
        };
        let r = emit_reordered(&mut f, &seq, &items, &ordering);
        assert_eq!(r.branches, 0);
        assert_eq!(r.compares, 0);
    }

    #[test]
    fn form4_orders_disqualifying_branch_by_profile() {
        // Bounded [50..60] with everything hot ABOVE: the first emitted
        // branch should disqualify upward (cmp 60 / bgt or cmp 61 / bge).
        let mut b = FuncBuilder::new("f");
        let v = b.new_reg();
        b.set_param_regs(vec![v]);
        let e = b.entry();
        let hi = b.new_block();
        let c2 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let td = b.new_block();
        b.cmp_branch(e, v, 50i64, br_ir::Cond::Lt, c2, hi);
        b.cmp_branch(hi, v, 60i64, br_ir::Cond::Gt, c2, t1); // [50..60]
        b.cmp_branch(c2, v, 1000i64, br_ir::Cond::Ge, t2, td); // [1000..]
        for t in [t1, t2, td] {
            b.set_term(t, Terminator::Return(None));
        }
        let mut f = b.finish();
        let seq = detect_sequences(&f).remove(0);
        // plan: [50..60], [1000..], defaults [..49], [61..999].
        assert_eq!(plan_ranges(&seq).len(), 4);
        let items = order_items(
            &seq,
            &SequenceProfile {
                counts: vec![60, 30, 0, 9],
            },
        );
        // Force [50..60] first, keep [1000..] and [61..999] later: the
        // mass above 60 (30 + 9) far outweighs the mass below 50 (0).
        let ordering = crate::order::Ordering {
            explicit: vec![0, 1, 3],
            eliminated: vec![2],
            default_target: seq.default_target,
            cost: 0.0,
        };
        let r = emit_reordered(&mut f, &seq, &items, &ordering);
        let first = f.block(r.entry);
        let Some(Inst::Cmp {
            rhs: Operand::Imm(konst),
            ..
        }) = first.insts.last()
        else {
            panic!("first chain block must start with a compare");
        };
        assert!(
            *konst == 60 || *konst == 61,
            "upper disqualifier expected first, got cmp against {konst}"
        );
    }
}
