//! # br-reorder
//!
//! The paper's contribution: profile-guided reordering of sequences of
//! conditional branches that compare a common variable against constants
//! (*"Improving Performance by Branch Reordering"*, Yang, Uh & Whalley,
//! PLDI 1998).
//!
//! The pieces, mapped to the paper:
//!
//! * [`range`] — ranges, default ranges (Definitions 1, 7, 8; Section 5).
//! * [`detect`] — finding reorderable sequences (Section 3, Figure 4),
//!   including Form 4 bounded pairs and the movability condition on
//!   intervening side effects (Section 4, Theorem 2).
//! * [`profile`] — profiling instrumentation at the sequence head
//!   (Section 5) and the per-range exit probabilities.
//! * [`order`] — cost model and ordering selection (Section 6,
//!   Theorem 3, Equations 1–4, Figure 8) plus an exhaustive oracle.
//! * [`dispatch`] — heuristic Set IV: DP-optimal comparison trees and
//!   bounds-checked jump tables as alternative dispatch structures,
//!   selected per sequence by min-of-three against the chain.
//! * [`emit`] — rebuilding the reordered sequence: Form 4 intra-condition
//!   branch ordering and redundant-comparison elimination (Section 7,
//!   Figure 9), side-effect duplication, default-target tail duplication.
//! * [`apply`] — splicing the replicated sequence into the CFG
//!   (Section 8, Figure 10).
//! * [`pipeline`] — the two-pass compile–profile–reorder driver
//!   (Figure 2) and the static statistics the evaluation reports.
//! * [`validate`] — stage-attributing translation validation: every
//!   applied sequence is proven equivalent to its original chain (via
//!   `br-analysis`), and a failure names the pipeline stage at fault.
//!
//! The whole two-pass pipeline in one call — train on one input, get a
//! restructured module plus a record per detected sequence:
//!
//! ```
//! use br_minic::{compile, HeuristicSet, Options};
//! use br_reorder::{reorder_module, ReorderOptions, SequenceOutcome};
//!
//! // Most characters are ordinary, yet ' ' and '\n' are tested first.
//! let src = "int main() { int c; int n; n = 0; c = getchar();
//!     while (c != -1) {
//!         if (c == 32) { n = n + 1; }
//!         else if (c == 10) { n = n + 2; }
//!         else { n = n + 3; }
//!         c = getchar();
//!     }
//!     return n; }";
//! let mut module = compile(src, &Options::with_heuristics(HeuristicSet::SET_I))
//!     .expect("compiles");
//! br_opt::optimize(&mut module);
//!
//! let training = b"mostly ordinary letters, few separators";
//! let report = reorder_module(&module, training, &ReorderOptions::default())
//!     .expect("training run succeeds");
//! // The else-if chain was found and restructured for the skew.
//! assert!(report
//!     .sequences
//!     .iter()
//!     .any(|s| matches!(s.outcome, SequenceOutcome::Reordered { .. })));
//! ```

pub mod apply;
pub mod common;
pub mod detect;
pub mod dispatch;
pub mod emit;
pub mod order;
pub mod pipeline;
pub mod profile;
pub mod range;
pub mod validate;

pub use br_layout::LayoutMode;
pub use detect::{detect_sequences, DetectedCondition, DetectedSequence};
pub use dispatch::{plan_dispatch, DispatchPlan, DispatchStructure};
pub use order::{select_ordering, OrderItem, Ordering};
pub use pipeline::{
    plan_for_profile, reorder_module, reorder_module_with_inputs, ReorderOptions, ReorderReport,
    SequenceOutcome, SequencePlan,
};
pub use profile::{detect_all, instrument_module, profiles_from_run, SequenceProfile};
pub use range::{Form, Range};
pub use validate::{
    certify_sequence, validate_sequence, CertifyFailure, SequenceCertificate, Stage, StageFailure,
    ValidationSummary,
};
