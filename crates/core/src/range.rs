//! Range algebra (the paper's Definitions 1 and 5–8).
//!
//! A *range* is a set of contiguous integer values; range conditions test
//! whether the branch variable lies in a range. *Explicit* ranges are
//! checked by conditions; *default* ranges are the minimal set of ranges
//! covering every value no explicit range covers.

use std::fmt;

/// The paper's Table 1 range forms: which branch pattern tests a range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Form {
    /// Form 1: `v == c` — a single value, one `beq`.
    Single,
    /// Form 2: `v <= c` — unbounded below, one branch.
    UnboundedBelow,
    /// Form 3: `v >= c` — unbounded above, one branch.
    UnboundedAbove,
    /// Form 4: `c1 <= v <= c2` — bounded both ends, two branches.
    Bounded,
    /// Degenerate: the whole value space (no test needed).
    Full,
}

/// An inclusive range of `i64` values (never empty).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Range {
    /// Lowest contained value.
    pub lo: i64,
    /// Highest contained value (`>= lo`).
    pub hi: i64,
}

impl fmt::Debug for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo, self.hi) {
            (i64::MIN, i64::MAX) => write!(f, "[..]"),
            (i64::MIN, hi) => write!(f, "[..{hi}]"),
            (lo, i64::MAX) => write!(f, "[{lo}..]"),
            (lo, hi) if lo == hi => write!(f, "[{lo}]"),
            (lo, hi) => write!(f, "[{lo}..{hi}]"),
        }
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Range {
    /// `[lo, hi]`; returns `None` when that would be empty (`lo > hi`).
    pub fn new(lo: i64, hi: i64) -> Option<Range> {
        (lo <= hi).then_some(Range { lo, hi })
    }

    /// The single-value range `[c, c]`.
    pub fn single(c: i64) -> Range {
        Range { lo: c, hi: c }
    }

    /// `[.., hi]` — unbounded below.
    pub fn up_to(hi: i64) -> Range {
        Range { lo: i64::MIN, hi }
    }

    /// `[lo, ..]` — unbounded above.
    pub fn from(lo: i64) -> Range {
        Range { lo, hi: i64::MAX }
    }

    /// The full value space.
    pub fn full() -> Range {
        Range {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// Whether `v` lies in the range.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the ranges share any value (Definition 5's negation).
    pub fn overlaps(&self, other: &Range) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Whether the range is a single value (Table 1, Form 1).
    pub fn is_single(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether the range is bounded on both ends and spans more than one
    /// value (Table 1, Form 4 — needs two conditional branches).
    pub fn is_bounded_multi(&self) -> bool {
        self.lo != i64::MIN && self.hi != i64::MAX && self.lo != self.hi
    }

    /// Number of conditional branches needed to test the range
    /// (Table 1: one, except for bounded multi-value ranges).
    pub fn branch_count(&self) -> u32 {
        if self.is_bounded_multi() {
            2
        } else {
            1
        }
    }

    /// Which of the paper's Table 1 forms this range takes.
    pub fn form(&self) -> Form {
        match (self.lo, self.hi) {
            (i64::MIN, i64::MAX) => Form::Full,
            (lo, hi) if lo == hi => Form::Single,
            (i64::MIN, _) => Form::UnboundedBelow,
            (_, i64::MAX) => Form::UnboundedAbove,
            _ => Form::Bounded,
        }
    }

    /// Number of values, saturating at `u128::MAX` (never needed above
    /// the full span).
    pub fn width(&self) -> u128 {
        (self.hi as i128 - self.lo as i128 + 1) as u128
    }
}

/// Whether `r` overlaps none of `ranges` (the paper's `Nonoverlapping`).
pub fn nonoverlapping(r: &Range, ranges: &[Range]) -> bool {
    ranges.iter().all(|other| !r.overlaps(other))
}

/// The minimal set of ranges covering every value not covered by
/// `ranges` (the paper's default ranges, Section 5). Input ranges must be
/// pairwise disjoint; output is sorted ascending.
pub fn complement_cover(ranges: &[Range]) -> Vec<Range> {
    let mut sorted: Vec<Range> = ranges.to_vec();
    sorted.sort_unstable();
    debug_assert!(
        sorted.windows(2).all(|w| w[0].hi < w[1].lo),
        "explicit ranges must be disjoint: {sorted:?}"
    );
    let mut out = Vec::new();
    let mut next_free = i64::MIN;
    for r in &sorted {
        if r.lo > next_free {
            out.push(Range {
                lo: next_free,
                hi: r.lo - 1,
            });
        }
        if r.hi == i64::MAX {
            return out;
        }
        next_free = r.hi + 1;
    }
    out.push(Range {
        lo: next_free,
        hi: i64::MAX,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_empty() {
        assert_eq!(Range::new(3, 2), None);
        assert_eq!(Range::new(2, 2), Some(Range::single(2)));
    }

    #[test]
    fn overlap_is_symmetric_and_tight() {
        let a = Range::new(0, 10).unwrap();
        let b = Range::new(10, 20).unwrap();
        let c = Range::new(11, 20).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn forms_follow_table_1() {
        assert_eq!(Range::single(5).form(), Form::Single);
        assert_eq!(Range::up_to(5).form(), Form::UnboundedBelow);
        assert_eq!(Range::from(5).form(), Form::UnboundedAbove);
        assert_eq!(Range::new(3, 9).unwrap().form(), Form::Bounded);
        assert_eq!(Range::full().form(), Form::Full);
    }

    #[test]
    fn branch_counts_follow_table_1() {
        assert_eq!(Range::single(5).branch_count(), 1); // Form 1
        assert_eq!(Range::up_to(5).branch_count(), 1); // Form 2
        assert_eq!(Range::from(5).branch_count(), 1); // Form 3
        assert_eq!(Range::new(3, 9).unwrap().branch_count(), 2); // Form 4
        assert_eq!(Range::full().branch_count(), 1);
    }

    #[test]
    fn nonoverlapping_checks_all() {
        let existing = [Range::single(5), Range::new(10, 20).unwrap()];
        assert!(nonoverlapping(&Range::new(6, 9).unwrap(), &existing));
        assert!(!nonoverlapping(&Range::new(4, 5).unwrap(), &existing));
        assert!(nonoverlapping(&Range::full(), &[]));
    }

    #[test]
    fn complement_cover_fills_gaps() {
        // The paper's Figure 7 shape: [c1], [c2..c3], [c4] leaves three
        // default ranges (below, between, above).
        let explicit = [
            Range::single(10),
            Range::new(20, 30).unwrap(),
            Range::single(40),
        ];
        let cover = complement_cover(&explicit);
        assert_eq!(
            cover,
            vec![
                Range::up_to(9),
                Range::new(11, 19).unwrap(),
                Range::new(31, 39).unwrap(),
                Range::from(41),
            ]
        );
    }

    #[test]
    fn complement_cover_handles_extremes() {
        assert_eq!(complement_cover(&[Range::full()]), vec![]);
        assert_eq!(complement_cover(&[]), vec![Range::full()]);
        assert_eq!(complement_cover(&[Range::up_to(0)]), vec![Range::from(1)]);
        assert_eq!(complement_cover(&[Range::from(0)]), vec![Range::up_to(-1)]);
        assert_eq!(
            complement_cover(&[Range::single(i64::MIN), Range::single(i64::MAX)]),
            vec![Range::new(i64::MIN + 1, i64::MAX - 1).unwrap()]
        );
    }

    #[test]
    fn adjacent_ranges_leave_no_gap() {
        let cover = complement_cover(&[Range::new(0, 4).unwrap(), Range::new(5, 9).unwrap()]);
        assert_eq!(cover, vec![Range::up_to(-1), Range::from(10)]);
    }

    #[test]
    fn debug_formats_compactly() {
        assert_eq!(format!("{:?}", Range::single(7)), "[7]");
        assert_eq!(format!("{:?}", Range::up_to(7)), "[..7]");
        assert_eq!(format!("{:?}", Range::from(7)), "[7..]");
        assert_eq!(format!("{:?}", Range::new(1, 2).unwrap()), "[1..2]");
        assert_eq!(format!("{:?}", Range::full()), "[..]");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use br_workloads::rng::SmallRng;

    /// Random disjoint range sets.
    fn disjoint_ranges(rng: &mut SmallRng) -> Vec<Range> {
        let n = rng.gen_range(0usize..8);
        let mut out: Vec<Range> = Vec::new();
        for _ in 0..n {
            let lo = rng.gen_range(-500i64..500);
            let w = rng.gen_range(0i64..20);
            let r = Range::new(lo, lo + w).unwrap();
            if nonoverlapping(&r, &out) {
                out.push(r);
            }
        }
        out
    }

    #[test]
    fn complement_partitions_value_space() {
        for seed in 0..256u64 {
            let ranges = disjoint_ranges(&mut SmallRng::seed_from_u64(seed));
            let cover = complement_cover(&ranges);
            let mut all: Vec<Range> = ranges.clone();
            all.extend(cover.iter().copied());
            all.sort_unstable();
            // Starts at MIN, ends at MAX, contiguous without overlap.
            assert_eq!(all[0].lo, i64::MIN, "seed {seed}");
            assert_eq!(all.last().unwrap().hi, i64::MAX, "seed {seed}");
            for w in all.windows(2) {
                assert_eq!(w[0].hi.wrapping_add(1), w[1].lo, "seed {seed}");
            }
        }
    }

    #[test]
    fn complement_is_minimal() {
        // No two cover ranges are adjacent (else they could merge).
        for seed in 0..256u64 {
            let ranges = disjoint_ranges(&mut SmallRng::seed_from_u64(seed));
            let cover = complement_cover(&ranges);
            let mut sorted = cover.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[0].hi.wrapping_add(1) < w[1].lo, "seed {seed}");
            }
        }
    }

    #[test]
    fn sample_points_agree() {
        for seed in 0..256u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ranges = disjoint_ranges(&mut rng);
            let cover = complement_cover(&ranges);
            for _ in 0..32 {
                let v = rng.gen_range(-600i64..600);
                let in_explicit = ranges.iter().any(|r| r.contains(v));
                let in_cover = cover.iter().any(|r| r.contains(v));
                assert_ne!(in_explicit, in_cover, "seed {seed} value {v}");
            }
        }
    }
}
