// ctags: generates a tag file for vi.
// Scans for identifiers at line starts followed by '(' — a crude
// function-definition detector — with a switch-based token scanner.
int main() {
    int c; int state; int tags; int tokens; int lines;
    // state: 0 = line start, 1 = in leading identifier, 2 = after
    // identifier, 3 = rest of line.
    state = 0; tags = 0; tokens = 0; lines = 0;
    c = getchar();
    while (c != -1) {
        switch (c) {
            case '\n':
                lines += 1;
                state = 0;
                break;
            case ' ':
            case '\t':
                if (state == 1) state = 2;
                break;
            case '(':
                if (state == 1 || state == 2) tags += 1;
                state = 3;
                break;
            case '{':
            case '}':
            case ';':
                tokens += 1;
                state = 3;
                break;
            default:
                if (c >= 'a' && c <= 'z') {
                    if (state == 0) { state = 1; tokens += 1; }
                } else if (c >= 'A' && c <= 'Z') {
                    if (state == 0) { state = 1; tokens += 1; }
                } else {
                    if (state != 1) state = 3;
                }
        }
        c = getchar();
    }
    putint(tags);
    putint(tokens);
    putint(lines);
    return 0;
}
