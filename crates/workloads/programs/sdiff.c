// sdiff: displays files side by side.
// The input interleaves two files line by line; the kernel compares
// each pair character-wise and tallies identical, differing, and
// one-sided lines.
int left[2048];

int main() {
    int c; int side; int llen; int i; int same; int diff; int gutters;
    int pairs; int mismatch;
    side = 0; llen = 0; i = 0; same = 0; diff = 0; gutters = 0;
    pairs = 0; mismatch = 0;
    c = getchar();
    while (c != -1) {
        if (c == '\n') {
            if (side == 0) {
                llen = i;
                side = 1;
            } else {
                pairs += 1;
                if (mismatch == 0 && i == llen) { same += 1; gutters += 1; }
                else { diff += 1; }
                mismatch = 0;
                side = 0;
            }
            i = 0;
        } else if (c == '\t') {
            // tabs compare as blanks
            if (side == 0) {
                if (i < 2048) left[i] = ' ';
            } else {
                if (i < 2048 && (i >= llen || left[i] != ' ')) mismatch = 1;
            }
            i += 1;
        } else {
            if (side == 0) {
                if (i < 2048) left[i] = c;
            } else {
                if (i < 2048 && (i >= llen || left[i] != c)) mismatch = 1;
            }
            i += 1;
        }
        c = getchar();
    }
    putint(pairs);
    putint(same);
    putint(diff);
    putint(gutters);
    return 0;
}
