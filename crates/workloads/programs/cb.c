// cb: a simple C program beautifier.
// Tracks brace depth, strings, and comments; re-emits the input with
// indentation counts. The dispatch over '{', '}', '(', ')', quotes,
// semicolons and newlines is a long reorderable sequence.
// Escape-sequence beautification (cold on brace-only inputs).
int escape(int c) {
    if (c == 'n') return 10;
    else if (c == 't') return 9;
    else if (c == 'r') return 13;
    else if (c == '0') return 0;
    return c;
}

int main() {
    int c; int depth; int instr; int semis; int parens; int out;
    depth = 0; instr = 0; semis = 0; parens = 0; out = 0;
    c = getchar();
    while (c != -1) {
        if (instr) {
            if (c == '"') instr = 0;
            out += 1;
        } else if (c == '{') {
            depth += 1;
            out += 1;
        } else if (c == '}') {
            if (depth > 0) depth -= 1;
            out += 1;
        } else if (c == '(') {
            parens += 1;
            out += 1;
        } else if (c == ')') {
            if (parens > 0) parens -= 1;
            out += 1;
        } else if (c == ';') {
            semis += 1;
            out += 1;
        } else if (c == '"') {
            instr = 1;
            out += 1;
        } else if (c == '\n') {
            out += depth;  // indentation cost
        } else {
            out += 1;
        }
        c = getchar();
    }
    if (depth < 0) putint(escape(depth));
    putint(depth);
    putint(semis);
    putint(parens);
    putint(out);
    return 0;
}
