// ptx: generates a permuted index.
// Extracts words, filters short "noise" words, and accumulates rotated
// keyword positions — word-boundary dispatch per character.
// Break-character table lookup (cold without -b).
int break_kind(int c) {
    if (c == '/') return 1;
    else if (c == ':') return 2;
    else if (c == ';') return 3;
    return 0;
}

int main() {
    int c; int words; int keywords; int wordlen; int linepos; int rotsum;
    int lines;
    words = 0; keywords = 0; wordlen = 0; linepos = 0; rotsum = 0;
    lines = 0;
    c = getchar();
    while (c != -1) {
        if (c >= 'a' && c <= 'z') {
            wordlen += 1;
            linepos += 1;
        } else if (c >= 'A' && c <= 'Z') {
            wordlen += 1;
            linepos += 1;
        } else if (c == '\n') {
            if (wordlen > 0) {
                words += 1;
                if (wordlen > 3) {
                    keywords += 1;
                    rotsum += linepos - wordlen;  // rotation point
                }
            }
            wordlen = 0;
            linepos = 0;
            lines += 1;
        } else if (c == ' ' || c == '\t') {
            if (wordlen > 0) {
                words += 1;
                if (wordlen > 3) {
                    keywords += 1;
                    rotsum += linepos - wordlen;
                }
            }
            wordlen = 0;
            linepos += 1;
        } else {
            // punctuation ends a word without counting as position
            if (wordlen > 0) {
                words += 1;
                if (wordlen > 3) {
                    keywords += 1;
                    rotsum += linepos - wordlen;
                }
            }
            wordlen = 0;
            linepos += 1;
        }
        c = getchar();
    }
    if (words < 0) putint(break_kind(words));
    putint(words);
    putint(keywords);
    putint(rotsum);
    putint(lines);
    return 0;
}
