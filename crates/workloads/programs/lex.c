// lex: lexical analysis program generator kernel.
// Tokenizes its input the way a generated scanner would: a switch on
// the leading character of every token, with inner loops per token
// class. Binary-search translation of the switch produces several
// short reorderable sequences.
int main() {
    int c; int idents; int numbers; int ops; int strings; int others;
    int regexes; int braces; int bars; int stars;
    idents = 0; numbers = 0; ops = 0; strings = 0; others = 0;
    regexes = 0; braces = 0; bars = 0; stars = 0;
    c = getchar();
    while (c != -1) {
        if (c >= 'a' && c <= 'z') {
            idents += 1;
            c = getchar();
            while ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
                c = getchar();
            }
        } else if (c >= '0' && c <= '9') {
            numbers += 1;
            c = getchar();
            while (c >= '0' && c <= '9') c = getchar();
        } else {
            switch (c) {
                case '"':
                    strings += 1;
                    c = getchar();
                    while (c != '"' && c != '\n' && c != -1) c = getchar();
                    if (c == '"') c = getchar();
                    break;
                case '/': regexes += 1; c = getchar(); break;
                case '{': braces += 1; c = getchar(); break;
                case '}': braces += 1; c = getchar(); break;
                case '|': bars += 1; c = getchar(); break;
                case '*': stars += 1; c = getchar(); break;
                case '+': ops += 1; c = getchar(); break;
                case '-': ops += 1; c = getchar(); break;
                case '=': ops += 1; c = getchar(); break;
                case '<': ops += 1; c = getchar(); break;
                case '>': ops += 1; c = getchar(); break;
                case ';': ops += 1; c = getchar(); break;
                default: others += 1; c = getchar();
            }
        }
    }
    putint(idents);
    putint(numbers);
    putint(ops);
    putint(strings);
    putint(regexes + braces + bars + stars);
    putint(others);
    return 0;
}
