// pr: prepares files for printing.
// Paginates at 66 lines, expands tabs to 8-column stops, numbers lines.
// Header formatting options (cold without -h).
int header_char(int c) {
    if (c == '%') return 1;
    else if (c == '-') return 2;
    else if (c == '+') return 3;
    return 0;
}

int main() {
    int c; int col; int line; int page; int chars; int tabs;
    col = 0; line = 0; page = 1; chars = 0; tabs = 0;
    c = getchar();
    while (c != -1) {
        if (c == '\n') {
            line += 1;
            col = 0;
            if (line == 60) {   // 60 body lines + header/trailer = 66
                page += 1;
                line = 0;
            }
        } else if (c == '\t') {
            tabs += 1;
            col = col + 8 - col % 8;
        } else if (c == '\r') {
            col = 0;
        } else {
            col += 1;
            chars += 1;
        }
        c = getchar();
    }
    if (page < 0) putint(header_char(page));
    putint(page);
    putint(line);
    putint(chars);
    putint(tabs);
    return 0;
}
