// deroff: removes nroff/troff constructs.
// Skips request lines (starting with '.' or '\''), drops backslash
// escapes, and counts the words that survive.
// Macro-package request table (cold unless -m flags are given).
int request_kind(int c) {
    if (c == 'P') return 1;
    else if (c == 'S') return 2;
    else if (c == 'T') return 3;
    else if (c == 'I') return 4;
    return 0;
}

int main() {
    int c; int atbol; int skipline; int esc; int words; int inword;
    int requests;
    atbol = 1; skipline = 0; esc = 0; words = 0; inword = 0; requests = 0;
    c = getchar();
    while (c != -1) {
        if (skipline) {
            if (c == '\n') { skipline = 0; atbol = 1; }
        } else if (esc) {
            // The character after a backslash is consumed silently.
            esc = 0;
        } else if (c == '.') {
            if (atbol) { skipline = 1; requests += 1; inword = 0; }
            atbol = 0;
        } else if (c == '\\') {
            esc = 1;
            atbol = 0;
        } else if (c == '\n') {
            atbol = 1;
            inword = 0;
        } else if (c == ' ') {
            inword = 0;
            atbol = 0;
        } else if (c == '\t') {
            inword = 0;
            atbol = 0;
        } else {
            if (inword == 0) { words += 1; inword = 1; }
            atbol = 0;
        }
        c = getchar();
    }
    if (words < 0) putint(request_kind(words));
    putint(words);
    putint(requests);
    return 0;
}
