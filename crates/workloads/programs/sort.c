// sort: sorts and collates lines.
// Reads lines into a global text pool, insertion-sorts the line index by
// character comparison, and prints a position-weighted checksum. The
// line-reading loop classifies every character (the sequence the paper
// reports a 47% instruction reduction on), and the comparison loop
// re-classifies characters for case folding.
int pool[16384];
int starts[512];
int lens[512];
int order[512];

int fold(int c) {
    // Case-fold and group characters for collation. Tests are written
    // in "special cases first" source order — natural for a programmer,
    // but exactly backwards for the actual character distribution, which
    // is what makes this the paper's biggest winner.
    if (c == ' ') return 1;
    if (c == '\t') return 1;
    if (c >= '0' && c <= '9') return c;
    if (c >= 'A' && c <= 'Z') return c;
    if (c >= 'a' && c <= 'z') return c - 32;
    return c;
}

int cmplines(int a, int b) {
    int i; int ca; int cb; int la; int lb;
    la = lens[a]; lb = lens[b];
    i = 0;
    while (i < la && i < lb) {
        ca = fold(pool[starts[a] + i]);
        cb = fold(pool[starts[b] + i]);
        if (ca < cb) return -1;
        if (ca > cb) return 1;
        i += 1;
    }
    if (la < lb) return -1;
    if (la > lb) return 1;
    return 0;
}

// Option parser for collation flags (cold: no options in this run).
int option(int c) {
    if (c == 'r') return 1;
    else if (c == 'n') return 2;
    else if (c == 'f') return 3;
    else if (c == 'u') return 4;
    else if (c == 'b') return 5;
    return 0;
}

int main() {
    int c; int n; int top; int i; int j; int k;
    n = 0; top = 0;
    c = getchar();
    // Read lines; classify each character as the paper's motivating
    // example does (blank / newline / EOF / ordinary).
    starts[0] = 0;
    while (c != -1) {
        if (c == '\n') {
            lens[n] = top - starts[n];
            n += 1;
            if (n >= 512) break;
            starts[n] = top;
        } else if (c == '\t') {
            if (top < 16384) { pool[top] = ' '; top += 1; }
        } else {
            if (top < 16384) { pool[top] = c; top += 1; }
        }
        c = getchar();
    }
    // Insertion sort on the index.
    for (i = 0; i < n; i += 1) order[i] = i;
    for (i = 1; i < n; i += 1) {
        k = order[i];
        j = i - 1;
        while (j >= 0 && cmplines(order[j], k) > 0) {
            order[j + 1] = order[j];
            j -= 1;
        }
        order[j + 1] = k;
    }
    // Position-weighted checksum of the sorted order.
    k = 0;
    for (i = 0; i < n; i += 1) {
        j = starts[order[i]];
        if (lens[order[i]] > 0) k += (i + 1) * (pool[j] % 251);
    }
    if (n < 0) putint(option(n));
    putint(n);
    putint(k);
    return 0;
}
