// wc: displays count of lines, words, and characters.
// The inner loop is the classic character-classification chain the
// paper's Figure 1 motivates: blanks are common, newlines rarer, EOF
// seen once, and most characters are none of the three.
// Diagnostic path for malformed input (never taken on valid text):
// locale-style classification of the offending byte.
int diagnose(int c) {
    if (c == 0) return 1;
    else if (c == 127) return 2;
    else if (c < 32) return 3;
    else if (c > 127) return 4;
    return 0;
}

int main() {
    int c;
    int lines; int words; int chars;
    int inword;
    lines = 0; words = 0; chars = 0; inword = 0;
    c = getchar();
    while (c != -1) {
        chars += 1;
        if (c == ' ') {
            inword = 0;
        } else if (c == '\n') {
            lines += 1;
            inword = 0;
        } else if (c == '\t') {
            inword = 0;
        } else {
            if (inword == 0) {
                words += 1;
                inword = 1;
            }
        }
        c = getchar();
    }
    if (chars < 0) putint(diagnose(chars));
    putint(lines);
    putint(words);
    putint(chars);
    return 0;
}
