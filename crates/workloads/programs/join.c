// join: relational database operator.
// Input lines are "key<TAB>value" records from two interleaved
// relations (lines alternate). Parses integer keys and counts joins —
// digit parsing and separator dispatch dominate.
int akeys[1024];
int bkeys[1024];

int main() {
    int c; int key; int inkey; int side; int an; int bn; int joined;
    int i; int j;
    key = 0; inkey = 1; side = 0; an = 0; bn = 0; joined = 0;
    c = getchar();
    while (c != -1) {
        if (c >= '0' && c <= '9') {
            if (inkey) key = key * 10 + (c - '0');
        } else if (c == '\t') {
            inkey = 0;
        } else if (c == ' ') {
            inkey = 0;
        } else if (c == '\n') {
            if (side == 0) {
                if (an < 1024) { akeys[an] = key; an += 1; }
                side = 1;
            } else {
                if (bn < 1024) { bkeys[bn] = key; bn += 1; }
                side = 0;
            }
            key = 0;
            inkey = 1;
        }
        c = getchar();
    }
    // Nested-loop join on equal keys.
    for (i = 0; i < an; i += 1) {
        for (j = 0; j < bn; j += 1) {
            if (akeys[i] == bkeys[j]) joined += 1;
        }
    }
    putint(an);
    putint(bn);
    putint(joined);
    return 0;
}
