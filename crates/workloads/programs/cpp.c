// cpp: C preprocessor kernel.
// Detects directives ('#' at line start), strips // and block comments,
// and counts identifier tokens — nested classification chains.
int hashbuckets[17];

// Directive keyword dispatch (cold: counted but not interpreted here).
int directive_kind(int c) {
    if (c == 'i') return 1;
    else if (c == 'd') return 2;
    else if (c == 'e') return 3;
    else if (c == 'u') return 4;
    else if (c == 'p') return 5;
    return 0;
}

int main() {
    int c; int prev; int atbol; int directives; int idents; int inid;
    int comments; int incomment; int i; int hashsum;
    prev = 0; atbol = 1; directives = 0; idents = 0; inid = 0;
    comments = 0; incomment = 0;
    c = getchar();
    while (c != -1) {
        // Macro-table hash bucketing: 17 dense cases, so Sets I *and* II
        // translate this to an indirect jump (n >= 16, nl <= 3n) while
        // Set III's linear search exposes it to reordering — the paper's
        // cpp shows exactly this: flat under I/II, large gain under III.
        switch (c % 17) {
            case 0: hashbuckets[0] += 1; break;
            case 1: hashbuckets[1] += 1; break;
            case 2: hashbuckets[2] += 1; break;
            case 3: hashbuckets[3] += 1; break;
            case 4: hashbuckets[4] += 1; break;
            case 5: hashbuckets[5] += 1; break;
            case 6: hashbuckets[6] += 1; break;
            case 7: hashbuckets[7] += 1; break;
            case 8: hashbuckets[8] += 1; break;
            case 9: hashbuckets[9] += 1; break;
            case 10: hashbuckets[10] += 1; break;
            case 11: hashbuckets[11] += 1; break;
            case 12: hashbuckets[12] += 1; break;
            case 13: hashbuckets[13] += 1; break;
            case 14: hashbuckets[14] += 1; break;
            case 15: hashbuckets[15] += 1; break;
            case 16: hashbuckets[16] += 1; break;
        }
        if (incomment) {
            if (prev == '*' && c == '/') incomment = 0;
        } else if (prev == '/' && c == '*') {
            comments += 1;
            incomment = 1;
            inid = 0;
        } else if (c == '#') {
            if (atbol) directives += 1;
            inid = 0;
        } else if (c >= 'a' && c <= 'z') {
            if (inid == 0) { idents += 1; inid = 1; }
        } else if (c >= 'A' && c <= 'Z') {
            if (inid == 0) { idents += 1; inid = 1; }
        } else if (c == '_') {
            if (inid == 0) { idents += 1; inid = 1; }
        } else if (c >= '0' && c <= '9') {
            // digits continue an identifier but do not start one
        } else {
            inid = 0;
        }
        if (c == '\n') atbol = 1;
        else if (c != ' ' && c != '\t') atbol = 0;
        prev = c;
        c = getchar();
    }
    hashsum = 0;
    for (i = 0; i < 17; i += 1) hashsum += (i + 1) * hashbuckets[i];
    if (idents < 0) putint(directive_kind(idents));
    putint(directives);
    putint(idents);
    putint(comments);
    putint(hashsum);
    return 0;
}
