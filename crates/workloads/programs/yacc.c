// yacc: parsing program generator kernel.
// Reads a grammar-shaped input, counting rules, alternatives, and
// symbols, and then spends most of its time building a closure table —
// the table work dwarfs the scanning, so reordering helps only a
// little, as in the paper.
int table[40000];

int main() {
    int c; int rules; int alts; int symbols; int insym; int i; int j;
    int n; int acc;
    rules = 0; alts = 0; symbols = 0; insym = 0;
    c = getchar();
    while (c != -1) {
        if (c >= 'a' && c <= 'z') {
            if (insym == 0) { symbols += 1; insym = 1; }
        } else if (c == ':') {
            rules += 1;
            insym = 0;
        } else if (c == '|') {
            alts += 1;
            insym = 0;
        } else if (c == ';') {
            insym = 0;
        } else {
            insym = 0;
        }
        c = getchar();
    }
    // Closure-style table computation (dominates execution).
    n = 200;
    for (i = 0; i < n; i += 1) {
        table[i * n + i] = 1;
    }
    for (i = 0; i < n; i += 1) {
        for (j = 0; j < n; j += 1) {
            if (table[i * n + j] == 0) {
                table[i * n + j] = (i * 31 + j * 17 + symbols) % 7 == 0;
            }
        }
    }
    acc = 0;
    for (i = 0; i < n * n; i += 1) acc += table[i];
    putint(rules);
    putint(alts);
    putint(symbols);
    putint(acc);
    return 0;
}
