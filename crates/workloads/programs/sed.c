// sed: stream editor kernel.
// Applies the fixed script "s/and/AND/; d on lines starting '#'" —
// pattern scanning with per-character dispatch plus deletion logic.
// Address syntax classifier (cold: fixed script).
int address_kind(int c) {
    if (c == 36) return 1;
    else if (c == '/') return 2;
    else if (c >= '0' && c <= '9') return 3;
    else if (c == ',') return 4;
    return 0;
}

int main() {
    int c; int state; int subs; int deleted; int atbol; int dropline;
    int lines; int emitted;
    state = 0; subs = 0; deleted = 0; atbol = 1; dropline = 0;
    lines = 0; emitted = 0;
    c = getchar();
    while (c != -1) {
        if (dropline) {
            if (c == '\n') { dropline = 0; atbol = 1; lines += 1; }
        } else if (c == '#') {
            if (atbol) { dropline = 1; deleted += 1; }
            else emitted += 1;
            atbol = 0;
            state = 0;
        } else if (c == 'a') {
            state = 1;
            emitted += 1;
            atbol = 0;
        } else if (c == 'n') {
            if (state == 1) state = 2; else state = 0;
            emitted += 1;
            atbol = 0;
        } else if (c == 'd') {
            if (state == 2) subs += 1;
            state = 0;
            emitted += 1;
            atbol = 0;
        } else if (c == '\n') {
            lines += 1;
            atbol = 1;
            state = 0;
        } else {
            state = 0;
            emitted += 1;
            atbol = 0;
        }
        c = getchar();
    }
    if (lines < 0) putint(address_kind(lines));
    putint(subs);
    putint(deleted);
    putint(lines);
    putint(emitted);
    return 0;
}
