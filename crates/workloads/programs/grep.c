// grep: searches input for a fixed pattern ("the") and prints matching
// line counts. The scanner classifies every character against the
// pattern head and line terminators — a reorderable sequence per
// character.
int buckets[8];

// Regex metacharacter handling (cold: fixed pattern in this kernel).
int metachar(int c) {
    if (c == '*') return 1;
    else if (c == '.') return 2;
    else if (c == '[') return 3;
    else if (c == '^') return 4;
    else if (c == 36) return 5;
    return 0;
}

int main() {
    int c; int state; int linehit; int hits; int lines; int matches;
    int i; int sum;
    state = 0; linehit = 0; hits = 0; lines = 0; matches = 0;
    c = getchar();
    while (c != -1) {
        // Bucket statistics for the Boyer-Moore-style skip table: a dense
        // 8-way switch over the character's high bits (heavily skewed
        // toward the letter buckets), translated per the active heuristic
        // set: indirect jump under Set I, binary search under Set II,
        // linear search under Set III.
        switch (c / 16) {
            case 0: buckets[0] += 1; break;
            case 1: buckets[1] += 1; break;
            case 2: buckets[2] += 1; break;
            case 3: buckets[3] += 1; break;
            case 4: buckets[4] += 1; break;
            case 5: buckets[5] += 1; break;
            case 6: buckets[6] += 1; break;
            case 7: buckets[7] += 1; break;
        }
        if (c == '\n') {
            lines += 1;
            if (linehit) hits += 1;
            linehit = 0;
            state = 0;
        } else if (c == 't') {
            state = 1;
        } else if (c == 'h') {
            if (state == 1) state = 2; else state = 0;
        } else if (c == 'e') {
            if (state == 2) { matches += 1; linehit = 1; }
            state = 0;
        } else {
            state = 0;
        }
        c = getchar();
    }
    if (linehit) hits += 1;
    sum = 0;
    for (i = 0; i < 8; i += 1) sum += (i + 1) * buckets[i];
    if (lines < 0) putint(metachar(lines));
    putint(hits);
    putint(lines);
    putint(matches);
    putint(sum);
    return 0;
}
