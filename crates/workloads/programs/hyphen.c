// hyphen: lists hyphenated words.
// Classifies characters as vowels, consonants, hyphens, and separators.
// The vowel chain tests six specific letters, so its profile is very
// sensitive to the letter distribution — this kernel is where the paper
// observed a slight regression when training and test inputs differ.
int main() {
    int c; int hyphens; int vowels; int consonants; int words; int inword;
    int hyphenated; int sawhyphen;
    hyphens = 0; vowels = 0; consonants = 0; words = 0; inword = 0;
    hyphenated = 0; sawhyphen = 0;
    c = getchar();
    while (c != -1) {
        if (c == 'a') {
            vowels += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else if (c == 'e') {
            vowels += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else if (c == 'i') {
            vowels += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else if (c == 'o') {
            vowels += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else if (c == 'u') {
            vowels += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else if (c == 'y') {
            vowels += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else if (c == '-') {
            hyphens += 1;
            if (inword) sawhyphen = 1;
        } else if (c >= 'b' && c <= 'z') {
            consonants += 1;
            if (inword == 0) { words += 1; inword = 1; }
        } else {
            if (inword && sawhyphen) hyphenated += 1;
            inword = 0;
            sawhyphen = 0;
        }
        c = getchar();
    }
    if (inword && sawhyphen) hyphenated += 1;
    putint(hyphenated);
    putint(hyphens);
    putint(vowels);
    putint(consonants);
    putint(words);
    return 0;
}
