// nroff: text formatter kernel.
// Fills output lines to a 72-column measure, honours request lines
// beginning with '.', and expands tabs — per-character dispatch plus a
// word-fill loop.
// Font-escape dispatch (cold: escapes stripped upstream here).
int font_kind(int c) {
    if (c == 'B') return 1;
    else if (c == 'I') return 2;
    else if (c == 'R') return 3;
    else if (c == 'P') return 4;
    return 0;
}

int main() {
    int c; int col; int outlines; int requests; int wordlen; int spaces;
    int atbol; int skipline; int filled;
    col = 0; outlines = 0; requests = 0; wordlen = 0; spaces = 0;
    atbol = 1; skipline = 0; filled = 0;
    c = getchar();
    while (c != -1) {
        if (skipline) {
            if (c == '\n') { skipline = 0; atbol = 1; }
        } else if (c == '.') {
            if (atbol) { requests += 1; skipline = 1; }
            else { wordlen += 1; }
            atbol = 0;
        } else if (c == ' ') {
            if (wordlen > 0) {
                if (col + wordlen >= 72) { outlines += 1; col = 0; }
                col += wordlen + 1;
                filled += wordlen;
                wordlen = 0;
            }
            spaces += 1;
            atbol = 0;
        } else if (c == '\t') {
            // Tab advances to the next 8-column stop.
            col = col + 8 - col % 8;
            atbol = 0;
        } else if (c == '\n') {
            if (wordlen > 0) {
                if (col + wordlen >= 72) { outlines += 1; col = 0; }
                col += wordlen + 1;
                filled += wordlen;
                wordlen = 0;
            }
            atbol = 1;
        } else {
            wordlen += 1;
            atbol = 0;
        }
        c = getchar();
    }
    if (outlines < 0) putint(font_kind(outlines));
    putint(outlines);
    putint(requests);
    putint(filled);
    putint(spaces);
    return 0;
}
