// awk: pattern scanning and processing kernel.
// Splits records into fields, accumulates numeric fields, and
// dispatches "actions" on the first character of each record — field
// separator classification per character plus a record-type switch.
int main() {
    int c; int fields; int infield; int records; int numval; int innum;
    int total; int first; int comments; int rules; int assigns;
    fields = 0; infield = 0; records = 0; numval = 0; innum = 0;
    total = 0; first = -2; comments = 0; rules = 0; assigns = 0;
    c = getchar();
    while (c != -1) {
        if (first == -2) first = c;
        if (c == ' ') {
            infield = 0;
            if (innum) { total += numval; numval = 0; innum = 0; }
        } else if (c == '\t') {
            infield = 0;
            if (innum) { total += numval; numval = 0; innum = 0; }
        } else if (c == '\n') {
            if (innum) { total += numval; numval = 0; innum = 0; }
            records += 1;
            switch (first) {
                case '#': comments += 1; break;
                case '{': rules += 1; break;
                case '$': assigns += 1; break;
                case -2: break;
                default: ;
            }
            first = -2;
            infield = 0;
        } else if (c >= '0' && c <= '9') {
            if (infield == 0) { fields += 1; infield = 1; }
            if (innum) numval = numval * 10 + (c - '0');
            else { numval = c - '0'; innum = 1; }
        } else {
            if (infield == 0) { fields += 1; infield = 1; }
            innum = 0;
        }
        c = getchar();
    }
    putint(records);
    putint(fields);
    putint(total);
    putint(comments + rules * 10 + assigns * 100);
    return 0;
}
