//! Every workload kernel must compile under all three heuristic sets,
//! verify, run to completion, and — crucially — behave identically
//! before and after branch reordering.

use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};
use br_vm::{run, VmOptions};
use br_workloads::all;

#[test]
fn all_kernels_compile_and_run_under_every_heuristic_set() {
    for w in all() {
        let input = w.test_input(4096);
        let mut reference: Option<(i64, Vec<u8>)> = None;
        for h in HeuristicSet::ALL {
            let mut m = compile(w.source, &Options::with_heuristics(h))
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", w.name));
            br_opt::optimize(&mut m);
            br_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} fails verification: {e}", w.name));
            let out = run(&m, &input, &VmOptions::default())
                .unwrap_or_else(|e| panic!("{} traps under set {}: {e}", w.name, h.name));
            assert!(
                !out.output.is_empty(),
                "{}: kernels must print their results",
                w.name
            );
            match &reference {
                None => reference = Some((out.exit, out.output)),
                Some((exit, output)) => {
                    assert_eq!(out.exit, *exit, "{}: set {} changed exit", w.name, h.name);
                    assert_eq!(
                        &out.output, output,
                        "{}: set {} changed output",
                        w.name, h.name
                    );
                }
            }
        }
    }
}

#[test]
fn reordering_preserves_behaviour_on_every_kernel_and_set() {
    for w in all() {
        let train = w.training_input(3072);
        let test = w.test_input(4096);
        for h in HeuristicSet::ALL {
            let mut m = compile(w.source, &Options::with_heuristics(h)).expect("compiles");
            br_opt::optimize(&mut m);
            let report = reorder_module(&m, &train, &ReorderOptions::default())
                .unwrap_or_else(|e| panic!("{}/{}: training trapped: {e}", w.name, h.name));
            br_ir::verify_module(&report.module)
                .unwrap_or_else(|e| panic!("{}/{}: bad module: {e}", w.name, h.name));
            let base = run(&m, &test, &VmOptions::default()).expect("base runs");
            let new = run(&report.module, &test, &VmOptions::default()).expect("new runs");
            assert_eq!(
                base.exit, new.exit,
                "{}/{}: reordering changed the exit value",
                w.name, h.name
            );
            assert_eq!(
                base.output, new.output,
                "{}/{}: reordering changed the output",
                w.name, h.name
            );
        }
    }
}

#[test]
fn every_kernel_has_detectable_sequences_under_set_iii() {
    // Set III (always linear search) maximizes reordering opportunity;
    // each kernel must expose at least one reorderable sequence.
    for w in all() {
        let mut m =
            compile(w.source, &Options::with_heuristics(HeuristicSet::SET_III)).expect("compiles");
        br_opt::optimize(&mut m);
        let detections = br_reorder::profile::detect_all(&m);
        assert!(
            !detections.is_empty(),
            "{}: no reorderable sequence detected",
            w.name
        );
    }
}

#[test]
fn most_kernels_improve_on_matched_inputs_under_set_iii() {
    // With training distribution == test distribution (different seeds),
    // reordering should help broadly; require a clear majority to
    // improve and none to regress catastrophically.
    let mut improved = 0usize;
    let mut total = 0usize;
    for w in all() {
        let mut m =
            compile(w.source, &Options::with_heuristics(HeuristicSet::SET_III)).expect("compiles");
        br_opt::optimize(&mut m);
        let train = w.training_input(3072);
        let test = w.test_input(4096);
        let report = reorder_module(&m, &train, &ReorderOptions::default()).expect("pipeline");
        let base = run(&m, &test, &VmOptions::default()).expect("runs");
        let new = run(&report.module, &test, &VmOptions::default()).expect("runs");
        total += 1;
        let delta = new.stats.insts as f64 / base.stats.insts as f64 - 1.0;
        if delta < 0.0 {
            improved += 1;
        }
        assert!(
            delta < 0.15,
            "{}: reordering regressed instructions by {:.1}%",
            w.name,
            delta * 100.0
        );
    }
    assert!(
        improved * 3 >= total * 2,
        "only {improved}/{total} kernels improved"
    );
}
