//! A small, self-contained deterministic PRNG.
//!
//! The workload generators and property tests need reproducible random
//! streams but nothing cryptographic; this xorshift64* generator (seeded
//! through a splitmix64 scramble so nearby seeds diverge immediately)
//! keeps the workspace free of external dependencies. Same seed, same
//! bytes, on every platform.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator with a `rand`-like surface:
/// [`SmallRng::seed_from_u64`], [`SmallRng::gen_range`], and
/// [`SmallRng::gen_bool`].
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Build a generator from a seed; the seed is scrambled with
    /// splitmix64 so that consecutive seeds produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        // xorshift state must be nonzero.
        SmallRng { state: s | 1 }
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        // Multiply-shift reduction: unbiased enough for test generators.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform value in an integer range (half-open or inclusive).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Integer ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi as i128 - lo as i128 + 1;
                // A full-width domain (e.g. `0..=u64::MAX`) has span
                // 2^64, which a `u64` cannot hold; every bit pattern is
                // in range, so take the raw output directly.
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, i32, u32, i64, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn one_element_ranges_return_the_element() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..32 {
            assert_eq!(rng.gen_range(5i64..6), 5);
            assert_eq!(rng.gen_range(7u64..=7), 7);
            assert_eq!(rng.gen_range(u64::MAX..=u64::MAX), u64::MAX);
            assert_eq!(rng.gen_range(i64::MIN..=i64::MIN), i64::MIN);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_half_open_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(3u32..3);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_inclusive_range_panics() {
        // The reversed literal is the point: it must be rejected loudly
        // rather than sampled from.
        #[allow(clippy::reversed_empty_ranges)]
        SmallRng::seed_from_u64(0).gen_range(4i64..=3);
    }

    #[test]
    fn inclusive_bounds_at_u64_max() {
        // `hi - lo + 1` overflows a u64 for full-width domains; the
        // sampler must still cover both halves of the space.
        let mut rng = SmallRng::seed_from_u64(9);
        let (mut low_half, mut high_half) = (0u32, 0u32);
        for _ in 0..256 {
            let v = rng.gen_range(0u64..=u64::MAX);
            if v < 1 << 63 {
                low_half += 1;
            } else {
                high_half += 1;
            }
        }
        assert!(low_half > 32 && high_half > 32, "{low_half}/{high_half}");
        // A two-element range touching the top stays in bounds and
        // produces both values.
        let mut seen = [false; 2];
        for _ in 0..64 {
            let v = rng.gen_range(u64::MAX - 1..=u64::MAX);
            assert!(v >= u64::MAX - 1);
            seen[(v - (u64::MAX - 1)) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
        // Same overflow case for the signed full domain.
        let (mut neg, mut pos) = (0u32, 0u32);
        for _ in 0..256 {
            if rng.gen_range(i64::MIN..=i64::MAX) < 0 {
                neg += 1;
            } else {
                pos += 1;
            }
        }
        assert!(neg > 32 && pos > 32, "{neg}/{pos}");
    }

    #[test]
    fn adjacent_seeds_diverge_immediately_and_stay_apart() {
        // The splitmix64 scramble must decorrelate neighbouring seeds:
        // the streams may never share a prefix, and over a short window
        // they should have no positional collisions at all.
        for seed in 0..100u64 {
            let mut a = SmallRng::seed_from_u64(seed);
            let mut b = SmallRng::seed_from_u64(seed + 1);
            let mut collisions = 0;
            for i in 0..16 {
                let (x, y) = (a.next_u64(), b.next_u64());
                assert!(
                    !(i == 0 && x == y),
                    "seeds {seed}/{} share a prefix",
                    seed + 1
                );
                collisions += u32::from(x == y);
            }
            assert_eq!(collisions, 0, "seeds {seed}/{} collide", seed + 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
