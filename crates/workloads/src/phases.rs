//! Phase-shifting input scenarios for the adaptive runtime.
//!
//! Each scenario is a branch-heavy classifier program plus an input
//! *stream* whose character distribution shifts abruptly between
//! phases. A train-once deployment optimizes for the training
//! distribution and then eats the mismatch for every later phase; an
//! adaptive runtime is expected to re-reorder shortly after each shift.

use crate::gen::{InputKind, InputSpec};

/// One phase of a scenario's input stream.
#[derive(Clone, Copy, Debug)]
pub struct Phase {
    /// Display name.
    pub name: &'static str,
    /// Input generator for this phase.
    pub input: InputSpec,
}

/// A program plus a phase-shifting input stream.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name.
    pub name: &'static str,
    /// One-line description of the shift pattern.
    pub description: &'static str,
    /// mini-C source of the classifier program.
    pub source: &'static str,
    /// Training distribution (what the initial deployment is tuned for).
    pub training: InputSpec,
    /// The phases, in stream order.
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// Generate the training input at roughly `size` bytes.
    pub fn training_input(&self, size: usize) -> Vec<u8> {
        self.training.generate(size)
    }

    /// Generate every phase's input at roughly `size` bytes each.
    pub fn phase_inputs(&self, size: usize) -> Vec<(&'static str, Vec<u8>)> {
        self.phases
            .iter()
            .map(|p| (p.name, p.input.generate(size)))
            .collect()
    }
}

/// A wc-like character classifier: one long if/else chain on the input
/// character, exercised once per byte. Which arm is hot is exactly the
/// input's dominant character class.
const CHARCLASS: &str = "
    int main() {
        int c; int spaces; int lines; int tabs; int digits; int other;
        spaces = 0; lines = 0; tabs = 0; digits = 0; other = 0;
        c = getchar();
        while (c != -1) {
            if (c == ' ') spaces += 1;
            else if (c == 10) lines += 1;
            else if (c == 9) tabs += 1;
            else if (c >= '0' && c <= '9') digits += 1;
            else other += 1;
            c = getchar();
        }
        putint(spaces); putint(lines); putint(tabs); putint(digits); putint(other);
        return 0;
    }";

/// A cb-like token dispatcher: punctuation cases first (cheap when the
/// input is code), the wide letter default last.
const DISPATCH: &str = "
    int main() {
        int c; int depth; int stmts; int strs; int words; int other;
        depth = 0; stmts = 0; strs = 0; words = 0; other = 0;
        c = getchar();
        while (c != -1) {
            if (c == '{') depth += 1;
            else if (c == '}') depth -= 1;
            else if (c == ';') stmts += 1;
            else if (c == 34) strs += 1;
            else if (c >= 'a' && c <= 'z') words += 1;
            else other += 1;
            c = getchar();
        }
        putint(depth); putint(stmts); putint(strs); putint(words); putint(other);
        return 0;
    }";

/// The phase-shifting scenarios.
pub fn scenarios() -> Vec<Scenario> {
    use InputKind::*;
    vec![
        Scenario {
            name: "charclass",
            description: "prose training, then digit- and space-dominated phases",
            source: CHARCLASS,
            training: InputSpec::new(Prose, 31),
            phases: vec![
                Phase {
                    name: "prose",
                    input: InputSpec::new(Prose, 231),
                },
                Phase {
                    name: "digits",
                    input: InputSpec::new(DigitHeavy, 232),
                },
                Phase {
                    name: "spaces",
                    input: InputSpec::new(SpaceHeavy, 233),
                },
            ],
        },
        Scenario {
            name: "dispatch",
            description: "code training, then prose and punctuation-soup phases",
            source: DISPATCH,
            training: InputSpec::new(Code, 41),
            phases: vec![
                Phase {
                    name: "code",
                    input: InputSpec::new(Code, 241),
                },
                Phase {
                    name: "prose",
                    input: InputSpec::new(Prose, 242),
                },
                Phase {
                    name: "punct",
                    input: InputSpec::new(PunctHeavy, 243),
                },
            ],
        },
    ]
}

/// Look up a scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_exist_and_lookup_works() {
        assert!(scenarios().len() >= 2);
        assert!(scenario("charclass").is_some());
        assert!(scenario("nope").is_none());
    }

    #[test]
    fn phases_differ_from_training() {
        for s in scenarios() {
            let train = s.training_input(4096);
            for (name, input) in s.phase_inputs(4096) {
                assert_ne!(train, input, "{}:{name} input equals training", s.name);
            }
        }
    }
}
