//! Deterministic input generators with ASCII-realistic distributions.

use crate::rng::SmallRng;

/// Shape of generated input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputKind {
    /// English-like prose: letters dominate, then spaces, newlines,
    /// punctuation (the distribution the paper's Figure 1 argument rests
    /// on: most characters are above the blank in ASCII).
    Prose,
    /// Prose with many hyphenated words.
    HyphenRich,
    /// C-like source code: identifiers, digits, braces, semicolons,
    /// comments, preprocessor lines.
    Code,
    /// troff input: text lines mixed with `.XX` request lines and
    /// backslash escapes.
    Troff,
    /// awk-style records: space/tab-separated fields, some numeric,
    /// with `#`/`{`/`$` leaders.
    Records,
    /// `key<TAB>value` lines with small integer keys (for join).
    KeyedRecords,
    /// Pairs of similar lines (for sdiff).
    PairedLines,
    /// Short words, one per line (for sort).
    ShortLines,
    /// yacc-like grammar text: names, `:`, `|`, `;`.
    Grammar,
    /// Whitespace-dominated: long space runs with sparse words (a
    /// heavily indented or column-aligned file). Drives classifier
    /// chains to their space exit almost every character.
    SpaceHeavy,
    /// Digit-dominated: columns of numbers with minimal separators.
    DigitHeavy,
    /// Punctuation-dominated: bracket/operator soup like minified code.
    PunctHeavy,
}

/// A deterministic input generator: a kind plus a seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InputSpec {
    /// Distribution shape.
    pub kind: InputKind,
    /// RNG seed; same spec + size = same bytes.
    pub seed: u64,
}

impl InputSpec {
    /// Create a spec.
    pub fn new(kind: InputKind, seed: u64) -> InputSpec {
        InputSpec { kind, seed }
    }

    /// Generate roughly `size` bytes (the final line is completed, so
    /// output may run slightly over).
    pub fn generate(&self, size: usize) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(size + 80);
        match self.kind {
            InputKind::Prose => prose(&mut rng, &mut out, size, 0.01, false),
            // Uniform letter frequencies *and* many hyphens: a training
            // distribution deliberately unlike Prose test inputs.
            InputKind::HyphenRich => prose(&mut rng, &mut out, size, 0.18, true),
            InputKind::Code => code(&mut rng, &mut out, size),
            InputKind::Troff => troff(&mut rng, &mut out, size),
            InputKind::Records => records(&mut rng, &mut out, size),
            InputKind::KeyedRecords => keyed(&mut rng, &mut out, size),
            InputKind::PairedLines => paired(&mut rng, &mut out, size),
            InputKind::ShortLines => short_lines(&mut rng, &mut out, size),
            InputKind::Grammar => grammar(&mut rng, &mut out, size),
            InputKind::SpaceHeavy => space_heavy(&mut rng, &mut out, size),
            InputKind::DigitHeavy => digit_heavy(&mut rng, &mut out, size),
            InputKind::PunctHeavy => punct_heavy(&mut rng, &mut out, size),
        }
        out
    }
}

/// English-letter-ish frequencies, skewed like real text.
fn letter(rng: &mut SmallRng) -> u8 {
    const WEIGHTED: &[u8] = b"eeeeeeeeeeeetttttttttaaaaaaaaooooooiiiiiinnnnnnssssss\
        hhhhhrrrrrrddddlllluuucccmmmwwfffggyyppbbvkjxqz";
    WEIGHTED[rng.gen_range(0..WEIGHTED.len())]
}

fn uniform_letter(rng: &mut SmallRng) -> u8 {
    b'a' + rng.gen_range(0u8..26)
}

fn word(rng: &mut SmallRng, out: &mut Vec<u8>, hyphen_prob: f64) {
    word_with(rng, out, hyphen_prob, false)
}

fn word_with(rng: &mut SmallRng, out: &mut Vec<u8>, hyphen_prob: f64, uniform: bool) {
    let len = rng.gen_range(2..9);
    for i in 0..len {
        if i > 0 && i + 1 < len && rng.gen_bool(hyphen_prob) {
            out.push(b'-');
        }
        let mut c = if uniform {
            uniform_letter(rng)
        } else {
            letter(rng)
        };
        if i == 0 && rng.gen_bool(0.08) {
            c = c.to_ascii_uppercase();
        }
        out.push(c);
    }
}

fn prose(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize, hyphen_prob: f64, uniform: bool) {
    let mut col = 0usize;
    while out.len() < size {
        word_with(rng, out, hyphen_prob, uniform);
        col += 6;
        if rng.gen_bool(0.10) {
            const PUNCT: [u8; 5] = [b'.', b',', b';', b'!', b'?'];
            out.push(PUNCT[rng.gen_range(0..PUNCT.len())]);
        }
        if col > 60 {
            out.push(b'\n');
            col = 0;
        } else if rng.gen_bool(0.06) {
            out.push(b'\t');
            col += 8;
        } else {
            out.push(b' ');
            col += 1;
        }
    }
    out.push(b'\n');
}

fn code(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    const KEYWORDS: &[&[u8]] = &[
        b"int", b"if", b"else", b"while", b"for", b"return", b"break", b"case", b"switch",
    ];
    while out.len() < size {
        match rng.gen_range(0..10) {
            0 => {
                // preprocessor line
                out.extend_from_slice(b"#define ");
                word(rng, out, 0.0);
                out.push(b' ');
                push_number(rng, out);
                out.push(b'\n');
            }
            1 => {
                // comment
                out.extend_from_slice(b"/* ");
                word(rng, out, 0.0);
                out.push(b' ');
                word(rng, out, 0.0);
                out.extend_from_slice(b" */\n");
            }
            2 | 3 => {
                // function-definition-looking line
                word(rng, out, 0.0);
                out.push(b'(');
                word(rng, out, 0.0);
                out.extend_from_slice(b") {\n");
            }
            4 => out.extend_from_slice(b"}\n"),
            _ => {
                // statement
                out.extend_from_slice(b"    ");
                let kw = KEYWORDS[rng.gen_range(0..KEYWORDS.len())];
                out.extend_from_slice(kw);
                out.push(b' ');
                word(rng, out, 0.0);
                out.extend_from_slice(b" = ");
                word(rng, out, 0.0);
                out.extend_from_slice(b"[");
                push_number(rng, out);
                out.extend_from_slice(b"] + \"s\";\n");
            }
        }
    }
}

fn push_number(rng: &mut SmallRng, out: &mut Vec<u8>) {
    let n: u32 = rng.gen_range(0..10_000);
    out.extend_from_slice(n.to_string().as_bytes());
}

fn troff(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    const REQUESTS: &[&[u8]] = &[b".PP", b".SH", b".TP", b".br", b".sp", b".in +2"];
    while out.len() < size {
        if rng.gen_bool(0.18) {
            out.extend_from_slice(REQUESTS[rng.gen_range(0..REQUESTS.len())]);
            out.push(b'\n');
        } else {
            let words = rng.gen_range(4..11);
            for i in 0..words {
                if i > 0 {
                    out.push(b' ');
                }
                if rng.gen_bool(0.07) {
                    out.extend_from_slice(b"\\fB");
                }
                word(rng, out, 0.01);
            }
            out.push(b'\n');
        }
    }
}

fn records(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        match rng.gen_range(0..8) {
            0 => out.push(b'#'),
            1 => out.push(b'{'),
            2 => out.push(b'$'),
            _ => {}
        }
        let fields = rng.gen_range(2..6);
        for i in 0..fields {
            if i > 0 {
                out.push(if rng.gen_bool(0.3) { b'\t' } else { b' ' });
            }
            if rng.gen_bool(0.4) {
                push_number(rng, out);
            } else {
                word(rng, out, 0.0);
            }
        }
        out.push(b'\n');
    }
}

fn keyed(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        let key: u32 = rng.gen_range(0..100);
        out.extend_from_slice(key.to_string().as_bytes());
        out.push(b'\t');
        word(rng, out, 0.0);
        out.push(b'\n');
    }
}

fn paired(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        let mut line = Vec::new();
        let words = rng.gen_range(3..8);
        for i in 0..words {
            if i > 0 {
                line.push(b' ');
            }
            word(rng, &mut line, 0.0);
        }
        out.extend_from_slice(&line);
        out.push(b'\n');
        // Second line of the pair: identical 60% of the time, else
        // perturbed.
        if rng.gen_bool(0.6) {
            out.extend_from_slice(&line);
        } else {
            let flip = rng.gen_range(0..line.len());
            let mut alt = line.clone();
            alt[flip] = letter(rng);
            out.extend_from_slice(&alt);
        }
        out.push(b'\n');
    }
}

fn short_lines(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        word(rng, out, 0.0);
        if rng.gen_bool(0.25) {
            out.push(b' ');
            word(rng, out, 0.0);
        }
        out.push(b'\n');
    }
}

fn grammar(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        word(rng, out, 0.0);
        out.extend_from_slice(b"\n    : ");
        let alts = rng.gen_range(1..4);
        for a in 0..alts {
            if a > 0 {
                out.extend_from_slice(b"\n    | ");
            }
            let syms = rng.gen_range(1..4);
            for s in 0..syms {
                if s > 0 {
                    out.push(b' ');
                }
                word(rng, out, 0.0);
            }
        }
        out.extend_from_slice(b"\n    ;\n");
    }
}

fn space_heavy(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        let run = rng.gen_range(8..25);
        out.extend(std::iter::repeat_n(b' ', run));
        word(rng, out, 0.0);
        if rng.gen_bool(0.15) {
            out.push(b'\n');
        }
    }
    out.push(b'\n');
}

fn digit_heavy(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    while out.len() < size {
        let cols = rng.gen_range(4..9);
        for i in 0..cols {
            if i > 0 {
                out.push(if rng.gen_bool(0.2) { b'\t' } else { b' ' });
            }
            for _ in 0..rng.gen_range(5..12) {
                out.push(b'0' + rng.gen_range(0u8..10));
            }
        }
        out.push(b'\n');
    }
}

fn punct_heavy(rng: &mut SmallRng, out: &mut Vec<u8>, size: usize) {
    const PUNCT: &[u8] = b"{}();,[]<>=+-*/&|!.:";
    while out.len() < size {
        for _ in 0..rng.gen_range(20..60) {
            if rng.gen_bool(0.15) {
                out.push(letter(rng));
            } else {
                out.push(PUNCT[rng.gen_range(0..PUNCT.len())]);
            }
        }
        out.push(b'\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prose_is_letter_dominated() {
        let bytes = InputSpec::new(InputKind::Prose, 1).generate(20_000);
        let letters = bytes.iter().filter(|b| b.is_ascii_alphabetic()).count();
        let spaces = bytes.iter().filter(|&&b| b == b' ').count();
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        assert!(letters > spaces, "letters {letters} vs spaces {spaces}");
        assert!(spaces > newlines, "spaces {spaces} vs newlines {newlines}");
    }

    #[test]
    fn hyphen_rich_has_more_hyphens_than_prose() {
        let rich = InputSpec::new(InputKind::HyphenRich, 1).generate(20_000);
        let plain = InputSpec::new(InputKind::Prose, 1).generate(20_000);
        let count = |v: &[u8]| v.iter().filter(|&&b| b == b'-').count();
        assert!(count(&rich) > 4 * count(&plain).max(1));
    }

    #[test]
    fn code_contains_code_shapes() {
        let bytes = InputSpec::new(InputKind::Code, 2).generate(8_000);
        let s = String::from_utf8_lossy(&bytes);
        assert!(s.contains("#define"));
        assert!(s.contains("/*"));
        assert!(s.contains('{'));
        assert!(s.contains(';'));
    }

    #[test]
    fn troff_has_requests() {
        let bytes = InputSpec::new(InputKind::Troff, 3).generate(8_000);
        let s = String::from_utf8_lossy(&bytes);
        assert!(s.lines().any(|l| l.starts_with('.')));
        assert!(s.contains('\\'));
    }

    #[test]
    fn keyed_lines_parse() {
        let bytes = InputSpec::new(InputKind::KeyedRecords, 4).generate(4_000);
        for line in String::from_utf8_lossy(&bytes).lines() {
            let (k, _) = line.split_once('\t').expect("key TAB value");
            k.parse::<u32>().expect("numeric key");
        }
    }

    #[test]
    fn paired_lines_come_in_pairs() {
        let bytes = InputSpec::new(InputKind::PairedLines, 5).generate(4_000);
        let lines: Vec<&str> = std::str::from_utf8(&bytes).unwrap().lines().collect();
        assert_eq!(lines.len() % 2, 0);
        let same = lines.chunks(2).filter(|p| p[0] == p[1]).count();
        assert!(same > 0 && same < lines.len() / 2);
    }

    #[test]
    fn skewed_kinds_are_dominated_by_their_class() {
        let frac = |bytes: &[u8], pred: fn(&u8) -> bool| {
            bytes.iter().filter(|b| pred(b)).count() as f64 / bytes.len() as f64
        };
        let spaces = InputSpec::new(InputKind::SpaceHeavy, 7).generate(10_000);
        assert!(frac(&spaces, |&b| b == b' ') > 0.5);
        let digits = InputSpec::new(InputKind::DigitHeavy, 7).generate(10_000);
        assert!(frac(&digits, u8::is_ascii_digit) > 0.6);
        let punct = InputSpec::new(InputKind::PunctHeavy, 7).generate(10_000);
        assert!(frac(&punct, |&b| b.is_ascii_punctuation()) > 0.6);
    }

    #[test]
    fn different_seeds_differ() {
        let a = InputSpec::new(InputKind::Prose, 1).generate(1000);
        let b = InputSpec::new(InputKind::Prose, 2).generate(1000);
        assert_ne!(a, b);
    }
}
