//! # br-workloads
//!
//! The 17 benchmark kernels named after the paper's test programs
//! (its Table 3), written in mini-C, plus seeded input generators.
//!
//! Each kernel reproduces the branch-heavy inner-loop character of its
//! Unix namesake — character classification, token dispatch, line
//! processing — because that structure (and the skew of the character
//! distribution feeding it) is what the reordering transformation's
//! benefit depends on. Inputs are generated deterministically from
//! seeds; training and test inputs use *different* seeds and slightly
//! different distributions, as the paper's evaluation does.
//!
//! ```
//! let w = br_workloads::by_name("wc").expect("wc exists");
//! let input = w.training_input(4096);
//! assert_eq!(input, w.training_input(4096), "generation is deterministic");
//! ```

mod gen;
pub mod phases;
pub mod rng;
pub mod synth;

pub use gen::{InputKind, InputSpec};
pub use phases::{scenario, scenarios, Phase, Scenario};

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Program name (matches the paper's Table 3).
    pub name: &'static str,
    /// The paper's one-line description.
    pub description: &'static str,
    /// mini-C source text.
    pub source: &'static str,
    /// Training-input generator (profiling runs).
    pub training: InputSpec,
    /// Test-input generator (measurement runs) — different seed and
    /// slightly different distribution than training.
    pub test: InputSpec,
}

impl Workload {
    /// Generate the training input at roughly `size` bytes.
    pub fn training_input(&self, size: usize) -> Vec<u8> {
        self.training.generate(size)
    }

    /// Generate the test input at roughly `size` bytes.
    pub fn test_input(&self, size: usize) -> Vec<u8> {
        self.test.generate(size)
    }
}

macro_rules! workload {
    ($name:literal, $desc:literal, $training:expr, $test:expr) => {
        Workload {
            name: $name,
            description: $desc,
            source: include_str!(concat!("../programs/", $name, ".c")),
            training: $training,
            test: $test,
        }
    };
}

/// All 17 workloads, in the paper's Table 3 order.
pub fn all() -> Vec<Workload> {
    use InputKind::*;
    vec![
        workload!(
            "awk",
            "Pattern Scanning and Processing Language",
            InputSpec::new(Records, 11),
            InputSpec::new(Records, 211)
        ),
        workload!(
            "cb",
            "A Simple C Program Beautifier",
            InputSpec::new(Code, 12),
            InputSpec::new(Code, 212)
        ),
        workload!(
            "cpp",
            "C Compiler Preprocessor",
            InputSpec::new(Code, 13),
            InputSpec::new(Code, 213)
        ),
        workload!(
            "ctags",
            "Generates Tag File for vi",
            InputSpec::new(Code, 14),
            InputSpec::new(Code, 214)
        ),
        workload!(
            "deroff",
            "Removes nroff Constructs",
            InputSpec::new(Troff, 15),
            InputSpec::new(Troff, 215)
        ),
        workload!(
            "grep",
            "Searches a File for a String or Regular Expression",
            InputSpec::new(Prose, 16),
            InputSpec::new(Prose, 216)
        ),
        workload!(
            "hyphen",
            "Lists Hyphenated Words in a File",
            // Deliberately mismatched distributions: training sees many
            // hyphens, testing few — the paper's hyphen regression came
            // from exactly this train/test mismatch.
            InputSpec::new(HyphenRich, 17),
            InputSpec::new(Prose, 217)
        ),
        workload!(
            "join",
            "Relational Database Operator",
            InputSpec::new(KeyedRecords, 18),
            InputSpec::new(KeyedRecords, 218)
        ),
        workload!(
            "lex",
            "Lexical Analysis Program Generator",
            InputSpec::new(Code, 19),
            InputSpec::new(Code, 219)
        ),
        workload!(
            "nroff",
            "Text Formatter",
            InputSpec::new(Troff, 20),
            InputSpec::new(Troff, 220)
        ),
        workload!(
            "pr",
            "Prepares File(s) for Printing",
            InputSpec::new(Prose, 21),
            InputSpec::new(Prose, 221)
        ),
        workload!(
            "ptx",
            "Generates a Permuted Index",
            InputSpec::new(Prose, 22),
            InputSpec::new(Prose, 222)
        ),
        workload!(
            "sdiff",
            "Displays Files Side-by-Side",
            InputSpec::new(PairedLines, 23),
            InputSpec::new(PairedLines, 223)
        ),
        workload!(
            "sed",
            "Stream Editor",
            InputSpec::new(Prose, 24),
            InputSpec::new(Prose, 224)
        ),
        workload!(
            "sort",
            "Sorts and Collates Lines",
            InputSpec::new(ShortLines, 25),
            InputSpec::new(ShortLines, 225)
        ),
        workload!(
            "wc",
            "Displays Count of Lines, Words, and Characters",
            InputSpec::new(Prose, 26),
            InputSpec::new(Prose, 226)
        ),
        workload!(
            "yacc",
            "Parsing Program Generator",
            InputSpec::new(Grammar, 27),
            InputSpec::new(Grammar, 227)
        ),
    ]
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_workloads_in_paper_order() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "awk", "cb", "cpp", "ctags", "deroff", "grep", "hyphen", "join", "lex", "nroff",
                "pr", "ptx", "sdiff", "sed", "sort", "wc", "yacc"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sort").is_some());
        assert!(by_name("emacs").is_none());
    }

    #[test]
    fn training_and_test_differ() {
        for w in all() {
            let train = w.training_input(2048);
            let test = w.test_input(2048);
            assert_ne!(train, test, "{}: train/test inputs must differ", w.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for w in all() {
            assert_eq!(w.training_input(1024), w.training_input(1024));
        }
    }

    #[test]
    fn inputs_are_roughly_sized() {
        for w in all() {
            let len = w.test_input(4096).len();
            assert!(
                (3000..6000).contains(&len),
                "{}: got {len} bytes for 4096 requested",
                w.name
            );
        }
    }
}
