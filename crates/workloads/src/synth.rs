//! Random mini-C program synthesis for differential testing.
//!
//! Generates syntactically and semantically valid programs that are
//! guaranteed to terminate and never trap:
//!
//! * every loop either consumes input (`c = getchar()` with an EOF
//!   check) or runs a bounded counter;
//! * array indices are masked with `& (size-1)` (sizes are powers of
//!   two), which is non-negative for any operand;
//! * divisors are odd-masked (`| 1`), hence never zero.
//!
//! The programs lean heavily on the shapes branch reordering cares
//! about: if/else chains and switches over a read character, plus
//! arithmetic noise, nested control flow, and helper function calls.

use crate::rng::SmallRng;

/// Configuration for the synthesizer.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Maximum statements per block.
    pub max_stmts: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Number of scalar locals in `main`.
    pub locals: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            max_stmts: 6,
            max_depth: 3,
            locals: 5,
        }
    }
}

/// Generate a random, valid, terminating mini-C program from `seed`.
pub fn generate_program(seed: u64, config: &SynthConfig) -> String {
    let mut g = Synth {
        rng: SmallRng::seed_from_u64(seed),
        config: *config,
        out: String::new(),
        indent: 1,
    };
    g.program();
    g.out
}

struct Synth {
    rng: SmallRng,
    config: SynthConfig,
    out: String,
    indent: usize,
}

const ARRAY: &str = "tbl";
const ARRAY_SIZE: usize = 64;

impl Synth {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn local(&mut self) -> String {
        format!("v{}", self.rng.gen_range(0..self.config.locals))
    }

    fn program(&mut self) {
        self.out
            .push_str(&format!("int {ARRAY}[{ARRAY_SIZE}];\nint gsum = 0;\n\n"));
        // A pure helper function the generator may call.
        self.out.push_str(
            "int clamp(int x, int lo, int hi) {\n    if (x < lo) return lo;\n    if (x > hi) return hi;\n    return x;\n}\n\n",
        );
        self.out.push_str("int main() {\n");
        self.line("int c;");
        for i in 0..self.config.locals {
            self.line(&format!("int v{i};"));
        }
        // Dedicated loop counters (one per nesting depth) that body
        // statements can never assign, guaranteeing termination.
        for d in 0..=self.config.max_depth {
            self.line(&format!("int i{d};"));
        }
        for i in 0..self.config.locals {
            let init = self.rng.gen_range(-20..100);
            self.line(&format!("v{i} = {init};"));
        }
        // The input-consuming outer loop guarantees termination.
        self.line("c = getchar();");
        self.line("while (c != -1) {");
        self.indent += 1;
        let n = self.rng.gen_range(2..=self.config.max_stmts);
        for _ in 0..n {
            self.stmt(self.config.max_depth);
        }
        self.line("c = getchar();");
        self.indent -= 1;
        self.line("}");
        for i in 0..self.config.locals {
            self.line(&format!("putint(v{i});"));
        }
        self.line("putint(gsum);");
        let probe = self.rng.gen_range(0..ARRAY_SIZE);
        self.line(&format!("putint({ARRAY}[{probe}]);"));
        self.line("return 0;");
        self.out.push_str("}\n");
    }

    fn stmt(&mut self, depth: usize) {
        let choice = if depth == 0 {
            self.rng.gen_range(0..3)
        } else {
            self.rng.gen_range(0..8)
        };
        match choice {
            0 | 1 => {
                // assignment or increment/decrement
                let v = self.local();
                if self.rng.gen_bool(0.2) {
                    let op = ["++", "--"][self.rng.gen_range(0usize..2)];
                    if self.rng.gen_bool(0.5) {
                        self.line(&format!("{v}{op};"));
                    } else {
                        self.line(&format!("{op}{v};"));
                    }
                } else {
                    let e = self.expr(2);
                    let op = ["=", "+=", "-=", "*="][self.rng.gen_range(0usize..4)];
                    self.line(&format!("{v} {op} {e};"));
                }
            }
            2 => {
                // array update or global bump
                if self.rng.gen_bool(0.5) {
                    let idx = self.expr(1);
                    let e = self.expr(1);
                    self.line(&format!("{ARRAY}[({idx}) & {}] += {e};", ARRAY_SIZE - 1));
                } else {
                    let e = self.expr(1);
                    self.line(&format!("gsum += {e};"));
                }
            }
            3 | 4 => self.if_chain(depth),
            5 => self.switch_stmt(depth),
            6 => self.bounded_for(depth),
            _ => {
                // helper call
                let v = self.local();
                let e = self.expr(1);
                self.line(&format!("{v} = clamp({e}, -100, 100);"));
            }
        }
    }

    /// The bread and butter: an if/else-if chain comparing `c` (or a
    /// local) against constants — a reorderable sequence.
    fn if_chain(&mut self, depth: usize) {
        let subject = if self.rng.gen_bool(0.7) {
            "c".to_string()
        } else {
            self.local()
        };
        let arms = self.rng.gen_range(2..=5);
        let mut consts: Vec<i64> = Vec::new();
        for a in 0..arms {
            // Distinct constants keep ranges nonoverlapping.
            let k = loop {
                let k = self.rng.gen_range(-5i64..125);
                if !consts.contains(&k) {
                    break k;
                }
            };
            consts.push(k);
            let rel = match self.rng.gen_range(0..4) {
                0 => "==",
                1 => "<",
                2 => ">",
                _ => "==",
            };
            let kw = if a == 0 { "if" } else { "} else if" };
            self.line(&format!("{kw} ({subject} {rel} {k}) {{"));
            self.indent += 1;
            self.stmt(depth - 1);
            self.indent -= 1;
        }
        if self.rng.gen_bool(0.7) {
            self.line("} else {");
            self.indent += 1;
            self.stmt(depth - 1);
            self.indent -= 1;
        }
        self.line("}");
    }

    fn switch_stmt(&mut self, depth: usize) {
        let arms = self.rng.gen_range(3..=9);
        let dense = self.rng.gen_bool(0.5);
        self.line("switch (c) {");
        self.indent += 1;
        let mut used = Vec::new();
        for _ in 0..arms {
            let k = loop {
                let k = if dense {
                    self.rng.gen_range(90i64..110)
                } else {
                    self.rng.gen_range(0i64..1000) * 3
                };
                if !used.contains(&k) {
                    break k;
                }
            };
            used.push(k);
            self.line(&format!("case {k}:"));
            self.indent += 1;
            self.stmt(depth.saturating_sub(1));
            if self.rng.gen_bool(0.8) {
                self.line("break;");
            }
            self.indent -= 1;
        }
        if self.rng.gen_bool(0.6) {
            self.line("default:");
            self.indent += 1;
            self.stmt(depth.saturating_sub(1));
            self.indent -= 1;
        }
        self.indent -= 1;
        self.line("}");
    }

    fn bounded_for(&mut self, depth: usize) {
        let v = format!("i{depth}");
        let n = self.rng.gen_range(1..8);
        self.line(&format!("for ({v} = 0; {v} < {n}; {v} += 1) {{"));
        self.indent += 1;
        self.stmt(depth - 1);
        self.indent -= 1;
        self.line("}");
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.gen_range(0..4) {
                0 => format!("{}", self.rng.gen_range(-50..200)),
                1 => "c".to_string(),
                2 => self.local(),
                _ => format!("{ARRAY}[({}) & {}]", self.local(), ARRAY_SIZE - 1),
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.rng.gen_range(0..10) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / (({b}) | 1))"),
            4 => format!("({a} % (({b}) | 1))"),
            5 => format!("({a} & {b})"),
            6 => format!("({a} ^ {b})"),
            7 => format!("({a} < {b})"),
            8 => format!("({a} == {b} ? {a} : {b})"),
            _ => format!("(-({a}))"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_deterministic() {
        let cfg = SynthConfig::default();
        assert_eq!(generate_program(42, &cfg), generate_program(42, &cfg));
        assert_ne!(generate_program(1, &cfg), generate_program(2, &cfg));
    }

    #[test]
    fn generated_programs_compile() {
        let cfg = SynthConfig::default();
        for seed in 0..50 {
            let src = generate_program(seed, &cfg);
            br_minic::compile(&src, &br_minic::Options::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }
}
