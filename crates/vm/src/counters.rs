//! Per-function layout-visible counters, derived from the per-block
//! `[executions, taken]` frequencies a run records
//! ([`RunOutcome::block_counts`]).
//!
//! Block layout decides three dynamic costs the [`ExecStats`] totals only
//! report module-wide: taken branches (a transfer instead of a
//! fall-through), materialized unconditional jumps (a `Jump` or
//! not-taken branch whose successor is not adjacent), and unfilled
//! delay-slot stalls. This module reconstructs those per function, so a
//! layout change's win or regression can be attributed to the function
//! it touched — `brc` measurement output and the layout interaction
//! study both report these rows.

use br_ir::{Module, Terminator};

use crate::machine::{compute_layout, RunOutcome};
use crate::stats::ExecStats;

/// Layout-visible dynamic totals for one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionCounters {
    /// Function name, as in the module.
    pub name: String,
    /// Conditional branches that were taken (paid a control transfer).
    pub taken_branches: u64,
    /// Control transfers that fell through to the adjacent block for free
    /// (adjacent jumps and not-taken branches with an adjacent successor).
    pub fall_throughs: u64,
    /// Materialized unconditional jumps (non-adjacent jump targets and
    /// non-adjacent not-taken successors).
    pub uncond_jumps: u64,
    /// Executions of blocks whose delay slot could not be filled.
    pub delay_stalls: u64,
}

/// Derive per-function layout counters from a run's block frequencies.
///
/// `module` must be the module the run executed (same functions, same
/// block storage order); the derivation is exact — summing the rows
/// reproduces the corresponding [`ExecStats`] totals, which
/// [`function_counters`]'s unit test and the root `vm_equivalence` test
/// both pin.
pub fn function_counters(module: &Module, outcome: &RunOutcome) -> Vec<FunctionCounters> {
    let layout = compute_layout(module);
    module
        .functions
        .iter()
        .zip(&outcome.block_counts)
        .zip(&layout.unfilled_slot)
        .map(|((f, counts), unfilled)| {
            let mut c = FunctionCounters {
                name: f.name.clone(),
                taken_branches: 0,
                fall_throughs: 0,
                uncond_jumps: 0,
                delay_stalls: 0,
            };
            for (bi, (b, &[freq, taken])) in f.blocks.iter().zip(counts).enumerate() {
                if freq == 0 {
                    continue;
                }
                if unfilled[bi] {
                    c.delay_stalls += freq;
                }
                match &b.term {
                    Terminator::Branch { not_taken, .. } => {
                        c.taken_branches += taken;
                        let fell = freq - taken;
                        if not_taken.index() == bi + 1 {
                            c.fall_throughs += fell;
                        } else {
                            c.uncond_jumps += fell;
                        }
                    }
                    Terminator::Jump(t) => {
                        if t.index() == bi + 1 {
                            c.fall_throughs += freq;
                        } else {
                            c.uncond_jumps += freq;
                        }
                    }
                    Terminator::IndirectJump { .. } | Terminator::Return(_) => {}
                }
            }
            c
        })
        .collect()
}

/// Sanity cross-check: the per-function rows must sum to the run's
/// module-wide stats for the counters layout decides. Used by tests and
/// debug assertions; any divergence means `module` is not the module the
/// outcome was measured on.
pub fn counters_match_stats(rows: &[FunctionCounters], stats: &ExecStats) -> bool {
    let taken: u64 = rows.iter().map(|r| r.taken_branches).sum();
    let jumps: u64 = rows.iter().map(|r| r.uncond_jumps).sum();
    let stalls: u64 = rows.iter().map(|r| r.delay_stalls).sum();
    taken == stats.taken_branches && jumps == stats.uncond_jumps && stalls == stats.delay_stalls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{run, run_reference, VmOptions};
    use br_ir::{Cond, FuncBuilder, Operand, Terminator};

    /// Loop whose branch is mostly not-taken, with one non-adjacent jump.
    fn looped() -> Module {
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, 5i64, Cond::Ge, done, body);
        b.bin(body, br_ir::BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head)); // backwards: paid jump
        b.set_term(done, Terminator::Return(Some(Operand::Reg(i))));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        m
    }

    #[test]
    fn rows_sum_to_module_stats() {
        let m = looped();
        for out in [
            run(&m, b"", &VmOptions::default()).unwrap(),
            run_reference(&m, b"", &VmOptions::default()).unwrap(),
        ] {
            let rows = function_counters(&m, &out);
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].name, "main");
            // head's branch: 5 not-taken falls (body adjacent), 1 taken.
            assert_eq!(rows[0].taken_branches, 1);
            assert_eq!(rows[0].fall_throughs, 1 + 5, "entry jump + 5 falls");
            assert_eq!(rows[0].uncond_jumps, 5, "body's backward jumps");
            assert!(counters_match_stats(&rows, &out.stats));
        }
    }

    #[test]
    fn block_counts_record_frequencies() {
        let m = looped();
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        // entry once, head 6 (5 continues + exit), body 5, done once.
        assert_eq!(out.block_counts, vec![vec![[1, 0], [6, 1], [5, 0], [1, 0]]]);
    }
}
