//! The interpreter.

use br_ir::{Callee, Inst, Intrinsic, Module, Operand, Reg, Terminator};

use crate::predictor::{Predictor, PredictorConfig, PredictorResult};
use crate::stats::ExecStats;
use crate::trap::Trap;

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct VmOptions {
    /// Upper bound on executed blocks (runaway guard).
    pub max_steps: u64,
    /// Upper bound on call depth.
    pub max_call_depth: usize,
    /// Words of memory available for stack frames beyond the globals.
    pub stack_words: usize,
    /// Predictor configurations to simulate during the run (all updated
    /// from the same branch stream, so a single execution yields a whole
    /// sweep).
    pub predictors: Vec<PredictorConfig>,
    /// Instruction cost charged per indirect jump. SPARC needs roughly a
    /// table-address computation, a load, and the jump itself, so 3 is the
    /// default; bounds checks are explicit compare/branch code emitted by
    /// the front end and are counted on their own.
    pub indirect_jump_insts: u64,
    /// Capture the first N executed basic blocks as trace lines
    /// (`f0:b3`) in [`RunOutcome::trace`]. 0 disables tracing.
    pub trace_blocks: usize,
    /// Epoch length in executed blocks for [`run_hooked`]: once at least
    /// this many blocks have run since the last epoch, execution pauses
    /// at the next safe point (a profiled sequence head at call depth 1)
    /// and the hook runs. 0 disables epochs; plain [`run`] ignores this.
    pub epoch_blocks: u64,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            max_steps: 500_000_000,
            max_call_depth: 512,
            stack_words: 1 << 20,
            predictors: Vec::new(),
            indirect_jump_insts: 3,
            trace_blocks: 0,
            epoch_blocks: 0,
        }
    }
}

/// A callback driven by [`run_hooked`] at epoch boundaries.
///
/// The hook gets exclusive access to the module — the program is paused
/// at a sequence head, so replacing a sequence's ordering (rewriting the
/// head's terminator to a fresh replica) is safe: no frame on the stack
/// holds a position inside any sequence body. `profiles` are the live
/// cumulative counters of the current run.
pub trait EpochHook {
    /// Called at each epoch boundary. Return `true` if the module was
    /// mutated; the interpreter then recomputes its layout caches
    /// (branch addresses, delay-slot fillability) before resuming.
    fn on_epoch(&mut self, module: &mut Module, profiles: &mut [Vec<u64>]) -> bool;
}

/// Everything observed from one execution.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `main`'s return value.
    pub exit: i64,
    /// Bytes written through `putchar`/`putint`.
    pub output: Vec<u8>,
    /// Architectural event counts.
    pub stats: ExecStats,
    /// Profile counters: `profiles[seq][range]` executions, matching the
    /// module's [`br_ir::ProfilePlan`]s.
    pub profiles: Vec<Vec<u64>>,
    /// One result per requested predictor configuration.
    pub predictor_results: Vec<PredictorResult>,
    /// First `trace_blocks` executed blocks, as `fN:bM` lines.
    pub trace: Vec<String>,
    /// Per-block `[executions, taken]` frequencies, `[func][block]`.
    /// `taken` is nonzero only for blocks ending in a conditional branch.
    /// These are the edge profiles the layout pass (`br-layout`) scores
    /// against; [`crate::function_counters`] derives per-function
    /// taken-branch / fall-through / delay-stall totals from them.
    pub block_counts: Vec<Vec<[u64; 2]>>,
}

struct State<'m> {
    opts: &'m VmOptions,
    memory: Vec<i64>,
    frame_top: i64,
    input: &'m [u8],
    input_pos: usize,
    output: Vec<u8>,
    stats: ExecStats,
    profiles: Vec<Vec<u64>>,
    /// Per-block `[executions, taken]` frequencies, `[func][block]`;
    /// grown in place when an epoch hook appends blocks mid-run.
    block_counts: Vec<Vec<[u64; 2]>>,
    predictors: Vec<Predictor>,
    /// Static address of each block's terminator: `[func][block]`.
    branch_addrs: Vec<Vec<u64>>,
    /// Whether each block's delay slot is UNFILLED: `[func][block]`.
    /// A slot is fillable from above when the block carries at least one
    /// real instruction besides the compare feeding its own branch
    /// (profiling probes are not real instructions). This conservative
    /// approximation ignores filling from successors, which the paper
    /// notes often yields annulled (useless) slots anyway.
    unfilled_slot: Vec<Vec<bool>>,
    /// `(func, head)` of every profiled sequence: the safe points where
    /// an epoch may yield. Recomputed with the layout after a swap.
    plan_heads: Vec<(usize, br_ir::BlockId)>,
    /// Step count at which the next epoch is due (`u64::MAX` = never).
    next_epoch: u64,
    steps: u64,
    depth: usize,
    trace: Vec<String>,
}

/// How one [`exec_function`] activation ended.
enum Flow {
    /// The function returned this value.
    Done(i64),
    /// Execution paused for an epoch at block `at` (not yet executed);
    /// `regs`/`cc` are the live frame state needed to resume.
    Epoch {
        at: br_ir::BlockId,
        regs: Vec<i64>,
        cc: Option<(i64, i64)>,
    },
}

/// Saved frame state handed back to [`exec_function`] to resume `main`
/// after an epoch pause.
struct Resume {
    at: br_ir::BlockId,
    regs: Vec<i64>,
    cc: Option<(i64, i64)>,
}

/// Per-block static layout caches: terminator addresses for predictor
/// indexing and delay-slot fillability, both derived from storage order.
pub(crate) struct Layout {
    pub(crate) branch_addrs: Vec<Vec<u64>>,
    pub(crate) unfilled_slot: Vec<Vec<bool>>,
}

/// Compute the layout caches. Block storage order is treated as final
/// code layout, so this must be recomputed whenever blocks are added or
/// rewritten mid-run (an epoch hook swapping a sequence).
pub(crate) fn compute_layout(module: &Module) -> Layout {
    let mut branch_addrs = Vec::with_capacity(module.functions.len());
    let mut unfilled_slot = Vec::with_capacity(module.functions.len());
    let mut addr = 0u64;
    for f in &module.functions {
        let mut per_block = Vec::with_capacity(f.blocks.len());
        let mut per_block_slot = Vec::with_capacity(f.blocks.len());
        for b in &f.blocks {
            addr += b.insts.len() as u64;
            per_block.push(addr);
            addr += 1;
            let real: Vec<&Inst> = b
                .insts
                .iter()
                .filter(|i| !matches!(i, Inst::ProfileRanges { .. } | Inst::ProfileOutcomes { .. }))
                .collect();
            let fillable = match &b.term {
                Terminator::Branch { .. } => {
                    // The final compare feeds the branch and cannot sit
                    // in its own delay slot.
                    real.len() >= 2 || (real.len() == 1 && !matches!(real[0], Inst::Cmp { .. }))
                }
                _ => !real.is_empty(),
            };
            per_block_slot.push(!fillable);
        }
        branch_addrs.push(per_block);
        unfilled_slot.push(per_block_slot);
    }
    Layout {
        branch_addrs,
        unfilled_slot,
    }
}

/// The `(func, head)` pairs of every profile plan: the epoch-safe yield
/// points.
fn plan_heads(module: &Module) -> Vec<(usize, br_ir::BlockId)> {
    module
        .profile_plans
        .iter()
        .map(|p| (p.func.index(), p.head))
        .collect()
}

/// Execute the module's `main` function on `input`.
///
/// Block storage order is treated as final code layout for fall-through
/// accounting; run the layout pass (`br_opt::reposition`) first if the
/// module has not been laid out.
///
/// Dispatches through the pre-decoded fast path (see [`crate::Image`]):
/// the module is decoded once into a dense instruction stream and then
/// interpreted. The classic tree-walking interpreter is still available
/// as [`run_reference`] and remains the engine behind [`run_hooked`];
/// both paths produce identical outcomes (pinned by the root-level
/// `vm_equivalence` test). Callers that execute one module many times
/// should decode once with [`crate::Image::decode`] and call
/// [`crate::run_image`] directly to amortize the decode.
///
/// # Errors
///
/// Returns a [`Trap`] for abnormal termination: division by zero, memory
/// or jump-table violations, undefined condition codes, explicit `abort`,
/// or exceeded step/stack budgets.
pub fn run(module: &Module, input: &[u8], opts: &VmOptions) -> Result<RunOutcome, Trap> {
    crate::dispatch::run_image(&crate::dispatch::Image::decode(module), input, opts)
}

/// Execute the module's `main` with the classic tree-walking interpreter.
///
/// This is the original dispatch loop that re-reads the [`Module`]
/// structure on every step. It is kept as the independent oracle for the
/// fast path's equivalence test and as the baseline of the dispatch
/// benchmark; [`run_hooked`] also builds on it because epoch pauses need
/// the resumable frame machinery. Use [`run`] everywhere else.
///
/// # Errors
///
/// Returns a [`Trap`] exactly as [`run`] does.
pub fn run_reference(module: &Module, input: &[u8], opts: &VmOptions) -> Result<RunOutcome, Trap> {
    let main = module.main.ok_or(Trap::NoMain)?;
    let mut state = new_state(module, input, opts);
    state.next_epoch = u64::MAX; // plain runs never yield
    match exec_function(&mut state, module, main.index(), &[], None)? {
        Flow::Done(exit) => Ok(finish(exit, state)),
        Flow::Epoch { .. } => unreachable!("epochs are disabled in plain runs"),
    }
}

/// Execute the module's `main` like [`run`], pausing every
/// [`VmOptions::epoch_blocks`] executed blocks to let `hook` observe the
/// live profile counters and mutate the module (e.g. hot-swap a sequence
/// ordering).
///
/// Pauses happen only at *safe points*: a profiled sequence head reached
/// at call depth 1, checked before the head executes. A program that
/// never revisits a head at depth 1 simply never pauses. When the hook
/// reports a mutation, the interpreter recomputes its layout caches, so
/// fall-through and predictor-address accounting stay faithful to the
/// swapped code.
///
/// # Errors
///
/// Returns a [`Trap`] exactly as [`run`] does.
pub fn run_hooked(
    module: &mut Module,
    input: &[u8],
    opts: &VmOptions,
    hook: &mut dyn EpochHook,
) -> Result<RunOutcome, Trap> {
    let main = module.main.ok_or(Trap::NoMain)?;
    let mut state = new_state(module, input, opts);
    state.next_epoch = if opts.epoch_blocks > 0 {
        opts.epoch_blocks
    } else {
        u64::MAX
    };
    let mut resume: Option<Resume> = None;
    loop {
        match exec_function(&mut state, module, main.index(), &[], resume.take())? {
            Flow::Done(exit) => return Ok(finish(exit, state)),
            Flow::Epoch { at, regs, cc } => {
                if hook.on_epoch(module, &mut state.profiles) {
                    let layout = compute_layout(module);
                    state.branch_addrs = layout.branch_addrs;
                    state.unfilled_slot = layout.unfilled_slot;
                    state.plan_heads = plan_heads(module);
                    // A swap may have appended replica blocks (or whole
                    // functions); their counters start at zero.
                    state
                        .block_counts
                        .resize_with(module.functions.len(), Vec::new);
                    for (counts, f) in state.block_counts.iter_mut().zip(&module.functions) {
                        counts.resize(f.blocks.len(), [0u64; 2]);
                    }
                }
                state.next_epoch = state.steps.saturating_add(opts.epoch_blocks.max(1));
                resume = Some(Resume { at, regs, cc });
            }
        }
    }
}

fn new_state<'m>(module: &Module, input: &'m [u8], opts: &'m VmOptions) -> State<'m> {
    let globals_end = module.globals_end();
    let mut memory = vec![0i64; globals_end as usize + opts.stack_words];
    for g in &module.globals {
        let at = g.addr as usize;
        memory[at..at + g.init.len()].copy_from_slice(&g.init);
    }
    // Assign each block terminator a static address: cumulative instruction
    // offsets in storage (= layout) order, so predictor aliasing resembles
    // real code addresses.
    let layout = compute_layout(module);
    State {
        opts,
        memory,
        frame_top: globals_end,
        input,
        input_pos: 0,
        output: Vec::new(),
        stats: ExecStats::new(),
        profiles: module
            .profile_plans
            .iter()
            .map(|p| vec![0; p.counter_count()])
            .collect(),
        block_counts: module
            .functions
            .iter()
            .map(|f| vec![[0u64; 2]; f.blocks.len()])
            .collect(),
        predictors: opts.predictors.iter().map(|&c| Predictor::new(c)).collect(),
        branch_addrs: layout.branch_addrs,
        unfilled_slot: layout.unfilled_slot,
        plan_heads: plan_heads(module),
        next_epoch: u64::MAX,
        steps: 0,
        depth: 0,
        trace: Vec::new(),
    }
}

fn finish(exit: i64, state: State<'_>) -> RunOutcome {
    RunOutcome {
        exit,
        output: state.output,
        stats: state.stats,
        profiles: state.profiles,
        predictor_results: state.predictors.iter().map(Predictor::result).collect(),
        trace: state.trace,
        block_counts: state.block_counts,
    }
}

fn operand(regs: &[i64], op: Operand) -> i64 {
    match op {
        Operand::Reg(Reg(r)) => regs[r as usize],
        Operand::Imm(i) => i,
    }
}

fn exec_function(
    state: &mut State<'_>,
    module: &Module,
    func: usize,
    args: &[i64],
    resume: Option<Resume>,
) -> Result<Flow, Trap> {
    if state.depth >= state.opts.max_call_depth {
        return Err(Trap::StackOverflow { depth: state.depth });
    }
    state.depth += 1;
    let f = &module.functions[func];
    let frame_base = state.frame_top;
    if frame_base as usize + f.frame_size as usize > state.memory.len() {
        return Err(Trap::StackOverflow { depth: state.depth });
    }
    state.frame_top += f.frame_size as i64;

    let (mut regs, mut cur, mut cc) = match resume {
        Some(r) => {
            // Resuming after an epoch pause: the frame's memory is
            // untouched (no zeroing), registers are restored — resized,
            // since a hook swap may have grown the register file.
            let mut regs = r.regs;
            regs.resize(f.num_regs as usize, 0);
            (regs, r.at, r.cc)
        }
        None => {
            // Local arrays start zeroed on every activation.
            for w in
                &mut state.memory[frame_base as usize..(frame_base + f.frame_size as i64) as usize]
            {
                *w = 0;
            }
            let mut regs = vec![0i64; f.num_regs as usize];
            for (reg, val) in f.param_regs.iter().zip(args) {
                regs[reg.0 as usize] = *val;
            }
            (regs, f.entry, None)
        }
    };

    let result = 'run: loop {
        // Epoch pause: only at call depth 1, only at a profiled sequence
        // head, and checked *before* the head executes — resuming never
        // double-counts a step, probe, or stat.
        if state.steps >= state.next_epoch
            && state.depth == 1
            && state
                .plan_heads
                .iter()
                .any(|&(pf, pb)| pf == func && pb == cur)
        {
            break 'run Ok(Flow::Epoch { at: cur, regs, cc });
        }
        state.steps += 1;
        if state.steps > state.opts.max_steps {
            break 'run Err(Trap::StepLimitExceeded {
                limit: state.opts.max_steps,
            });
        }
        if state.trace.len() < state.opts.trace_blocks {
            state.trace.push(format!("f{func}:{cur}"));
        }
        state.block_counts[func][cur.index()][0] += 1;
        let block = &f.blocks[cur.index()];
        for inst in &block.insts {
            match inst {
                Inst::Copy { dst, src } => {
                    state.stats.insts += 1;
                    regs[dst.0 as usize] = operand(&regs, *src);
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    state.stats.insts += 1;
                    let a = operand(&regs, *lhs);
                    let b = operand(&regs, *rhs);
                    match op.eval(a, b) {
                        Some(v) => regs[dst.0 as usize] = v,
                        None => break 'run Err(Trap::DivideByZero),
                    }
                }
                Inst::Un { op, dst, src } => {
                    state.stats.insts += 1;
                    regs[dst.0 as usize] = op.eval(operand(&regs, *src));
                }
                Inst::Cmp { lhs, rhs } => {
                    state.stats.insts += 1;
                    state.stats.compares += 1;
                    cc = Some((operand(&regs, *lhs), operand(&regs, *rhs)));
                }
                Inst::Load { dst, base, index } => {
                    state.stats.insts += 1;
                    state.stats.loads += 1;
                    let addr = operand(&regs, *base).wrapping_add(operand(&regs, *index));
                    if addr < 0 || addr as usize >= state.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    regs[dst.0 as usize] = state.memory[addr as usize];
                }
                Inst::Store { base, index, src } => {
                    state.stats.insts += 1;
                    state.stats.stores += 1;
                    let addr = operand(&regs, *base).wrapping_add(operand(&regs, *index));
                    if addr < 0 || addr as usize >= state.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    state.memory[addr as usize] = operand(&regs, *src);
                }
                Inst::FrameAddr { dst, offset } => {
                    state.stats.insts += 1;
                    regs[dst.0 as usize] = frame_base + *offset as i64;
                }
                Inst::Call { dst, callee, args } => {
                    state.stats.insts += 1;
                    state.stats.calls += 1;
                    cc = None; // calls clobber the condition codes
                    let vals: Vec<i64> = args.iter().map(|a| operand(&regs, *a)).collect();
                    let ret = match callee {
                        Callee::Intrinsic(i) => match exec_intrinsic(state, *i, &vals) {
                            Ok(v) => v,
                            Err(t) => break 'run Err(t),
                        },
                        Callee::Func(fid) => {
                            match exec_function(state, module, fid.index(), &vals, None) {
                                Ok(Flow::Done(v)) => v,
                                Ok(Flow::Epoch { .. }) => {
                                    unreachable!("epochs only pause at call depth 1")
                                }
                                Err(t) => break 'run Err(t),
                            }
                        }
                    };
                    if let Some(d) = dst {
                        regs[d.0 as usize] = ret;
                    }
                }
                Inst::ProfileRanges { seq, var } => {
                    // Profiling probes are architecturally free.
                    let v = regs[var.0 as usize];
                    let plan = &module.profile_plans[seq.index()];
                    if let Some(idx) = plan.range_containing(v) {
                        state.profiles[seq.index()][idx] += 1;
                    }
                }
                Inst::ProfileOutcomes { seq, conds } => {
                    // Joint-outcome probe: evaluate every (pure) compare
                    // and bump the counter for the outcome bitmask.
                    let mut mask = 0usize;
                    for (i, (lhs, rhs, cond)) in conds.iter().enumerate() {
                        if cond.eval(operand(&regs, *lhs), operand(&regs, *rhs)) {
                            mask |= 1 << i;
                        }
                    }
                    state.profiles[seq.index()][mask] += 1;
                }
            }
        }
        if state.unfilled_slot[func][cur.index()] {
            state.stats.delay_stalls += 1;
        }
        match &block.term {
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                state.stats.insts += 1;
                state.stats.cond_branches += 1;
                let Some((l, r)) = cc else {
                    break 'run Err(Trap::UndefinedConditionCodes);
                };
                let is_taken = cond.eval(l, r);
                let addr = state.branch_addrs[func][cur.index()];
                for p in &mut state.predictors {
                    p.record(addr, is_taken);
                }
                if is_taken {
                    state.stats.taken_branches += 1;
                    state.block_counts[func][cur.index()][1] += 1;
                    cur = *taken;
                } else {
                    // A not-taken branch falls through; if the layout
                    // does not place `not_taken` next, an unconditional
                    // jump materializes.
                    if not_taken.index() != cur.index() + 1 {
                        state.stats.insts += 1;
                        state.stats.uncond_jumps += 1;
                    }
                    cur = *not_taken;
                }
            }
            Terminator::Jump(t) => {
                if t.index() != cur.index() + 1 {
                    state.stats.insts += 1;
                    state.stats.uncond_jumps += 1;
                }
                cur = *t;
            }
            Terminator::IndirectJump { index, targets } => {
                state.stats.insts += state.opts.indirect_jump_insts;
                state.stats.indirect_jumps += 1;
                let v = regs[index.0 as usize];
                if v < 0 || v as usize >= targets.len() {
                    break 'run Err(Trap::IndirectJumpOutOfBounds {
                        index: v,
                        table_len: targets.len(),
                    });
                }
                cur = targets[v as usize];
            }
            Terminator::Return(v) => {
                state.stats.insts += 1;
                state.stats.returns += 1;
                break 'run Ok(Flow::Done(v.map(|op| operand(&regs, op)).unwrap_or(0)));
            }
        }
    };
    state.frame_top = frame_base;
    state.depth -= 1;
    result
}

fn exec_intrinsic(state: &mut State<'_>, i: Intrinsic, args: &[i64]) -> Result<i64, Trap> {
    intrinsic_step(
        i,
        args,
        state.input,
        &mut state.input_pos,
        &mut state.output,
    )
}

/// One intrinsic call against raw I/O state; shared by the classic
/// interpreter and the pre-decoded fast path so the two cannot drift.
pub(crate) fn intrinsic_step(
    i: Intrinsic,
    args: &[i64],
    input: &[u8],
    input_pos: &mut usize,
    output: &mut Vec<u8>,
) -> Result<i64, Trap> {
    match i {
        Intrinsic::GetChar => {
            if *input_pos < input.len() {
                let c = input[*input_pos];
                *input_pos += 1;
                Ok(c as i64)
            } else {
                Ok(-1)
            }
        }
        Intrinsic::PutChar => {
            output.push(args[0] as u8);
            Ok(args[0])
        }
        Intrinsic::PutInt => {
            output.extend_from_slice(args[0].to_string().as_bytes());
            output.push(b'\n');
            Ok(args[0])
        }
        Intrinsic::Abort => Err(Trap::Abort { code: args[0] }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder, Module};

    fn module_of(f: br_ir::Function) -> Module {
        let mut m = Module::new();
        m.main = Some(m.add_function(f));
        m
    }

    /// `main` that sums 1..=n via a loop; checks counts and exit value.
    fn loop_sum(n: i64) -> Module {
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let acc = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, acc, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, n, Cond::Ge, done, body);
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.bin(body, BinOp::Add, acc, acc, i);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(acc))));
        module_of(b.finish())
    }

    #[test]
    fn sum_loop_computes_and_counts() {
        let m = loop_sum(10);
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.exit, 55);
        // Branch executes 11 times (10 continues + 1 exit).
        assert_eq!(out.stats.cond_branches, 11);
        assert_eq!(out.stats.taken_branches, 1);
        assert_eq!(out.stats.compares, 11);
        assert_eq!(out.stats.returns, 1);
    }

    #[test]
    fn fallthrough_jumps_are_free() {
        // entry jumps to next block (free) and then to a far block (paid).
        let mut b = FuncBuilder::new("main");
        let e = b.entry();
        let nxt = b.new_block();
        let far = b.new_block();
        let mid = b.new_block();
        b.set_term(e, Terminator::Jump(nxt)); // adjacent: free
        b.set_term(nxt, Terminator::Jump(mid)); // skips far: paid
        b.set_term(mid, Terminator::Jump(far)); // backwards: paid
        b.set_term(far, Terminator::Return(None));
        let m = module_of(b.finish());
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.stats.uncond_jumps, 2);
        assert_eq!(out.stats.insts, 2 + 1); // two jumps + return
    }

    #[test]
    fn not_taken_branch_to_non_adjacent_block_pays_a_jump() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let far = b.new_block();
        let target = b.new_block();
        b.copy(e, x, 1i64);
        b.cmp_branch(e, x, 0i64, Cond::Eq, far, target); // not taken, non-adjacent
        b.set_term(far, Terminator::Return(None));
        b.set_term(target, Terminator::Return(None));
        let m = module_of(b.finish());
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.stats.cond_branches, 1);
        assert_eq!(out.stats.taken_branches, 0);
        assert_eq!(out.stats.uncond_jumps, 1);
    }

    #[test]
    fn io_round_trip() {
        let mut b = FuncBuilder::new("main");
        let c = b.new_reg();
        let e = b.entry();
        let body = b.new_block();
        let done = b.new_block();
        b.set_term(e, Terminator::Jump(body));
        b.push(
            body,
            Inst::Call {
                dst: Some(c),
                callee: Callee::Intrinsic(Intrinsic::GetChar),
                args: vec![],
            },
        );
        b.cmp(body, c, -1i64);
        let echo = echo_block(&mut b, c, body);
        b.set_term(body, Terminator::branch(Cond::Eq, done, echo));
        b.set_term(done, Terminator::Return(Some(Operand::Imm(0))));
        let m = module_of(b.finish());
        let out = run(&m, b"hi!", &VmOptions::default()).unwrap();
        assert_eq!(out.output, b"hi!");
    }

    /// Helper: builds an echo block that putchars `c` then jumps to `back`.
    fn echo_block(b: &mut FuncBuilder, c: br_ir::Reg, back: br_ir::BlockId) -> br_ir::BlockId {
        let echo = b.new_block();
        b.push(
            echo,
            Inst::Call {
                dst: None,
                callee: Callee::Intrinsic(Intrinsic::PutChar),
                args: vec![Operand::Reg(c)],
            },
        );
        b.set_term(echo, Terminator::Jump(back));
        echo
    }

    #[test]
    fn getchar_returns_minus_one_at_eof() {
        let mut b = FuncBuilder::new("main");
        let c = b.new_reg();
        let e = b.entry();
        b.push(
            e,
            Inst::Call {
                dst: Some(c),
                callee: Callee::Intrinsic(Intrinsic::GetChar),
                args: vec![],
            },
        );
        b.set_term(e, Terminator::Return(Some(Operand::Reg(c))));
        let m = module_of(b.finish());
        assert_eq!(run(&m, b"", &VmOptions::default()).unwrap().exit, -1);
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        b.bin(e, BinOp::Div, x, 1i64, 0i64);
        b.set_term(e, Terminator::Return(None));
        let m = module_of(b.finish());
        assert_eq!(
            run(&m, b"", &VmOptions::default()).unwrap_err(),
            Trap::DivideByZero
        );
    }

    #[test]
    fn memory_bounds_trap() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        b.load(e, x, -5i64, 0i64);
        b.set_term(e, Terminator::Return(None));
        let m = module_of(b.finish());
        assert!(matches!(
            run(&m, b"", &VmOptions::default()),
            Err(Trap::MemoryOutOfBounds { .. })
        ));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = FuncBuilder::new("main");
        let e = b.entry();
        b.set_term(e, Terminator::Jump(e));
        let m = module_of(b.finish());
        let opts = VmOptions {
            max_steps: 1000,
            ..VmOptions::default()
        };
        assert!(matches!(
            run(&m, b"", &opts),
            Err(Trap::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut m = Module::new();
        let mut callee = FuncBuilder::new("double");
        let x = callee.new_reg();
        callee.set_param_regs(vec![x]);
        let e = callee.entry();
        callee.bin(e, BinOp::Add, x, x, x);
        callee.set_term(e, Terminator::Return(Some(Operand::Reg(x))));
        let callee_id = m.add_function(callee.finish());

        let mut main = FuncBuilder::new("main");
        let r = main.new_reg();
        let e = main.entry();
        main.push(
            e,
            Inst::Call {
                dst: Some(r),
                callee: Callee::Func(callee_id),
                args: vec![Operand::Imm(21)],
            },
        );
        main.set_term(e, Terminator::Return(Some(Operand::Reg(r))));
        m.main = Some(m.add_function(main.finish()));
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.exit, 42);
        assert_eq!(out.stats.calls, 1);
        assert_eq!(out.stats.returns, 2);
    }

    #[test]
    fn frames_are_zeroed_per_activation() {
        // callee writes to its frame; second call must still see zeros.
        let mut m = Module::new();
        let mut callee = FuncBuilder::new("probe");
        let addr = callee.new_reg();
        let v = callee.new_reg();
        let slot = callee.alloc_frame(1);
        let e = callee.entry();
        callee.push(
            e,
            Inst::FrameAddr {
                dst: addr,
                offset: slot,
            },
        );
        callee.load(e, v, addr, 0i64);
        callee.store(e, addr, 0i64, 99i64);
        callee.set_term(e, Terminator::Return(Some(Operand::Reg(v))));
        let callee_id = m.add_function(callee.finish());

        let mut main = FuncBuilder::new("main");
        let a = main.new_reg();
        let b2 = main.new_reg();
        let s = main.new_reg();
        let e = main.entry();
        for dst in [a, b2] {
            main.push(
                e,
                Inst::Call {
                    dst: Some(dst),
                    callee: Callee::Func(callee_id),
                    args: vec![],
                },
            );
        }
        main.bin(e, BinOp::Add, s, a, b2);
        main.set_term(e, Terminator::Return(Some(Operand::Reg(s))));
        m.main = Some(m.add_function(main.finish()));
        assert_eq!(run(&m, b"", &VmOptions::default()).unwrap().exit, 0);
    }

    #[test]
    fn indirect_jump_dispatches_and_costs() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let t0 = b.new_block();
        let t1 = b.new_block();
        b.copy(e, x, 1i64);
        b.set_term(
            e,
            Terminator::IndirectJump {
                index: x,
                targets: vec![t0, t1],
            },
        );
        b.set_term(t0, Terminator::Return(Some(Operand::Imm(0))));
        b.set_term(t1, Terminator::Return(Some(Operand::Imm(1))));
        let m = module_of(b.finish());
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.exit, 1);
        assert_eq!(out.stats.indirect_jumps, 1);
        // copy + 3 (ijmp) + return
        assert_eq!(out.stats.insts, 1 + 3 + 1);
    }

    #[test]
    fn indirect_jump_bounds_trap() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let t0 = b.new_block();
        b.copy(e, x, 7i64);
        b.set_term(
            e,
            Terminator::IndirectJump {
                index: x,
                targets: vec![t0],
            },
        );
        b.set_term(t0, Terminator::Return(None));
        let m = module_of(b.finish());
        assert!(matches!(
            run(&m, b"", &VmOptions::default()),
            Err(Trap::IndirectJumpOutOfBounds { .. })
        ));
    }

    #[test]
    fn profiling_probe_counts_without_cost() {
        use br_ir::SeqId;
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        b.copy(e, x, 42i64);
        b.push(
            e,
            Inst::ProfileRanges {
                seq: SeqId(0),
                var: x,
            },
        );
        b.set_term(e, Terminator::Return(None));
        let mut m = module_of(b.finish());
        m.add_profile_plan(br_ir::ProfilePlan {
            func: br_ir::FuncId(0),
            head: br_ir::BlockId(0),
            kind: br_ir::PlanKind::Ranges(vec![(i64::MIN, 9), (10, 99), (100, i64::MAX)]),
        });
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.profiles, vec![vec![0, 1, 0]]);
        assert_eq!(out.stats.insts, 2); // copy + ret; probe is free
    }

    #[test]
    fn predictors_observe_branches() {
        use crate::predictor::{PredictorConfig, Scheme};
        let m = loop_sum(100);
        let opts = VmOptions {
            predictors: vec![
                PredictorConfig {
                    scheme: Scheme::TwoBit,
                    entries: 64,
                },
                PredictorConfig {
                    scheme: Scheme::OneBit,
                    entries: 64,
                },
            ],
            ..VmOptions::default()
        };
        let out = run(&m, b"", &opts).unwrap();
        assert_eq!(out.predictor_results.len(), 2);
        for r in &out.predictor_results {
            assert_eq!(r.predictions, out.stats.cond_branches);
            // Highly-biased loop branch: very few misses.
            assert!(r.mispredictions <= 3, "{:?}", r);
        }
    }

    #[test]
    fn no_main_is_an_error() {
        let m = Module::new();
        assert_eq!(
            run(&m, b"", &VmOptions::default()).unwrap_err(),
            Trap::NoMain
        );
    }
}

#[cfg(test)]
mod epoch_tests {
    use super::*;
    use br_ir::{BinOp, BlockId, Cond, FuncBuilder, Operand};

    /// `main`: loop body putchars `A` `n` times; the loop head carries a
    /// [`Inst::ProfileRanges`] probe, making it an epoch-safe point.
    fn probed_loop(n: i64) -> Module {
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.push(
            head,
            Inst::ProfileRanges {
                seq: br_ir::SeqId(0),
                var: i,
            },
        );
        b.cmp_branch(head, i, n, Cond::Ge, done, body);
        b.push(
            body,
            Inst::Call {
                dst: None,
                callee: Callee::Intrinsic(Intrinsic::PutChar),
                args: vec![Operand::Imm(b'A' as i64)],
            },
        );
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(i))));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        m.add_profile_plan(br_ir::ProfilePlan {
            func: br_ir::FuncId(0),
            head: BlockId(1),
            kind: br_ir::PlanKind::Ranges(vec![(i64::MIN, i64::MAX)]),
        });
        m
    }

    struct Counting {
        calls: u64,
        last_count: u64,
    }

    impl EpochHook for Counting {
        fn on_epoch(&mut self, _module: &mut Module, profiles: &mut [Vec<u64>]) -> bool {
            self.calls += 1;
            // Counters are cumulative and live.
            assert!(profiles[0][0] >= self.last_count);
            self.last_count = profiles[0][0];
            false
        }
    }

    #[test]
    fn noop_hook_matches_plain_run_exactly() {
        let m = probed_loop(200);
        let plain = run(&m, b"", &VmOptions::default()).unwrap();
        let mut hooked_m = m.clone();
        let opts = VmOptions {
            epoch_blocks: 16,
            ..VmOptions::default()
        };
        let mut hook = Counting {
            calls: 0,
            last_count: 0,
        };
        let hooked = run_hooked(&mut hooked_m, b"", &opts, &mut hook).unwrap();
        assert!(
            hook.calls > 3,
            "expected several epochs, got {}",
            hook.calls
        );
        assert_eq!(hooked.exit, plain.exit);
        assert_eq!(hooked.output, plain.output);
        assert_eq!(hooked.stats, plain.stats, "pausing must be free");
        assert_eq!(hooked.profiles, plain.profiles);
    }

    #[test]
    fn epochs_disabled_means_no_pauses() {
        let mut m = probed_loop(100);
        let mut hook = Counting {
            calls: 0,
            last_count: 0,
        };
        run_hooked(&mut m, b"", &VmOptions::default(), &mut hook).unwrap();
        assert_eq!(hook.calls, 0);
    }

    /// Swaps the putchar'd byte at the first epoch: the mutation must be
    /// visible to the resumed program, with state carried across.
    struct Swapper {
        swapped: bool,
    }

    impl EpochHook for Swapper {
        fn on_epoch(&mut self, module: &mut Module, _profiles: &mut [Vec<u64>]) -> bool {
            if self.swapped {
                return false;
            }
            self.swapped = true;
            let body = module.function_mut(br_ir::FuncId(0)).block_mut(BlockId(2));
            for inst in &mut body.insts {
                if let Inst::Call { args, .. } = inst {
                    args[0] = Operand::Imm(b'B' as i64);
                }
            }
            true
        }
    }

    #[test]
    fn mid_run_mutation_takes_effect_and_resumes_cleanly() {
        let mut m = probed_loop(100);
        let opts = VmOptions {
            epoch_blocks: 64,
            ..VmOptions::default()
        };
        let mut hook = Swapper { swapped: false };
        let out = run_hooked(&mut m, b"", &opts, &mut hook).unwrap();
        assert!(hook.swapped);
        assert_eq!(out.exit, 100, "loop counter survived the pause");
        assert_eq!(out.output.len(), 100);
        let a = out.output.iter().filter(|&&c| c == b'A').count();
        let b = out.output.iter().filter(|&&c| c == b'B').count();
        assert!(a > 0 && b > 0, "swap must land mid-run: {a} As, {b} Bs");
        assert_eq!(out.profiles[0][0], 101, "probes keep counting after a swap");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder};

    #[test]
    fn tracing_captures_block_order_up_to_the_limit() {
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, 3i64, Cond::Ge, done, body);
        b.bin(body, br_ir::BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(None));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        let opts = VmOptions {
            trace_blocks: 5,
            ..VmOptions::default()
        };
        let out = run(&m, b"", &opts).unwrap();
        assert_eq!(out.trace, vec!["f0:b0", "f0:b1", "f0:b2", "f0:b1", "f0:b2"]);
        // Tracing off by default.
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert!(out.trace.is_empty());
    }
}

#[cfg(test)]
mod delay_slot_tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder};

    #[test]
    fn bare_compare_branch_blocks_stall() {
        // Block holding only its cmp: the branch's delay slot cannot be
        // filled from above.
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let t = b.new_block();
        let n = b.new_block();
        b.copy(e, x, 1i64); // entry has a fillable slot
        b.cmp_branch(e, x, 0i64, Cond::Eq, t, n);
        b.set_term(t, Terminator::Return(None)); // empty: stalls
        b.set_term(n, Terminator::Return(None)); // empty: stalls
                                                 // Wait: entry has copy + cmp -> fillable. The taken return block
                                                 // is empty -> stall.
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        // entry fillable (copy besides cmp); the executed return block
        // is empty and stalls.
        assert_eq!(out.stats.delay_stalls, 1);
    }

    #[test]
    fn filled_slots_do_not_stall() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let done = b.new_block();
        b.copy(e, x, 5i64);
        b.bin(e, BinOp::Add, x, x, 1i64);
        b.cmp_branch(e, x, 0i64, Cond::Eq, done, done);
        b.bin(done, BinOp::Add, x, x, 1i64); // return slot fillable
        b.set_term(done, Terminator::Return(Some(Operand::Reg(x))));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.stats.delay_stalls, 0);
    }

    #[test]
    fn lone_cmp_cannot_fill_its_own_branch_slot() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, t, t); // only the cmp: stalls
        b.copy(t, x, 1i64);
        b.set_term(t, Terminator::Return(Some(Operand::Reg(x))));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        let out = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(out.stats.delay_stalls, 1, "cmp+branch only: unfillable");
    }
}
