//! Dynamic event counters, the analogue of the paper's `ease` measurements.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Exact dynamic event counts for one execution.
///
/// `insts` is the headline "dynamic number of instructions" of the paper's
/// Table 4. It includes every architectural instruction: ALU ops, compares,
/// loads/stores, calls, returns, conditional branches, *materialized*
/// unconditional jumps (jumps to the fall-through block are free), and the
/// instructions of an indirect jump through a table. Profiling probes are
/// never counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total dynamic instructions.
    pub insts: u64,
    /// Conditional branch instructions executed.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Unconditional jumps executed (non-fall-through only).
    pub uncond_jumps: u64,
    /// Indirect jumps executed (each costs several instructions; see
    /// [`crate::VmOptions::indirect_jump_insts`]).
    pub indirect_jumps: u64,
    /// Compare instructions executed.
    pub compares: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Calls executed (functions and intrinsics).
    pub calls: u64,
    /// Returns executed.
    pub returns: u64,
    /// Control transfers executed whose branch delay slot could not be
    /// filled from above (see the `timing` module: SPARC branches carry
    /// one delay slot; an unfillable slot wastes a cycle as a nop).
    pub delay_stalls: u64,
}

impl ExecStats {
    /// Zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Percentage change of `self.insts` relative to `baseline`
    /// (negative = fewer instructions, as reported in the paper's tables).
    pub fn insts_pct_change(&self, baseline: &ExecStats) -> f64 {
        pct_change(self.insts, baseline.insts)
    }

    /// Percentage change of conditional branches relative to `baseline`.
    pub fn branches_pct_change(&self, baseline: &ExecStats) -> f64 {
        pct_change(self.cond_branches, baseline.cond_branches)
    }
}

/// `100 * (new - old) / old`. A zero baseline is made explicit rather
/// than silently reported as "no change": the result is `0.0` only when
/// both are zero, and [`f64::INFINITY`] when `old == 0` but `new > 0`
/// (growth from nothing has no finite percentage).
pub fn pct_change(new: u64, old: u64) -> f64 {
    if old == 0 {
        if new == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new as f64 - old as f64) / old as f64 * 100.0
    }
}

impl Add for ExecStats {
    type Output = ExecStats;

    fn add(mut self, rhs: ExecStats) -> ExecStats {
        self += rhs;
        self
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.insts += rhs.insts;
        self.cond_branches += rhs.cond_branches;
        self.taken_branches += rhs.taken_branches;
        self.uncond_jumps += rhs.uncond_jumps;
        self.indirect_jumps += rhs.indirect_jumps;
        self.compares += rhs.compares;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.calls += rhs.calls;
        self.returns += rhs.returns;
        self.delay_stalls += rhs.delay_stalls;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insts={} branches={} (taken {}) jumps={} ijmps={} cmps={} ld={} st={} call={} ret={} stalls={}",
            self.insts,
            self.cond_branches,
            self.taken_branches,
            self.uncond_jumps,
            self.indirect_jumps,
            self.compares,
            self.loads,
            self.stores,
            self.calls,
            self.returns,
            self.delay_stalls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_change_signs() {
        assert_eq!(pct_change(90, 100), -10.0);
        assert!((pct_change(110, 100) - 10.0).abs() < 1e-9);
        assert_eq!(pct_change(0, 0), 0.0);
        assert_eq!(
            pct_change(5, 0),
            f64::INFINITY,
            "growth from a zero baseline must not read as no change"
        );
    }

    #[test]
    fn stats_add_is_fieldwise() {
        let a = ExecStats {
            insts: 10,
            cond_branches: 2,
            ..ExecStats::default()
        };
        let b = ExecStats {
            insts: 5,
            loads: 3,
            ..ExecStats::default()
        };
        let c = a + b;
        assert_eq!(c.insts, 15);
        assert_eq!(c.cond_branches, 2);
        assert_eq!(c.loads, 3);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = format!("{}", ExecStats::default());
        for key in ["insts", "branches", "jumps", "ijmps", "cmps"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
