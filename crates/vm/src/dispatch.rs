//! Pre-decoded fast dispatch.
//!
//! [`crate::run`] used to walk the [`br_ir::Module`] directly: every
//! executed instruction re-matched [`br_ir::Operand`] wrappers, re-indexed
//! two layout side tables per block, and bumped several statistics
//! counters through memory. For a paper-scale sweep (17 workloads × three
//! heuristic sets × train + measure runs) that dispatch overhead is the
//! dominant cost of the whole repository, so this module decodes a module
//! once into a dense, execution-oriented [`Image`] and interprets that
//! instead.
//!
//! Decoding resolves everything that is static per run:
//!
//! * operands become copyable [`Src`] values (register index or immediate);
//! * per-block architectural costs of the straight-line body (instruction,
//!   compare, load, store, and call counts) are summed once at decode time
//!   and added in one step when the block executes;
//! * fall-through facts (`is this jump adjacent in layout order?`), branch
//!   addresses for predictor indexing, and delay-slot fillability move
//!   from side-table lookups into the block record itself;
//! * profiling probes carry their resolved range tables.
//!
//! The decoded image is immutable and independent of the source module,
//! so one image can serve many runs over different inputs — exactly the
//! shape of a training or measurement loop.
//!
//! Equivalence with the classic interpreter ([`crate::run_reference`],
//! which still backs [`crate::run_hooked`]) is part of the contract:
//! identical [`crate::RunOutcome`]s — exit value, output bytes, statistic
//! counters, profile counters, predictor results, and trace — and
//! identical [`Trap`]s. Batching a block's static body costs at block
//! entry rather than per instruction is observable only through a
//! [`RunOutcome`], and a trap discards the outcome entirely, so the
//! reordering cannot be distinguished. The root-level `vm_equivalence`
//! test pins this across every workload × heuristic set, and
//! `crates/bench/benches/dispatch.rs` tracks the speedup.

use br_ir::{BinOp, Callee, Cond, Inst, Intrinsic, Module, Operand, PlanKind, Terminator, UnOp};

use crate::machine::{intrinsic_step, RunOutcome, VmOptions};
use crate::predictor::Predictor;
use crate::stats::ExecStats;
use crate::trap::Trap;

/// A resolved operand: either a register index or an immediate.
#[derive(Clone, Copy, Debug)]
enum Src {
    Reg(u32),
    Imm(i64),
}

fn decode_src(op: Operand) -> Src {
    match op {
        Operand::Reg(r) => Src::Reg(r.0),
        Operand::Imm(i) => Src::Imm(i),
    }
}

#[inline(always)]
fn src(regs: &[i64], s: Src) -> i64 {
    match s {
        Src::Reg(r) => regs[r as usize],
        Src::Imm(i) => i,
    }
}

/// A pre-decoded straight-line instruction.
///
/// The hottest shapes get dedicated variants with the operand kinds
/// resolved into the opcode itself (`CopyReg` vs `CopyImm`, register /
/// immediate `Bin` forms), so the interpreter's per-operand `Src` match —
/// a data-dependent branch in the hottest loop — disappears for them.
#[derive(Clone, Debug)]
enum Op {
    CopyReg {
        dst: u32,
        src: u32,
    },
    CopyImm {
        dst: u32,
        imm: i64,
    },
    BinRR {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinRI {
        op: BinOp,
        dst: u32,
        lhs: u32,
        imm: i64,
    },
    Bin {
        op: BinOp,
        dst: u32,
        lhs: Src,
        rhs: Src,
    },
    Un {
        op: UnOp,
        dst: u32,
        src: Src,
    },
    Cmp {
        lhs: Src,
        rhs: Src,
    },
    LoadRR {
        dst: u32,
        base: u32,
        index: u32,
    },
    LoadRI {
        dst: u32,
        base: u32,
        off: i64,
    },
    Load {
        dst: u32,
        base: Src,
        index: Src,
    },
    StoreRR {
        base: u32,
        index: u32,
        src: Src,
    },
    StoreRI {
        base: u32,
        off: i64,
        src: Src,
    },
    Store {
        base: Src,
        index: Src,
        src: Src,
    },
    FrameAddr {
        dst: u32,
        offset: i64,
    },
    CallFunc {
        dst: Option<u32>,
        func: u32,
        args: Box<[Src]>,
    },
    CallIntrinsic {
        dst: Option<u32>,
        which: Intrinsic,
        args: Box<[Src]>,
    },
    /// Range probe with its range table resolved at decode time (empty
    /// for a joint-outcome plan, where [`br_ir::ProfilePlan::range_containing`]
    /// always answers `None`).
    ProfileRanges {
        seq: u32,
        var: u32,
        ranges: Box<[(i64, i64)]>,
    },
    ProfileOutcomes {
        seq: u32,
        conds: Box<[(Src, Src, Cond)]>,
    },
}

/// A pre-decoded terminator with fall-through facts baked in.
#[derive(Clone, Debug)]
enum PreTerm {
    Branch {
        cond: Cond,
        taken: u32,
        not_taken: u32,
        /// Layout does not place `not_taken` next, so falling through
        /// materializes an unconditional jump.
        not_taken_jump: bool,
    },
    /// A block whose final body instruction is the compare feeding its
    /// own branch — the dominant shape in reordered range tests — fused
    /// into one dispatch. Still sets the condition codes (a successor
    /// may branch on them without a fresh compare). `not_taken_jump` as
    /// in [`PreTerm::Branch`].
    CmpBranch {
        lhs: Src,
        rhs: Src,
        cond: Cond,
        taken: u32,
        not_taken: u32,
        not_taken_jump: bool,
    },
    /// [`PreTerm::CmpBranch`] with register-vs-immediate operands — the
    /// shape of every range test the reorderer emits.
    CmpBranchRI {
        lhs: u32,
        imm: i64,
        cond: Cond,
        taken: u32,
        not_taken: u32,
        not_taken_jump: bool,
    },
    /// [`PreTerm::CmpBranch`] with register-vs-register operands.
    CmpBranchRR {
        lhs: u32,
        rhs: u32,
        cond: Cond,
        taken: u32,
        not_taken: u32,
        not_taken_jump: bool,
    },
    Jump {
        target: u32,
        /// `target` is not the next block in layout order.
        jump: bool,
    },
    IndirectJump {
        index: u32,
        targets: Box<[u32]>,
    },
    Return(Option<Src>),
}

/// One decoded basic block: an `ops` range into the function's flat
/// instruction array, the summed static costs of that body, and the
/// layout facts the classic interpreter kept in side tables.
///
/// The static costs are not charged while the block runs. The hot loop
/// only bumps the block's execution counter (and, for branches, a taken
/// counter); [`fold_stats`] multiplies frequencies by these static costs
/// once the run succeeds.
#[derive(Clone, Debug)]
struct PreBlock {
    ops_start: u32,
    ops_end: u32,
    /// Architectural instructions in the body (probes are free).
    body_insts: u64,
    compares: u64,
    loads: u64,
    stores: u64,
    calls: u64,
    /// Static address of the terminator, for predictor indexing.
    branch_addr: u64,
    /// The branch delay slot cannot be filled from this block.
    unfilled_slot: bool,
    term: PreTerm,
}

#[derive(Clone, Debug)]
struct PreFunction {
    entry: u32,
    num_regs: u32,
    frame_size: u32,
    param_regs: Box<[u32]>,
    /// All body instructions of all blocks, flattened in block order;
    /// each block holds an index range.
    ops: Vec<Op>,
    blocks: Vec<PreBlock>,
    /// Offset of this function's block counters in the run's flat
    /// frequency array (two slots per block: executions, taken).
    counts_base: u32,
}

/// A module decoded for fast execution.
///
/// Build one with [`Image::decode`] and execute it any number of times
/// with [`run_image`]; the image borrows nothing from the module. Block
/// storage order is captured as final code layout, exactly as
/// [`crate::run`] treats the module itself, so decode after layout.
///
/// # Examples
///
/// ```
/// use br_ir::{FuncBuilder, Module, Operand, Terminator};
///
/// let mut b = FuncBuilder::new("main");
/// let e = b.entry();
/// b.set_term(e, Terminator::Return(Some(Operand::Imm(7))));
/// let mut m = Module::new();
/// m.main = Some(m.add_function(b.finish()));
///
/// let image = br_vm::Image::decode(&m);
/// let out = br_vm::run_image(&image, b"", &br_vm::VmOptions::default()).unwrap();
/// assert_eq!(out.exit, 7);
/// ```
#[derive(Clone, Debug)]
pub struct Image {
    functions: Vec<PreFunction>,
    main: Option<usize>,
    globals_end: i64,
    /// `(word address, initial contents)` of each global.
    globals: Vec<(usize, Vec<i64>)>,
    /// Counter-vector length per profile plan.
    counter_counts: Vec<usize>,
    /// Total frequency-counter slots across all functions (two per block).
    count_slots: usize,
}

impl Image {
    /// Decode `module` into a dense executable image.
    pub fn decode(module: &Module) -> Image {
        let mut addr = 0u64;
        let mut count_slots = 0usize;
        let functions = module
            .functions
            .iter()
            .map(|f| {
                let counts_base = count_slots as u32;
                count_slots += 2 * f.blocks.len();
                let mut ops = Vec::new();
                let mut blocks = Vec::with_capacity(f.blocks.len());
                for (bi, b) in f.blocks.iter().enumerate() {
                    let ops_start = ops.len() as u32;
                    let mut body_insts = 0u64;
                    let mut compares = 0u64;
                    let mut loads = 0u64;
                    let mut stores = 0u64;
                    let mut calls = 0u64;
                    for inst in &b.insts {
                        if !matches!(
                            inst,
                            Inst::ProfileRanges { .. } | Inst::ProfileOutcomes { .. }
                        ) {
                            body_insts += 1;
                        }
                        ops.push(match inst {
                            Inst::Copy { dst, src } => match decode_src(*src) {
                                Src::Reg(r) => Op::CopyReg { dst: dst.0, src: r },
                                Src::Imm(i) => Op::CopyImm { dst: dst.0, imm: i },
                            },
                            Inst::Bin { op, dst, lhs, rhs } => {
                                match (decode_src(*lhs), decode_src(*rhs)) {
                                    (Src::Reg(l), Src::Reg(r)) => Op::BinRR {
                                        op: *op,
                                        dst: dst.0,
                                        lhs: l,
                                        rhs: r,
                                    },
                                    (Src::Reg(l), Src::Imm(i)) => Op::BinRI {
                                        op: *op,
                                        dst: dst.0,
                                        lhs: l,
                                        imm: i,
                                    },
                                    (lhs, rhs) => Op::Bin {
                                        op: *op,
                                        dst: dst.0,
                                        lhs,
                                        rhs,
                                    },
                                }
                            }
                            Inst::Un { op, dst, src } => Op::Un {
                                op: *op,
                                dst: dst.0,
                                src: decode_src(*src),
                            },
                            Inst::Cmp { lhs, rhs } => {
                                compares += 1;
                                Op::Cmp {
                                    lhs: decode_src(*lhs),
                                    rhs: decode_src(*rhs),
                                }
                            }
                            Inst::Load { dst, base, index } => {
                                loads += 1;
                                match (decode_src(*base), decode_src(*index)) {
                                    (Src::Reg(b), Src::Reg(i)) => Op::LoadRR {
                                        dst: dst.0,
                                        base: b,
                                        index: i,
                                    },
                                    (Src::Reg(b), Src::Imm(i)) => Op::LoadRI {
                                        dst: dst.0,
                                        base: b,
                                        off: i,
                                    },
                                    (base, index) => Op::Load {
                                        dst: dst.0,
                                        base,
                                        index,
                                    },
                                }
                            }
                            Inst::Store { base, index, src } => {
                                stores += 1;
                                let val = decode_src(*src);
                                match (decode_src(*base), decode_src(*index)) {
                                    (Src::Reg(b), Src::Reg(i)) => Op::StoreRR {
                                        base: b,
                                        index: i,
                                        src: val,
                                    },
                                    (Src::Reg(b), Src::Imm(i)) => Op::StoreRI {
                                        base: b,
                                        off: i,
                                        src: val,
                                    },
                                    (base, index) => Op::Store {
                                        base,
                                        index,
                                        src: val,
                                    },
                                }
                            }
                            Inst::FrameAddr { dst, offset } => Op::FrameAddr {
                                dst: dst.0,
                                offset: *offset as i64,
                            },
                            Inst::Call { dst, callee, args } => {
                                calls += 1;
                                let args: Box<[Src]> =
                                    args.iter().map(|a| decode_src(*a)).collect();
                                let dst = dst.map(|d| d.0);
                                match callee {
                                    Callee::Func(fid) => Op::CallFunc {
                                        dst,
                                        func: fid.index() as u32,
                                        args,
                                    },
                                    Callee::Intrinsic(i) => Op::CallIntrinsic {
                                        dst,
                                        which: *i,
                                        args,
                                    },
                                }
                            }
                            Inst::ProfileRanges { seq, var } => {
                                let ranges = match &module.profile_plans[seq.index()].kind {
                                    PlanKind::Ranges(r) => r.clone().into_boxed_slice(),
                                    PlanKind::Outcomes(_) => Box::default(),
                                };
                                Op::ProfileRanges {
                                    seq: seq.0,
                                    var: var.0,
                                    ranges,
                                }
                            }
                            Inst::ProfileOutcomes { seq, conds } => Op::ProfileOutcomes {
                                seq: seq.0,
                                conds: conds
                                    .iter()
                                    .map(|(l, r, c)| (decode_src(*l), decode_src(*r), *c))
                                    .collect(),
                            },
                        });
                    }
                    // Same address scheme as the classic layout pass:
                    // cumulative instruction offsets in storage order.
                    addr += b.insts.len() as u64;
                    let branch_addr = addr;
                    addr += 1;
                    // A compare counts as a real instruction, so with one
                    // real instruction and one compare, the compare IS the
                    // sole real instruction (and cannot fill the slot of
                    // the branch it feeds).
                    let real = body_insts;
                    let sole_real_is_cmp = real == 1 && compares == 1;
                    let fillable = match &b.term {
                        Terminator::Branch { .. } => real >= 2 || (real == 1 && !sole_real_is_cmp),
                        _ => real > 0,
                    };
                    let term = match &b.term {
                        Terminator::Branch {
                            cond,
                            taken,
                            not_taken,
                        } => {
                            // Fuse a trailing compare into the branch it
                            // feeds: one dispatch instead of two for the
                            // dominant block shape. The compare stays in
                            // the static counts — it still executes,
                            // just inside the terminator.
                            if let Some(&Op::Cmp { lhs, rhs }) = ops.last() {
                                ops.pop();
                                let (cond, taken, not_taken) = (*cond, taken.0, not_taken.0);
                                let not_taken_jump = not_taken as usize != bi + 1;
                                match (lhs, rhs) {
                                    (Src::Reg(l), Src::Imm(imm)) => PreTerm::CmpBranchRI {
                                        lhs: l,
                                        imm,
                                        cond,
                                        taken,
                                        not_taken,
                                        not_taken_jump,
                                    },
                                    (Src::Reg(l), Src::Reg(r)) => PreTerm::CmpBranchRR {
                                        lhs: l,
                                        rhs: r,
                                        cond,
                                        taken,
                                        not_taken,
                                        not_taken_jump,
                                    },
                                    (lhs, rhs) => PreTerm::CmpBranch {
                                        lhs,
                                        rhs,
                                        cond,
                                        taken,
                                        not_taken,
                                        not_taken_jump,
                                    },
                                }
                            } else {
                                PreTerm::Branch {
                                    cond: *cond,
                                    taken: taken.0,
                                    not_taken: not_taken.0,
                                    not_taken_jump: not_taken.index() != bi + 1,
                                }
                            }
                        }
                        Terminator::Jump(t) => PreTerm::Jump {
                            target: t.0,
                            jump: t.index() != bi + 1,
                        },
                        Terminator::IndirectJump { index, targets } => PreTerm::IndirectJump {
                            index: index.0,
                            targets: targets.iter().map(|t| t.0).collect(),
                        },
                        Terminator::Return(v) => PreTerm::Return(v.map(decode_src)),
                    };
                    blocks.push(PreBlock {
                        ops_start,
                        ops_end: ops.len() as u32,
                        body_insts,
                        compares,
                        loads,
                        stores,
                        calls,
                        branch_addr,
                        unfilled_slot: !fillable,
                        term,
                    });
                }
                PreFunction {
                    entry: f.entry.0,
                    num_regs: f.num_regs,
                    frame_size: f.frame_size,
                    param_regs: f.param_regs.iter().map(|r| r.0).collect(),
                    ops,
                    blocks,
                    counts_base,
                }
            })
            .collect();
        Image {
            functions,
            main: module.main.map(|m| m.index()),
            globals_end: module.globals_end(),
            globals: module
                .globals
                .iter()
                .map(|g| (g.addr as usize, g.init.clone()))
                .collect(),
            counter_counts: module
                .profile_plans
                .iter()
                .map(|p| p.counter_count())
                .collect(),
            count_slots,
        }
    }
}

/// Calls with at most this many arguments evaluate into a stack buffer
/// instead of allocating (most functions are narrow).
const ARG_BUF: usize = 8;

/// Frames with at most this many virtual registers live in a stack
/// array; wider frames fall back to a heap register file. Zeroing the
/// array costs the same memset the heap path pays anyway — the saving
/// is the allocation itself, once per call.
const REG_BUF: usize = 64;

struct FastState<'a> {
    opts: &'a VmOptions,
    memory: Vec<i64>,
    frame_top: i64,
    input: &'a [u8],
    input_pos: usize,
    output: Vec<u8>,
    profiles: Vec<Vec<u64>>,
    predictors: Vec<Predictor>,
    /// Flat per-block `(executions, taken)` counters, indexed by each
    /// function's `counts_base`; folded into [`ExecStats`] on success.
    counts: Vec<u64>,
    steps: u64,
    depth: usize,
    trace: Vec<String>,
}

/// Execute a pre-decoded [`Image`] on `input`.
///
/// Behaves exactly like [`crate::run`] on the module the image was
/// decoded from — same [`RunOutcome`], same [`Trap`]s. Prefer this entry
/// point when running the same module many times (training loops,
/// measurement sweeps): the decode cost is paid once.
///
/// # Errors
///
/// Returns a [`Trap`] for abnormal termination, exactly as [`crate::run`]
/// does.
pub fn run_image(image: &Image, input: &[u8], opts: &VmOptions) -> Result<RunOutcome, Trap> {
    let main = image.main.ok_or(Trap::NoMain)?;
    let mut memory = vec![0i64; image.globals_end as usize + opts.stack_words];
    for (at, init) in &image.globals {
        memory[*at..*at + init.len()].copy_from_slice(init);
    }
    let mut st = FastState {
        opts,
        memory,
        frame_top: image.globals_end,
        input,
        input_pos: 0,
        output: Vec::new(),
        profiles: image.counter_counts.iter().map(|&n| vec![0; n]).collect(),
        predictors: opts.predictors.iter().map(|&c| Predictor::new(c)).collect(),
        counts: vec![0; image.count_slots],
        steps: 0,
        depth: 0,
        trace: Vec::new(),
    };
    let exit = exec(&mut st, image, main, &[])?;
    // The hot loop's flat frequency array, regrouped per function/block:
    // the same `[executions, taken]` pairs the reference interpreter
    // accumulates directly.
    let block_counts = image
        .functions
        .iter()
        .map(|f| {
            let base = f.counts_base as usize;
            (0..f.blocks.len())
                .map(|bi| [st.counts[base + 2 * bi], st.counts[base + 2 * bi + 1]])
                .collect()
        })
        .collect();
    Ok(RunOutcome {
        exit,
        output: st.output,
        stats: fold_stats(image, &st.counts, opts),
        profiles: st.profiles,
        predictor_results: st.predictors.iter().map(Predictor::result).collect(),
        trace: st.trace,
        block_counts,
    })
}

/// Reconstruct the architectural event counts from block and taken-edge
/// frequencies. Every [`ExecStats`] field is an exact linear function of
/// (a) how often each block ran and (b) how often each branch was taken,
/// so the hot loop records only those two frequencies and this fold pays
/// the bookkeeping once per run instead of once per instruction.
fn fold_stats(image: &Image, counts: &[u64], opts: &VmOptions) -> ExecStats {
    let mut s = ExecStats::new();
    for f in &image.functions {
        let base = f.counts_base as usize;
        for (bi, b) in f.blocks.iter().enumerate() {
            let freq = counts[base + 2 * bi];
            if freq == 0 {
                continue;
            }
            s.insts += freq * b.body_insts;
            s.compares += freq * b.compares;
            s.loads += freq * b.loads;
            s.stores += freq * b.stores;
            s.calls += freq * b.calls;
            if b.unfilled_slot {
                s.delay_stalls += freq;
            }
            match &b.term {
                PreTerm::Branch { not_taken_jump, .. }
                | PreTerm::CmpBranch { not_taken_jump, .. }
                | PreTerm::CmpBranchRI { not_taken_jump, .. }
                | PreTerm::CmpBranchRR { not_taken_jump, .. } => {
                    let taken = counts[base + 2 * bi + 1];
                    let not_taken = freq - taken;
                    s.insts += freq;
                    s.cond_branches += freq;
                    s.taken_branches += taken;
                    if *not_taken_jump {
                        s.insts += not_taken;
                        s.uncond_jumps += not_taken;
                    }
                }
                PreTerm::Jump { jump, .. } => {
                    if *jump {
                        s.insts += freq;
                        s.uncond_jumps += freq;
                    }
                }
                PreTerm::IndirectJump { .. } => {
                    s.insts += freq * opts.indirect_jump_insts;
                    s.indirect_jumps += freq;
                }
                PreTerm::Return(_) => {
                    s.insts += freq;
                    s.returns += freq;
                }
            }
        }
    }
    s
}

fn exec(st: &mut FastState<'_>, image: &Image, func: usize, args: &[i64]) -> Result<i64, Trap> {
    if st.depth >= st.opts.max_call_depth {
        return Err(Trap::StackOverflow { depth: st.depth });
    }
    st.depth += 1;
    let f = &image.functions[func];
    let frame_base = st.frame_top;
    if frame_base as usize + f.frame_size as usize > st.memory.len() {
        return Err(Trap::StackOverflow { depth: st.depth });
    }
    st.frame_top += f.frame_size as i64;
    for w in &mut st.memory[frame_base as usize..(frame_base + f.frame_size as i64) as usize] {
        *w = 0;
    }
    let mut reg_buf = [0i64; REG_BUF];
    let mut reg_heap: Vec<i64>;
    let regs: &mut [i64] = if f.num_regs as usize <= REG_BUF {
        &mut reg_buf[..f.num_regs as usize]
    } else {
        reg_heap = vec![0i64; f.num_regs as usize];
        &mut reg_heap
    };
    for (&reg, &val) in f.param_regs.iter().zip(args) {
        regs[reg as usize] = val;
    }
    let max_steps = st.opts.max_steps;
    let trace_blocks = st.opts.trace_blocks;
    let tracing = trace_blocks > 0;
    let has_predictors = !st.predictors.is_empty();
    // Keep the step counter in a register for this frame; it is synced
    // with the shared state around calls so the per-block limit check
    // stays exact (same trap at the same block as the reference path).
    let mut steps = st.steps;
    let mut cur = f.entry as usize;
    let mut cc: Option<(i64, i64)> = None;
    let result = 'run: loop {
        steps += 1;
        if steps > max_steps {
            break 'run Err(Trap::StepLimitExceeded { limit: max_steps });
        }
        if tracing && st.trace.len() < trace_blocks {
            st.trace.push(format!("f{func}:b{cur}"));
        }
        let block = &f.blocks[cur];
        // The only bookkeeping on the hot path: one execution-frequency
        // bump (plus a taken bump below for taken branches). All stats
        // are folded from these frequencies after the run; a trap
        // discards the outcome, so nothing else needs to stay exact.
        let count_at = f.counts_base as usize + 2 * cur;
        st.counts[count_at] += 1;
        for op in &f.ops[block.ops_start as usize..block.ops_end as usize] {
            match op {
                Op::CopyReg { dst, src } => regs[*dst as usize] = regs[*src as usize],
                Op::CopyImm { dst, imm } => regs[*dst as usize] = *imm,
                Op::BinRR { op, dst, lhs, rhs } => {
                    match op.eval(regs[*lhs as usize], regs[*rhs as usize]) {
                        Some(v) => regs[*dst as usize] = v,
                        None => break 'run Err(Trap::DivideByZero),
                    }
                }
                Op::BinRI { op, dst, lhs, imm } => match op.eval(regs[*lhs as usize], *imm) {
                    Some(v) => regs[*dst as usize] = v,
                    None => break 'run Err(Trap::DivideByZero),
                },
                Op::Bin { op, dst, lhs, rhs } => match op.eval(src(regs, *lhs), src(regs, *rhs)) {
                    Some(v) => regs[*dst as usize] = v,
                    None => break 'run Err(Trap::DivideByZero),
                },
                Op::Un { op, dst, src: s } => regs[*dst as usize] = op.eval(src(regs, *s)),
                Op::Cmp { lhs, rhs } => cc = Some((src(regs, *lhs), src(regs, *rhs))),
                Op::LoadRR { dst, base, index } => {
                    let addr = regs[*base as usize].wrapping_add(regs[*index as usize]);
                    if addr < 0 || addr as usize >= st.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    regs[*dst as usize] = st.memory[addr as usize];
                }
                Op::LoadRI { dst, base, off } => {
                    let addr = regs[*base as usize].wrapping_add(*off);
                    if addr < 0 || addr as usize >= st.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    regs[*dst as usize] = st.memory[addr as usize];
                }
                Op::Load { dst, base, index } => {
                    let addr = src(regs, *base).wrapping_add(src(regs, *index));
                    if addr < 0 || addr as usize >= st.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    regs[*dst as usize] = st.memory[addr as usize];
                }
                Op::StoreRR {
                    base,
                    index,
                    src: s,
                } => {
                    let addr = regs[*base as usize].wrapping_add(regs[*index as usize]);
                    if addr < 0 || addr as usize >= st.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    st.memory[addr as usize] = src(regs, *s);
                }
                Op::StoreRI { base, off, src: s } => {
                    let addr = regs[*base as usize].wrapping_add(*off);
                    if addr < 0 || addr as usize >= st.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    st.memory[addr as usize] = src(regs, *s);
                }
                Op::Store {
                    base,
                    index,
                    src: s,
                } => {
                    let addr = src(regs, *base).wrapping_add(src(regs, *index));
                    if addr < 0 || addr as usize >= st.memory.len() {
                        break 'run Err(Trap::MemoryOutOfBounds { addr });
                    }
                    st.memory[addr as usize] = src(regs, *s);
                }
                Op::FrameAddr { dst, offset } => regs[*dst as usize] = frame_base + offset,
                Op::CallFunc { dst, func, args } => {
                    cc = None; // calls clobber the condition codes
                    let mut buf = [0i64; ARG_BUF];
                    let heap: Vec<i64>;
                    let vals: &[i64] = if args.len() <= ARG_BUF {
                        for (slot, &a) in buf.iter_mut().zip(args.iter()) {
                            *slot = src(regs, a);
                        }
                        &buf[..args.len()]
                    } else {
                        heap = args.iter().map(|&a| src(regs, a)).collect();
                        &heap
                    };
                    st.steps = steps;
                    let called = exec(st, image, *func as usize, vals);
                    steps = st.steps;
                    match called {
                        Ok(v) => {
                            if let Some(d) = dst {
                                regs[*d as usize] = v;
                            }
                        }
                        Err(t) => break 'run Err(t),
                    }
                }
                Op::CallIntrinsic { dst, which, args } => {
                    cc = None;
                    // Intrinsics take at most one argument: evaluate it
                    // directly, no buffer at all.
                    let arg0 = args.first().map_or(0, |&a| src(regs, a));
                    match intrinsic_step(
                        *which,
                        &[arg0],
                        st.input,
                        &mut st.input_pos,
                        &mut st.output,
                    ) {
                        Ok(v) => {
                            if let Some(d) = dst {
                                regs[*d as usize] = v;
                            }
                        }
                        Err(t) => break 'run Err(t),
                    }
                }
                Op::ProfileRanges { seq, var, ranges } => {
                    let v = regs[*var as usize];
                    if let Some(idx) = ranges.iter().position(|&(lo, hi)| lo <= v && v <= hi) {
                        st.profiles[*seq as usize][idx] += 1;
                    }
                }
                Op::ProfileOutcomes { seq, conds } => {
                    let mut mask = 0usize;
                    for (i, (lhs, rhs, cond)) in conds.iter().enumerate() {
                        if cond.eval(src(regs, *lhs), src(regs, *rhs)) {
                            mask |= 1 << i;
                        }
                    }
                    st.profiles[*seq as usize][mask] += 1;
                }
            }
        }
        match &block.term {
            PreTerm::Branch {
                cond,
                taken,
                not_taken,
                not_taken_jump: _,
            } => {
                let Some((l, r)) = cc else {
                    break 'run Err(Trap::UndefinedConditionCodes);
                };
                let is_taken = cond.eval(l, r);
                if has_predictors {
                    for p in &mut st.predictors {
                        p.record(block.branch_addr, is_taken);
                    }
                }
                if is_taken {
                    st.counts[count_at + 1] += 1;
                    cur = *taken as usize;
                } else {
                    cur = *not_taken as usize;
                }
            }
            PreTerm::CmpBranchRI {
                lhs,
                imm,
                cond,
                taken,
                not_taken,
                not_taken_jump: _,
            } => {
                let l = regs[*lhs as usize];
                let r = *imm;
                cc = Some((l, r));
                let is_taken = cond.eval(l, r);
                if has_predictors {
                    for p in &mut st.predictors {
                        p.record(block.branch_addr, is_taken);
                    }
                }
                if is_taken {
                    st.counts[count_at + 1] += 1;
                    cur = *taken as usize;
                } else {
                    cur = *not_taken as usize;
                }
            }
            PreTerm::CmpBranchRR {
                lhs,
                rhs,
                cond,
                taken,
                not_taken,
                not_taken_jump: _,
            } => {
                let l = regs[*lhs as usize];
                let r = regs[*rhs as usize];
                cc = Some((l, r));
                let is_taken = cond.eval(l, r);
                if has_predictors {
                    for p in &mut st.predictors {
                        p.record(block.branch_addr, is_taken);
                    }
                }
                if is_taken {
                    st.counts[count_at + 1] += 1;
                    cur = *taken as usize;
                } else {
                    cur = *not_taken as usize;
                }
            }
            PreTerm::CmpBranch {
                lhs,
                rhs,
                cond,
                taken,
                not_taken,
                not_taken_jump: _,
            } => {
                let l = src(regs, *lhs);
                let r = src(regs, *rhs);
                cc = Some((l, r));
                let is_taken = cond.eval(l, r);
                if has_predictors {
                    for p in &mut st.predictors {
                        p.record(block.branch_addr, is_taken);
                    }
                }
                if is_taken {
                    st.counts[count_at + 1] += 1;
                    cur = *taken as usize;
                } else {
                    cur = *not_taken as usize;
                }
            }
            PreTerm::Jump { target, jump: _ } => {
                cur = *target as usize;
            }
            PreTerm::IndirectJump { index, targets } => {
                let v = regs[*index as usize];
                if v < 0 || v as usize >= targets.len() {
                    break 'run Err(Trap::IndirectJumpOutOfBounds {
                        index: v,
                        table_len: targets.len(),
                    });
                }
                cur = targets[v as usize] as usize;
            }
            PreTerm::Return(v) => {
                break 'run Ok(v.map(|s| src(regs, s)).unwrap_or(0));
            }
        }
    };
    st.steps = steps;
    st.frame_top = frame_base;
    st.depth -= 1;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_reference;
    use br_ir::{FuncBuilder, Operand, Terminator};

    /// Decode-time fall-through and delay-slot facts match the classic
    /// side tables on a hand-built shape.
    #[test]
    fn image_captures_layout_facts() {
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let far = b.new_block();
        let nxt = b.new_block();
        b.copy(e, x, 1i64);
        b.cmp_branch(e, x, 0i64, br_ir::Cond::Eq, far, nxt);
        b.set_term(far, Terminator::Return(None));
        b.set_term(nxt, Terminator::Jump(far));
        let mut m = br_ir::Module::new();
        m.main = Some(m.add_function(b.finish()));
        let image = Image::decode(&m);
        let f = &image.functions[0];
        // entry: copy + cmp + branch. The trailing compare fuses into
        // the branch, and not_taken (nxt, index 2) is not adjacent to
        // entry (index 0) → fall-through pays a jump.
        match &f.blocks[0].term {
            PreTerm::CmpBranchRI { not_taken_jump, .. } => assert!(not_taken_jump),
            t => panic!("expected fused reg-imm cmp+branch, got {t:?}"),
        }
        // entry has a real non-cmp inst (the copy) → slot fillable.
        assert!(!f.blocks[0].unfilled_slot);
        // far: empty body → unfillable slot.
        assert!(f.blocks[1].unfilled_slot);
        // nxt jumps backwards → paid jump.
        match &f.blocks[2].term {
            PreTerm::Jump { jump, .. } => assert!(jump),
            t => panic!("expected jump, got {t:?}"),
        }
    }

    /// The fast path and the classic interpreter agree on a small
    /// branchy program, field for field.
    #[test]
    fn matches_reference_on_loop() {
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let acc = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, acc, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, 100i64, br_ir::Cond::Ge, done, body);
        b.bin(body, br_ir::BinOp::Add, i, i, 1i64);
        b.bin(body, br_ir::BinOp::Add, acc, acc, i);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(acc))));
        let mut m = br_ir::Module::new();
        m.main = Some(m.add_function(b.finish()));
        let opts = VmOptions {
            predictors: crate::predictor::PredictorConfig::sweep(crate::predictor::Scheme::TwoBit),
            trace_blocks: 16,
            ..VmOptions::default()
        };
        let fast = run_image(&Image::decode(&m), b"", &opts).unwrap();
        let slow = run_reference(&m, b"", &opts).unwrap();
        assert_eq!(fast.exit, slow.exit);
        assert_eq!(fast.output, slow.output);
        assert_eq!(fast.stats, slow.stats);
        assert_eq!(fast.profiles, slow.profiles);
        assert_eq!(fast.predictor_results, slow.predictor_results);
        assert_eq!(fast.trace, slow.trace);
    }
}
