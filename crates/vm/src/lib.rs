//! # br-vm
//!
//! An interpreter for [`br_ir`] modules that plays the role of the paper's
//! measurement substrate (the SPARC machines plus the `ease` environment):
//!
//! * [`run`] executes a module's `main` and returns a [`RunOutcome`] with
//!   exact dynamic event counts ([`ExecStats`]): instructions, conditional
//!   branches, unconditional jumps, indirect jumps, compares, and more.
//!   It dispatches through a pre-decoded fast path; decode once with
//!   [`Image::decode`] and call [`run_image`] to amortize decoding across
//!   many runs of the same module. [`run_reference`] is the classic
//!   tree-walking interpreter kept as the equivalence oracle.
//! * **Fall-through modelling.** Block storage order *is* code layout. A
//!   `Jump` to the next block costs nothing; a conditional branch whose
//!   not-taken successor is not adjacent pays an extra unconditional jump,
//!   exactly as laid-out machine code would.
//! * [`predictor`] simulates the paper's (0,1) and (0,2) branch predictors
//!   with parameterizable table sizes; many configurations are evaluated in
//!   a single run (Tables 5 and 6).
//! * [`timing`] converts event counts into modelled cycles (Table 7).
//! * Profiling probes ([`br_ir::Inst::ProfileRanges`]) populate per-range
//!   counters without perturbing the architectural counts, standing in for
//!   the paper's profiling instrumentation.
//!
//! ```
//! use br_ir::{FuncBuilder, Module, Operand, Terminator, Callee, Intrinsic, Inst};
//! use br_vm::{run, VmOptions};
//!
//! let mut m = Module::new();
//! let mut b = FuncBuilder::new("main");
//! let c = b.new_reg();
//! let e = b.entry();
//! b.push(e, Inst::Call { dst: Some(c), callee: Callee::Intrinsic(Intrinsic::GetChar), args: vec![] });
//! b.push(e, Inst::Call { dst: None, callee: Callee::Intrinsic(Intrinsic::PutChar), args: vec![Operand::Reg(c)] });
//! b.set_term(e, Terminator::Return(Some(Operand::Imm(0))));
//! m.main = Some(m.add_function(b.finish()));
//!
//! let out = run(&m, b"A", &VmOptions::default()).expect("runs");
//! assert_eq!(out.output, b"A");
//! assert_eq!(out.exit, 0);
//! ```

mod counters;
mod dispatch;
mod machine;
pub mod predictor;
mod stats;
pub mod timing;
mod trap;

pub use counters::{counters_match_stats, function_counters, FunctionCounters};
pub use dispatch::{run_image, Image};
pub use machine::{run, run_hooked, run_reference, EpochHook, RunOutcome, VmOptions};
pub use predictor::{PredictorConfig, PredictorResult, Scheme};
pub use stats::{pct_change, ExecStats};
pub use timing::TimeModel;
pub use trap::Trap;
