//! Run-time traps.

use std::fmt;

/// An abnormal termination of the interpreted program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Memory access outside the allocated word array.
    MemoryOutOfBounds { addr: i64 },
    /// Indirect jump index outside its table.
    IndirectJumpOutOfBounds { index: i64, table_len: usize },
    /// Conditional branch executed with undefined condition codes.
    UndefinedConditionCodes,
    /// The program called the `abort` intrinsic.
    Abort { code: i64 },
    /// The step budget was exhausted (runaway loop guard).
    StepLimitExceeded { limit: u64 },
    /// Call stack exceeded the configured depth.
    StackOverflow { depth: usize },
    /// The module has no designated `main` function.
    NoMain,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivideByZero => write!(f, "division by zero"),
            Trap::MemoryOutOfBounds { addr } => write!(f, "memory access out of bounds at {addr}"),
            Trap::IndirectJumpOutOfBounds { index, table_len } => {
                write!(
                    f,
                    "indirect jump index {index} outside table of {table_len}"
                )
            }
            Trap::UndefinedConditionCodes => {
                write!(f, "conditional branch with undefined condition codes")
            }
            Trap::Abort { code } => write!(f, "program aborted with code {code}"),
            Trap::StepLimitExceeded { limit } => write!(f, "step limit of {limit} exceeded"),
            Trap::StackOverflow { depth } => write!(f, "call stack overflow at depth {depth}"),
            Trap::NoMain => write!(f, "module has no main function"),
        }
    }
}

impl std::error::Error for Trap {}
