//! Branch predictor simulation.
//!
//! The paper evaluates its transformation against the SPARC Ultra I's
//! (0,2) predictor with 2048 entries (its Table 5) and sweeps (0,1) and
//! (0,2) predictors from 32 to 2048 entries (its Table 6). In Yeh/Patt
//! notation, an (m,n) predictor keeps `m` bits of global history selecting
//! a table of `n`-bit saturating counters indexed by the branch address;
//! with m = 0 the table is indexed by address alone.
//!
//! Each conditional branch in the program receives a static *address*
//! (its instruction offset in layout order) so that table aliasing behaves
//! like it would in laid-out machine code.

/// Counter automaton used by a predictor table entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// (0,1): one-bit last-outcome predictor.
    OneBit,
    /// (0,2): two-bit saturating counter.
    TwoBit,
    /// gshare: two-bit counters indexed by `address XOR global history`
    /// with the given number of history bits — a "other branch
    /// predictor" in the sense of the paper's Table 6 remark.
    Gshare(u8),
}

impl Scheme {
    /// Short label used in reports ("(0,1)", "(0,2)", "gshare8"). The
    /// gshare label always carries its history width, so sweeps at any
    /// width stay distinguishable in reports.
    pub fn label(self) -> String {
        match self {
            Scheme::OneBit => "(0,1)".to_string(),
            Scheme::TwoBit => "(0,2)".to_string(),
            Scheme::Gshare(h) => format!("gshare{h}"),
        }
    }
}

/// One predictor configuration to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredictorConfig {
    /// Counter scheme.
    pub scheme: Scheme,
    /// Number of table entries (power of two in the paper: 32..=2048).
    pub entries: usize,
}

impl PredictorConfig {
    /// The paper's Table 5 configuration: (0,2) with 2048 entries.
    pub fn ultra_sparc() -> PredictorConfig {
        PredictorConfig {
            scheme: Scheme::TwoBit,
            entries: 2048,
        }
    }

    /// The full sweep of the paper's Table 6 for one scheme.
    pub fn sweep(scheme: Scheme) -> Vec<PredictorConfig> {
        [32, 64, 128, 256, 512, 1024, 2048]
            .into_iter()
            .map(|entries| PredictorConfig { scheme, entries })
            .collect()
    }
}

/// Result of simulating one predictor configuration over a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredictorResult {
    /// The simulated configuration.
    pub config: PredictorConfig,
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredictions: u64,
}

impl PredictorResult {
    /// Misprediction rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// A live predictor table.
#[derive(Clone, Debug)]
pub struct Predictor {
    config: PredictorConfig,
    /// Two-bit: 0..=3, predict taken when >= 2. One-bit: 0 or 1.
    table: Vec<u8>,
    /// Global branch-history register (gshare only).
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Predictor {
    /// Fresh predictor with all counters in the weakly-not-taken state.
    pub fn new(config: PredictorConfig) -> Predictor {
        assert!(config.entries > 0, "predictor needs at least one entry");
        let init = match config.scheme {
            Scheme::OneBit => 0,
            Scheme::TwoBit | Scheme::Gshare(_) => 1,
        };
        Predictor {
            config,
            table: vec![init; config.entries],
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Record one executed conditional branch at static address `addr`
    /// with outcome `taken`, counting a misprediction if the table
    /// disagreed.
    pub fn record(&mut self, addr: u64, taken: bool) {
        let index = match self.config.scheme {
            Scheme::Gshare(bits) => {
                let mask = (1u64 << bits.min(63)) - 1;
                addr ^ (self.history & mask)
            }
            _ => addr,
        };
        let slot = (index as usize) % self.table.len();
        let counter = &mut self.table[slot];
        let predicted_taken = match self.config.scheme {
            Scheme::OneBit => *counter == 1,
            Scheme::TwoBit | Scheme::Gshare(_) => *counter >= 2,
        };
        self.predictions += 1;
        if predicted_taken != taken {
            self.mispredictions += 1;
        }
        *counter = match self.config.scheme {
            Scheme::OneBit => taken as u8,
            Scheme::TwoBit | Scheme::Gshare(_) => {
                if taken {
                    (*counter + 1).min(3)
                } else {
                    counter.saturating_sub(1)
                }
            }
        };
        if let Scheme::Gshare(_) = self.config.scheme {
            self.history = (self.history << 1) | taken as u64;
        }
    }

    /// Snapshot the counts.
    pub fn result(&self) -> PredictorResult {
        PredictorResult {
            config: self.config,
            predictions: self.predictions,
            mispredictions: self.mispredictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(scheme: Scheme, entries: usize) -> PredictorConfig {
        PredictorConfig { scheme, entries }
    }

    #[test]
    fn one_bit_mispredicts_every_alternation() {
        let mut p = Predictor::new(cfg(Scheme::OneBit, 16));
        for i in 0..100 {
            p.record(0, i % 2 == 0);
        }
        let r = p.result();
        // First branch (taken) mispredicted, then every flip mispredicts.
        assert_eq!(r.predictions, 100);
        assert_eq!(r.mispredictions, 100);
    }

    #[test]
    fn two_bit_tolerates_single_deviations() {
        let mut p = Predictor::new(cfg(Scheme::TwoBit, 16));
        // Warm to strongly taken.
        for _ in 0..4 {
            p.record(0, true);
        }
        let before = p.result().mispredictions;
        p.record(0, false); // one deviation
        p.record(0, true); // still predicted taken: no second miss
        let after = p.result().mispredictions;
        assert_eq!(after - before, 1);
    }

    #[test]
    fn biased_branch_is_nearly_perfect_under_two_bit() {
        let mut p = Predictor::new(cfg(Scheme::TwoBit, 64));
        for _ in 0..1000 {
            p.record(8, true);
        }
        let r = p.result();
        assert!(r.mispredictions <= 2, "got {}", r.mispredictions);
        assert!(r.rate() < 0.01);
    }

    #[test]
    fn aliasing_hurts_small_tables() {
        // Two perfectly-biased branches with opposite outcomes that alias
        // in a 1-entry table fight each other; in a 2-entry table they
        // are independent.
        let run = |entries| {
            let mut p = Predictor::new(cfg(Scheme::TwoBit, entries));
            for _ in 0..500 {
                p.record(0, true);
                p.record(1, false);
            }
            p.result().mispredictions
        };
        assert!(run(1) > 10 * run(2).max(1));
    }

    #[test]
    fn sweep_has_paper_table_sizes() {
        let sweep = PredictorConfig::sweep(Scheme::TwoBit);
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].entries, 32);
        assert_eq!(sweep[6].entries, 2048);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Predictor::new(cfg(Scheme::OneBit, 0));
    }
}

#[cfg(test)]
mod gshare_tests {
    use super::*;

    #[test]
    fn gshare_learns_history_patterns_plain_counters_cannot() {
        // One branch alternating T,N,T,N: (0,2) mispredicts heavily,
        // gshare with history locks on after warm-up.
        let mut plain = Predictor::new(PredictorConfig {
            scheme: Scheme::TwoBit,
            entries: 256,
        });
        let mut gshare = Predictor::new(PredictorConfig {
            scheme: Scheme::Gshare(4),
            entries: 256,
        });
        for i in 0..2000 {
            let taken = i % 2 == 0;
            plain.record(77, taken);
            gshare.record(77, taken);
        }
        let p = plain.result();
        let g = gshare.result();
        assert!(
            g.mispredictions * 10 < p.mispredictions,
            "gshare {} vs plain {}",
            g.mispredictions,
            p.mispredictions
        );
    }

    #[test]
    fn gshare_labels() {
        assert_eq!(Scheme::Gshare(8).label(), "gshare8");
        assert_eq!(Scheme::Gshare(4).label(), "gshare4");
        assert_eq!(Scheme::Gshare(6).label(), "gshare6");
        assert_eq!(Scheme::Gshare(12).label(), "gshare12");
    }
}
