//! Cycle/time model (the paper's Table 7).
//!
//! The paper measured wall-clock user time on real SPARCs and found the
//! time reduction smaller than the instruction reduction, because (a)
//! C run-time library code was not touched by the transformation and (b)
//! pipeline effects (mispredictions, expensive indirect jumps) partly
//! offset the instruction savings. This model reproduces those mechanisms:
//!
//! ```text
//! cycles = insts
//!        + mispredictions * mispredict_penalty
//!        + indirect_jumps * indirect_extra_cycles
//!        + library_overhead                 (same absolute cost both runs)
//! ```

use crate::stats::ExecStats;

/// Parameters of the cycle model.
#[derive(Clone, Copy, Debug)]
pub struct TimeModel {
    /// Pipeline refill penalty per branch misprediction.
    pub mispredict_penalty: u64,
    /// Extra cycles per indirect jump *beyond* its instruction cost.
    /// About 1 on a SPARC IPC/20; the paper measured indirect jumps to be
    /// roughly four times more expensive on the Ultra I, so use ~9 there.
    pub indirect_extra_cycles: u64,
    /// Fraction of the *original* run's core cycles added to both runs as
    /// untransformed run-time library work (the paper notes its
    /// measurements exclude library code but its execution times include
    /// it).
    pub library_fraction: f64,
    /// Cycles wasted per control transfer whose delay slot could not be
    /// filled (the paper fills delay slots *after* reordering; a slot
    /// that stays empty holds a nop).
    pub delay_stall_cycles: u64,
}

impl TimeModel {
    /// Model of the SPARC Ultra I used for the paper's Tables 5–7.
    pub fn ultra_sparc() -> TimeModel {
        TimeModel {
            mispredict_penalty: 4,
            indirect_extra_cycles: 9,
            library_fraction: 0.35,
            delay_stall_cycles: 1,
        }
    }

    /// Model of the older SPARC IPC / SPARCstation 20 (cheap indirect
    /// jumps, no dynamic prediction — mispredictions cost nothing).
    pub fn sparc_ipc() -> TimeModel {
        TimeModel {
            mispredict_penalty: 0,
            indirect_extra_cycles: 1,
            library_fraction: 0.35,
            delay_stall_cycles: 1,
        }
    }

    /// Core cycles for a run (no library overhead).
    pub fn core_cycles(&self, stats: &ExecStats, mispredictions: u64) -> u64 {
        stats.insts
            + mispredictions * self.mispredict_penalty
            + stats.indirect_jumps * self.indirect_extra_cycles
            + stats.delay_stalls * self.delay_stall_cycles
    }

    /// Modelled total cycles of a run, given the core cycles of the
    /// original (baseline) run for computing the shared library overhead.
    pub fn total_cycles(
        &self,
        stats: &ExecStats,
        mispredictions: u64,
        baseline_core_cycles: u64,
    ) -> u64 {
        self.core_cycles(stats, mispredictions)
            + (baseline_core_cycles as f64 * self.library_fraction) as u64
    }
}

/// Percentage time change between an original and a reordered run under
/// one time model. Negative = faster.
pub fn time_pct_change(
    model: &TimeModel,
    original: &ExecStats,
    original_mispred: u64,
    reordered: &ExecStats,
    reordered_mispred: u64,
) -> f64 {
    let base_core = model.core_cycles(original, original_mispred);
    let t0 = model.total_cycles(original, original_mispred, base_core);
    let t1 = model.total_cycles(reordered, reordered_mispred, base_core);
    if t0 == 0 {
        0.0
    } else {
        (t1 as f64 - t0 as f64) / t0 as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(insts: u64, ijmps: u64) -> ExecStats {
        ExecStats {
            insts,
            indirect_jumps: ijmps,
            ..ExecStats::default()
        }
    }

    #[test]
    fn core_cycles_adds_penalties() {
        let m = TimeModel::ultra_sparc();
        assert_eq!(m.core_cycles(&stats(1000, 10), 5), 1000 + 5 * 4 + 10 * 9);
    }

    #[test]
    fn library_overhead_dilutes_improvement() {
        let m = TimeModel::ultra_sparc();
        // 20% instruction reduction, no prediction/indirect effects.
        let pct = time_pct_change(&m, &stats(1000, 0), 0, &stats(800, 0), 0);
        assert!(pct < 0.0);
        assert!(pct > -20.0, "library overhead must dilute: {pct}");
        let expected = -200.0 / 1350.0 * 100.0;
        assert!((pct - expected).abs() < 1e-9);
    }

    #[test]
    fn added_mispredictions_offset_saved_instructions() {
        let m = TimeModel::ultra_sparc();
        // Save 100 insts but add 50 mispredictions (200 cycles): net slower.
        let pct = time_pct_change(&m, &stats(1000, 0), 0, &stats(900, 0), 50);
        assert!(pct > 0.0, "{pct}");
    }

    #[test]
    fn ipc_ignores_mispredictions() {
        let m = TimeModel::sparc_ipc();
        let a = time_pct_change(&m, &stats(1000, 0), 0, &stats(900, 0), 0);
        let b = time_pct_change(&m, &stats(1000, 0), 0, &stats(900, 0), 500);
        assert_eq!(a, b);
    }
}
