//! The cluster router: a `brs2` front door that fans requests out to
//! shards by content hash.
//!
//! Every compute request is routed by the **module's content hash** —
//! the same 64-bit [`proto2::module_hash`] the interning layer uses —
//! through the consistent-hash [`Ring`]. Consequences:
//!
//! * a module's requests always land on the shard that has it interned
//!   and its responses cached, so the cluster behaves like one big
//!   content-addressed cache;
//! * `need-module` flows through unchanged: the router is a dumb pipe
//!   for the delta-upload handshake, and because routing is
//!   deterministic, the client's re-upload lands on the very shard
//!   that asked;
//! * batches are split per shard, forwarded as sub-batches, and the
//!   replies re-assembled in request order.
//!
//! Resilience:
//!
//! * **replication** — an `ok` response carrying a cache key (`aux`)
//!   is re-installed on the key's ring successor via `cacheput`, so a
//!   shard's death does not cold-start its working set;
//! * **failover** — a send that fails walks the key's candidate list;
//!   with replication on, the first hop is exactly the shard holding
//!   the replicas;
//! * **health probes** — a prober thread marks a shard dead after two
//!   consecutive failed probes (eject) and live again on the first
//!   success (readmit); routing skips dead shards without rebuilding
//!   the ring;
//! * **hot-key memo** — a request seen [`RouterConfig::hot_threshold`]
//!   times is answered from a bounded router-side memo of its
//!   (deterministic, cacheable) response without touching a shard;
//! * **graceful drain** — `shutdown` stops the accept loop, finishes
//!   in-flight connections, then propagates the shutdown to every
//!   live shard.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use br_serve::proto::{self, AnyFrame, Frame, MAX_PAYLOAD};
use br_serve::proto2::{
    self, batch_items, batch_replies, module_hash, push_batch_item, push_batch_reply, BatchReply,
    Client2, Frame2,
};
use br_serve::server::FrameReader;
use br_sweep::cache::fnv1a;

use crate::ring::Ring;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Shard addresses; ring position = index in this list.
    pub shards: Vec<String>,
    /// Replicate cacheable responses to the key's ring successor.
    pub replicate: bool,
    /// Identical requests before the router memoizes the response
    /// (0 disables the hot-key memo).
    pub hot_threshold: u32,
    /// Maximum memoized responses held at once.
    pub memo_capacity: usize,
    /// Health-probe interval.
    pub probe_interval_ms: u64,
    /// Read/write timeout on shard connections — a shard slower than
    /// this is treated as failed and the request fails over.
    pub shard_timeout_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:7410".to_string(),
            shards: Vec::new(),
            replicate: true,
            hot_threshold: 8,
            memo_capacity: 256,
            probe_interval_ms: 250,
            shard_timeout_ms: 30_000,
        }
    }
}

/// Router-side counters, rendered as `br_cluster_*` plaintext.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Frames accepted from clients (batch = 1 frame).
    pub requests: AtomicU64,
    /// Individual requests forwarded to shards.
    pub forwarded: AtomicU64,
    /// Requests retried on another shard after a send failed.
    pub failovers: AtomicU64,
    /// Requests answered with an error because no shard could.
    pub unrouteable: AtomicU64,
    /// Responses replicated to their ring successor.
    pub replications: AtomicU64,
    /// Requests answered from the hot-key memo.
    pub memo_hits: AtomicU64,
    /// `brs1` frames refused (the router speaks `brs2`).
    pub mismatch: AtomicU64,
    /// Oversized frames answered and drained.
    pub oversized: AtomicU64,
    /// Shards ejected by the health prober.
    pub ejections: AtomicU64,
    /// Shards readmitted after probes recovered.
    pub readmissions: AtomicU64,
}

impl RouterMetrics {
    /// Plaintext rendering, one `br_cluster_<name>_total` line per
    /// counter (the `metrics` endpoint's payload, minus shard gauges).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in [
            ("requests", &self.requests),
            ("forwarded", &self.forwarded),
            ("failovers", &self.failovers),
            ("unrouteable", &self.unrouteable),
            ("replications", &self.replications),
            ("memo_hits", &self.memo_hits),
            ("mismatch", &self.mismatch),
            ("oversized", &self.oversized),
            ("ejections", &self.ejections),
            ("readmissions", &self.readmissions),
        ] {
            let _ = writeln!(
                out,
                "br_cluster_{name}_total {}",
                value.load(Ordering::Relaxed)
            );
        }
        out
    }

    /// Parse one counter back out of [`RouterMetrics::render`] output.
    pub fn parse_counter(rendered: &str, name: &str) -> Option<u64> {
        let prefix = format!("br_cluster_{name}_total ");
        rendered
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .and_then(|v| v.parse().ok())
    }
}

/// One shard as the router sees it.
struct ShardState {
    addr: String,
    alive: AtomicBool,
    fails: AtomicU32,
}

/// Consecutive failed probes (or sends) before a shard is ejected.
const EJECT_AFTER: u32 = 2;

impl ShardState {
    fn record_failure(&self, metrics: &RouterMetrics) {
        let fails = self.fails.fetch_add(1, Ordering::SeqCst) + 1;
        if fails >= EJECT_AFTER && self.alive.swap(false, Ordering::SeqCst) {
            metrics.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_success(&self, metrics: &RouterMetrics) {
        self.fails.store(0, Ordering::SeqCst);
        if !self.alive.swap(true, Ordering::SeqCst) {
            metrics.readmissions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Hot-key memo: request-hash -> seen count, then the memoized reply.
struct Memo {
    counts: HashMap<u64, u32>,
    replies: HashMap<u64, BatchReply>,
}

struct RouterState {
    config: RouterConfig,
    ring: Ring,
    shards: Vec<ShardState>,
    metrics: RouterMetrics,
    memo: Mutex<Memo>,
    /// `(cache key, successor)` pairs already replicated.
    replicated: Mutex<HashSet<(u64, usize)>>,
    draining: AtomicBool,
}

impl RouterState {
    /// Candidate shard order for a key, live shards first; dead shards
    /// stay as last-resort candidates (the prober may lag reality).
    fn candidate_order(&self, key: u64) -> Vec<usize> {
        let candidates = self.ring.candidates(key);
        let (live, dead): (Vec<usize>, Vec<usize>) = candidates
            .into_iter()
            .partition(|&s| self.shards[s].alive.load(Ordering::SeqCst));
        live.into_iter().chain(dead).collect()
    }
}

/// A running router. Obtained from [`Router::start`]; serves until
/// [`Router::wait`] observes shutdown and finishes draining.
pub struct Router {
    addr: SocketAddr,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    state: Arc<RouterState>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Bind the listener and start the health prober.
    ///
    /// # Errors
    ///
    /// Binding the address fails, or the shard list is empty.
    pub fn start(config: RouterConfig) -> io::Result<Router> {
        if config.shards.is_empty() {
            return Err(io::Error::other("router needs at least one shard"));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shards = config
            .shards
            .iter()
            .map(|addr| ShardState {
                addr: addr.clone(),
                alive: AtomicBool::new(true),
                fails: AtomicU32::new(0),
            })
            .collect();
        let state = Arc::new(RouterState {
            ring: Ring::new(config.shards.len()),
            shards,
            metrics: RouterMetrics::default(),
            memo: Mutex::new(Memo {
                counts: HashMap::new(),
                replies: HashMap::new(),
            }),
            replicated: Mutex::new(HashSet::new()),
            draining: AtomicBool::new(false),
            config,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let prober = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || probe_loop(&state, &shutdown))
        };
        Ok(Router {
            addr,
            listener,
            shutdown,
            state,
            prober: Some(prober),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's live counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.state.metrics
    }

    /// A handle that makes [`Router::wait`] begin draining.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until a `shutdown` frame or signal arrives, then drain:
    /// in-flight connections finish, the shutdown propagates to every
    /// live shard, the prober joins.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors.
    pub fn wait(mut self) -> io::Result<()> {
        let mut connections = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) || br_serve::terminated() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    connections.push(std::thread::spawn(move || {
                        route_connection(stream, &state, &shutdown);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    connections.retain(|c| !c.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.state.draining.store(true, Ordering::SeqCst);
        for c in connections {
            let _ = c.join();
        }
        // Propagate the drain: every live shard gets a shutdown frame.
        for shard in &self.state.shards {
            if let Ok(mut client) = Client2::connect_with(
                &shard.addr,
                Duration::from_millis(500),
                Some(Duration::from_millis(2_000)),
            ) {
                let _ = client.call(&Frame2::request(proto2::kind::SHUTDOWN, &[]));
            }
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        Ok(())
    }
}

/// The health prober: one probe round per interval; two consecutive
/// failures eject a shard, one success readmits it.
fn probe_loop(state: &RouterState, shutdown: &AtomicBool) {
    let interval = Duration::from_millis(state.config.probe_interval_ms.max(10));
    let probe_timeout = Duration::from_millis(state.config.probe_interval_ms.max(10));
    while !shutdown.load(Ordering::SeqCst) && !br_serve::terminated() {
        for shard in &state.shards {
            let healthy = Client2::connect_with(&shard.addr, probe_timeout, Some(probe_timeout))
                .and_then(|mut c| c.call(&Frame2::request(proto2::kind::HEALTH, &[])))
                .map(|r| r.kind == proto2::kind::OK)
                .unwrap_or(false);
            if healthy {
                shard.record_success(&state.metrics);
            } else {
                shard.record_failure(&state.metrics);
            }
        }
        // Sleep in short slices so drain is not held up by the interval.
        let mut slept = Duration::ZERO;
        while slept < interval && !shutdown.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(20).min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// The routing key of one request: the first module operand's content
/// hash (from its body or its 8-byte hash section), falling back to a
/// hash of the whole payload for section-less requests.
fn routing_key(payload: &[u8]) -> u64 {
    if let Ok(sections) = proto2::sections(payload) {
        for (id, bytes) in &sections {
            if proto2::hash_of_body(*id).is_some() {
                return module_hash(bytes);
            }
            if proto2::hash_target(*id).is_some() && bytes.len() == 8 {
                return u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            }
        }
    }
    fnv1a(&[b"route", payload])
}

/// The memo key of one request: opcode + full payload.
fn memo_key(kind: u8, payload: &[u8]) -> u64 {
    fnv1a(&[b"memo", &[kind], payload])
}

/// One router connection: read `brs2` frames, route, respond.
fn route_connection(stream: TcpStream, state: &RouterState, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);
    // Shard connections are pooled per client connection: steady-state
    // forwarding reuses them, and the shard's per-connection intern
    // beliefs stay coherent with this client's.
    let mut pool: HashMap<usize, Client2> = HashMap::new();
    loop {
        reader.reset();
        let any = match proto::read_any(&mut reader) {
            Ok(Some(any)) => any,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || br_serve::terminated() {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = Frame2::error(proto2::code::PROTOCOL, &format!("protocol error: {e}"))
                    .write_to(&mut writer);
                return;
            }
            Err(_) => return,
        };
        let keep_going = match any {
            AnyFrame::OversizedV1 { kind, len } => {
                state.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                Frame::text(
                    "error",
                    &format!(
                        "oversized frame: {kind} declared {len} bytes, limit is {MAX_PAYLOAD}\n"
                    ),
                )
                .write_to(&mut writer)
                .is_ok()
            }
            AnyFrame::OversizedV2 { kind, len } => {
                state.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                Frame2::error(
                    proto2::code::OVERSIZED,
                    &format!(
                        "oversized frame: opcode {kind} declared {len} bytes, limit is {MAX_PAYLOAD}"
                    ),
                )
                .write_to(&mut writer)
                .is_ok()
            }
            AnyFrame::V1(request) => {
                state.metrics.mismatch.fetch_add(1, Ordering::Relaxed);
                Frame::text(
                    "error",
                    &format!(
                        "protocol mismatch: the cluster router speaks brs2 (binary), \
                         the request was brs1 {:?}; reconnect with brs2 framing\n",
                        request.kind
                    ),
                )
                .write_to(&mut writer)
                .is_ok()
            }
            AnyFrame::V2(request) => {
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let (response, keep_going) = route_frame(&request, state, shutdown, &mut pool);
                response.write_to(&mut writer).is_ok() && keep_going
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Dispatch one `brs2` frame at the router: control verbs answered
/// locally, compute verbs routed, batches split per shard.
fn route_frame(
    request: &Frame2,
    state: &RouterState,
    shutdown: &AtomicBool,
    pool: &mut HashMap<usize, Client2>,
) -> (Frame2, bool) {
    match request.kind {
        proto2::kind::HEALTH => {
            if state.draining.load(Ordering::SeqCst) {
                (
                    Frame2::error(proto2::code::DRAINING, "router is draining"),
                    true,
                )
            } else {
                (Frame2::ok(0, b"ok\n".to_vec()), true)
            }
        }
        proto2::kind::METRICS => {
            use std::fmt::Write as _;
            let mut text = state.metrics.render();
            for (i, shard) in state.shards.iter().enumerate() {
                let _ = writeln!(
                    text,
                    "br_cluster_shard_alive{{shard=\"{i}\",addr=\"{}\"}} {}",
                    shard.addr,
                    u8::from(shard.alive.load(Ordering::SeqCst))
                );
            }
            (Frame2::ok(0, text.into_bytes()), true)
        }
        proto2::kind::SHUTDOWN => {
            shutdown.store(true, Ordering::SeqCst);
            state.draining.store(true, Ordering::SeqCst);
            (Frame2::ok(0, b"draining\n".to_vec()), false)
        }
        proto2::kind::BATCH => {
            let items = match batch_items(&request.payload) {
                Ok(items) => items,
                Err(e) => {
                    return (
                        Frame2::error(proto2::code::BAD_REQUEST, &format!("bad batch: {e}")),
                        true,
                    )
                }
            };
            let replies = route_batch(&items, state, pool);
            let mut payload = Vec::new();
            for reply in &replies {
                push_batch_reply(&mut payload, reply);
            }
            (
                Frame2 {
                    kind: proto2::kind::OK,
                    flags: proto2::flags::BATCH,
                    code: proto2::code::OK,
                    aux: 0,
                    payload,
                },
                true,
            )
        }
        kind => {
            let reply = route_item(kind, &request.payload, state, pool);
            (
                Frame2 {
                    kind: reply.kind,
                    flags: 0,
                    code: reply.code,
                    aux: reply.aux,
                    payload: reply.payload,
                },
                true,
            )
        }
    }
}

/// Split a batch by owning shard, forward each group as a sub-batch,
/// and reassemble the replies in request order. Memoized items are
/// answered without forwarding.
fn route_batch(
    items: &[(u8, &[u8])],
    state: &RouterState,
    pool: &mut HashMap<usize, Client2>,
) -> Vec<BatchReply> {
    let mut replies: Vec<Option<BatchReply>> = (0..items.len()).map(|_| None).collect();
    // shard -> (original item index, kind, payload)
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, (kind, payload)) in items.iter().enumerate() {
        if let Some(hit) = memo_lookup(*kind, payload, state) {
            replies[i] = Some(hit);
            continue;
        }
        let key = routing_key(payload);
        let order = state.candidate_order(key);
        let Some(&primary) = order.first() else {
            replies[i] = Some(BatchReply {
                kind: proto2::kind::ERROR,
                code: proto2::code::INTERNAL,
                aux: 0,
                payload: b"no shard available".to_vec(),
            });
            continue;
        };
        groups.entry(primary).or_default().push(i);
    }
    for (shard, indices) in groups {
        let mut payload = Vec::new();
        for &i in &indices {
            push_batch_item(&mut payload, items[i].0, items[i].1);
        }
        let sub_batch = Frame2 {
            kind: proto2::kind::BATCH,
            flags: proto2::flags::BATCH,
            code: 0,
            aux: 0,
            payload,
        };
        match forward_to(shard, &sub_batch, state, pool) {
            Some(response)
                if response.kind == proto2::kind::OK
                    && response.flags & proto2::flags::BATCH != 0 =>
            {
                match batch_replies(&response.payload) {
                    Ok(sub_replies) if sub_replies.len() == indices.len() => {
                        for (reply, &i) in sub_replies.into_iter().zip(&indices) {
                            finish_item(items[i].0, items[i].1, &reply, shard, state, pool);
                            replies[i] = Some(reply);
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        // The whole sub-batch failed (shard down or malformed answer):
        // retry each item individually so failover can re-route it.
        for &i in &indices {
            replies[i] = Some(route_item(items[i].0, items[i].1, state, pool));
        }
    }
    replies
        .into_iter()
        .map(|r| r.expect("every batch item answered"))
        .collect()
}

/// Route one request: memo, then the candidate walk with failover,
/// then post-processing (replication, memoization).
fn route_item(
    kind: u8,
    payload: &[u8],
    state: &RouterState,
    pool: &mut HashMap<usize, Client2>,
) -> BatchReply {
    if let Some(hit) = memo_lookup(kind, payload, state) {
        return hit;
    }
    let key = routing_key(payload);
    let request = Frame2 {
        kind,
        flags: 0,
        code: 0,
        aux: 0,
        payload: payload.to_vec(),
    };
    let order = state.candidate_order(key);
    for (attempt, &shard) in order.iter().enumerate() {
        if attempt > 0 {
            state.metrics.failovers.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(response) = forward_to(shard, &request, state, pool) {
            let reply = BatchReply {
                kind: response.kind,
                code: response.code,
                aux: response.aux,
                payload: response.payload,
            };
            finish_item(kind, payload, &reply, shard, state, pool);
            return reply;
        }
    }
    state.metrics.unrouteable.fetch_add(1, Ordering::Relaxed);
    BatchReply {
        kind: proto2::kind::ERROR,
        code: proto2::code::INTERNAL,
        aux: 0,
        payload: format!("no shard could serve the request (tried {})", order.len()).into_bytes(),
    }
}

/// Send one frame to a shard over its pooled connection (reconnecting
/// once on a stale connection). `None` = the shard failed.
fn forward_to(
    shard: usize,
    request: &Frame2,
    state: &RouterState,
    pool: &mut HashMap<usize, Client2>,
) -> Option<Frame2> {
    state.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
    let timeout = Duration::from_millis(state.config.shard_timeout_ms.max(100));
    for fresh in [false, true] {
        if fresh {
            pool.remove(&shard);
        }
        let client = match pool.entry(shard) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                match Client2::connect_with(
                    &state.shards[shard].addr,
                    Duration::from_millis(1_000),
                    Some(timeout),
                ) {
                    Ok(c) => e.insert(c),
                    Err(_) => continue,
                }
            }
        };
        match client.call(request) {
            Ok(response) => {
                state.shards[shard].record_success(&state.metrics);
                return Some(response);
            }
            Err(_) => {
                pool.remove(&shard);
            }
        }
    }
    state.shards[shard].record_failure(&state.metrics);
    None
}

/// Post-process a successful forward: replicate the cache entry to the
/// key's successor and feed the hot-key memo.
fn finish_item(
    kind: u8,
    payload: &[u8],
    reply: &BatchReply,
    served_by: usize,
    state: &RouterState,
    pool: &mut HashMap<usize, Client2>,
) {
    if reply.kind != proto2::kind::OK || reply.aux == 0 {
        return;
    }
    if state.config.replicate {
        let key = routing_key(payload);
        // Successor = next live candidate after the shard that served —
        // under failover that is where the key's traffic goes next.
        let successor = state
            .candidate_order(key)
            .into_iter()
            .find(|&s| s != served_by);
        if let Some(successor) = successor {
            let new = {
                let mut seen = state.replicated.lock().expect("replicated poisoned");
                if seen.len() > 65_536 {
                    seen.clear();
                }
                seen.insert((reply.aux, successor))
            };
            if new {
                let put = Frame2::request(
                    proto2::kind::CACHEPUT,
                    &[
                        (proto2::sec::KEY, format!("{:016x}", reply.aux).as_bytes()),
                        (proto2::sec::BODY, &reply.payload),
                    ],
                );
                if let Some(response) = forward_to(successor, &put, state, pool) {
                    if response.kind == proto2::kind::OK {
                        state.metrics.replications.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    if state.config.hot_threshold > 0 {
        let mkey = memo_key(kind, payload);
        let mut memo = state.memo.lock().expect("memo poisoned");
        if memo.counts.len() > 65_536 {
            memo.counts.clear();
        }
        let count = memo.counts.entry(mkey).or_insert(0);
        *count += 1;
        if *count >= state.config.hot_threshold && memo.replies.len() < state.config.memo_capacity {
            memo.replies.entry(mkey).or_insert_with(|| reply.clone());
        }
    }
}

/// Answer from the hot-key memo, if this exact request is memoized.
fn memo_lookup(kind: u8, payload: &[u8], state: &RouterState) -> Option<BatchReply> {
    if state.config.hot_threshold == 0 {
        return None;
    }
    let memo = state.memo.lock().expect("memo poisoned");
    let hit = memo.replies.get(&memo_key(kind, payload)).cloned();
    if hit.is_some() {
        state.metrics.memo_hits.fetch_add(1, Ordering::Relaxed);
    }
    hit
}
