//! # br-cluster
//!
//! Sharded reordering service: N independent `br-serve` daemons behind
//! a consistent-hash router, speaking the `brs2` binary protocol.
//!
//! One daemon's throughput ceiling is one machine's worker pool and one
//! response cache. The cluster keeps the daemon untouched and adds the
//! scale-out pieces around it:
//!
//! * [`ring`] — a consistent-hash ring (64 virtual nodes per shard)
//!   over **module content hashes**, so every request about a module
//!   lands on the shard that has it interned and its responses cached,
//!   and a membership change remaps only O(1/N) of the key space;
//! * [`router`] — the `brs2` front door: routes singles and splits
//!   batches per shard, fails over along the ring's candidate order,
//!   replicates cacheable responses to each key's ring successor
//!   (`cacheput`), memoizes hot keys router-side, probes shard health
//!   (two strikes ejects, one success readmits), and drains gracefully
//!   — propagating `shutdown` to every shard;
//! * [`supervisor`] — `brc cluster`: spawns the shards as child
//!   processes of the current executable, waits for readiness, runs
//!   the router in-process, and reaps the tree on drain.
//!
//! Responses are byte-identical to a single daemon's — the router
//! forwards frames verbatim in both directions — so everything pinned
//! about `brs1`/`brs2` equivalence holds through the cluster too.

pub mod ring;
pub mod router;
pub mod supervisor;

pub use ring::{Ring, VNODES};
pub use router::{Router, RouterConfig, RouterMetrics};
pub use supervisor::{run_cluster, ClusterConfig};
