//! Cluster supervision: spawn N shard daemons as child processes, run
//! the router in this process, and shepherd the whole tree through a
//! graceful drain.
//!
//! The shards are plain `brc serve` processes — re-invocations of the
//! current executable — each on its own port with its own cache
//! directory (`<cache>/shard-<i>`), so a shard crash is isolated by
//! the OS and a restart warms up from its own disk cache (plus the
//! entries the router replicated to it). The supervisor:
//!
//! 1. spawns the shards and waits for each to answer a health probe;
//! 2. starts the [`Router`] over them and blocks in its accept loop;
//! 3. on SIGTERM/SIGINT or a `shutdown` frame, the router drains,
//!    propagates the shutdown to every shard, and the supervisor
//!    reaps the children (escalating to kill only if a child ignores
//!    the drain).

use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use br_serve::proto2::{self, Client2, Frame2};

use crate::router::{Router, RouterConfig};

/// Cluster topology and per-shard daemon knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Router listen address.
    pub router_addr: String,
    /// Number of shard daemons to spawn.
    pub shards: usize,
    /// First shard port; shard `i` listens on `base_port + i`.
    pub base_port: u16,
    /// Root cache directory (each shard gets `shard-<i>` under it);
    /// `None` disables shard caches.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads per shard (0 = one per core).
    pub threads_per_shard: usize,
    /// Admission-queue depth per shard.
    pub queue: usize,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: u64,
    /// Replicate cacheable responses to ring successors.
    pub replicate: bool,
    /// Hot-key memo threshold (0 = off).
    pub hot_threshold: u32,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            router_addr: "127.0.0.1:7410".to_string(),
            shards: 2,
            base_port: 7421,
            cache_dir: Some(PathBuf::from("target/cluster-cache")),
            threads_per_shard: 0,
            queue: 128,
            deadline_ms: 10_000,
            replicate: true,
            hot_threshold: 8,
        }
    }
}

impl ClusterConfig {
    /// The shard addresses this topology produces.
    pub fn shard_addrs(&self) -> Vec<String> {
        (0..self.shards)
            .map(|i| format!("127.0.0.1:{}", self.base_port + i as u16))
            .collect()
    }
}

/// How long a spawned shard gets to answer its first health probe.
const READINESS_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a draining shard gets to exit before it is killed.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Wait until the daemon at `addr` answers a health probe.
fn wait_ready(addr: &str, deadline: Instant) -> io::Result<()> {
    loop {
        let healthy = Client2::connect_with(
            addr,
            Duration::from_millis(250),
            Some(Duration::from_millis(1_000)),
        )
        .and_then(|mut c| c.call(&Frame2::request(proto2::kind::HEALTH, &[])))
        .map(|r| r.kind == proto2::kind::OK)
        .unwrap_or(false);
        if healthy {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(io::Error::other(format!(
                "shard at {addr} did not become healthy within {READINESS_TIMEOUT:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Spawn one shard daemon as a child process.
fn spawn_shard(
    config: &ClusterConfig,
    index: usize,
    addr: &str,
) -> io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--addr")
        .arg(addr)
        .arg("--threads")
        .arg(config.threads_per_shard.to_string())
        .arg("--queue")
        .arg(config.queue.to_string())
        .arg("--deadline-ms")
        .arg(config.deadline_ms.to_string());
    match &config.cache_dir {
        Some(root) => {
            let dir = root.join(format!("shard-{index}"));
            std::fs::create_dir_all(&dir)?;
            cmd.arg("--cache").arg(dir);
        }
        None => {
            cmd.arg("--no-cache");
        }
    }
    cmd.stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit());
    cmd.spawn()
}

/// Run the cluster: spawn shards, wait for readiness, serve through
/// the router until drain, then reap the children. Returns when the
/// whole tree has exited.
///
/// # Errors
///
/// Spawn failures, readiness timeouts, and fatal router errors. On
/// error the already-spawned children are killed before returning.
pub fn run_cluster(config: &ClusterConfig) -> io::Result<()> {
    let addrs = config.shard_addrs();
    let mut children: Vec<std::process::Child> = Vec::new();
    let result = (|| {
        for (i, addr) in addrs.iter().enumerate() {
            let child = spawn_shard(config, i, addr)?;
            eprintln!("cluster: shard {i} pid {} addr {addr}", child.id());
            children.push(child);
        }
        let deadline = Instant::now() + READINESS_TIMEOUT;
        for addr in &addrs {
            wait_ready(addr, deadline)?;
        }
        let router = Router::start(RouterConfig {
            addr: config.router_addr.clone(),
            shards: addrs.clone(),
            replicate: config.replicate,
            hot_threshold: config.hot_threshold,
            ..RouterConfig::default()
        })?;
        eprintln!(
            "cluster: router listening on {} ({} shard(s))",
            router.addr(),
            addrs.len()
        );
        br_serve::install_signal_handler();
        router.wait()
    })();
    // Reap (or, on error / stubborn children, kill) the shard tree.
    let drain_deadline = Instant::now() + DRAIN_TIMEOUT;
    for (i, child) in children.iter_mut().enumerate() {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    eprintln!("cluster: shard {i} exited: {status}");
                    break;
                }
                Ok(None) if result.is_ok() && Instant::now() < drain_deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Ok(None) => {
                    eprintln!("cluster: shard {i} ignored the drain; killing it");
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                Err(_) => break,
            }
        }
    }
    result
}
