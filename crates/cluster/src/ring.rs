//! Consistent-hash ring with virtual nodes.
//!
//! Routing keys are 64-bit content hashes (a module's [`br_serve::proto2::module_hash`]
//! or a response-cache key), so requests about the same module always
//! land on the same shard — which is what makes shard-local module
//! interning and response caching effective in a cluster.
//!
//! Each shard owns [`VNODES`] points on the ring, placed by hashing
//! `(shard id, vnode index)` — *not* the shard count — so adding a
//! shard only claims keys from its new points' predecessors and
//! removing one only releases its own points. That is the classic
//! consistent-hashing bound: one membership change remaps O(1/N) of the
//! key space, pinned by a property test in the cluster test suite.
//!
//! Ejection (a shard failing health probes) deliberately does **not**
//! rebuild the ring: the router walks a key's candidate order and skips
//! dead shards, so only keys whose primary died move — to exactly the
//! successor that holds their replicated cache entries — and they move
//! back on readmission.

use br_sweep::cache::fnv1a;

/// Virtual nodes per shard. 64 keeps the per-shard load imbalance in
/// the few-percent range while the full ring (shards x 64 points)
/// stays small enough to walk without indexing tricks.
pub const VNODES: usize = 64;

/// The ring: every shard's virtual-node points, sorted.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build the ring for shards `0..shards`.
    pub fn new(shards: usize) -> Ring {
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let point = fnv1a(&[
                    b"ring",
                    &(shard as u64).to_le_bytes(),
                    &(vnode as u64).to_le_bytes(),
                ]);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The distinct shards in ring order starting at `key`'s point:
    /// index 0 is the primary owner, index 1 the successor (where the
    /// primary's cache entries are replicated), and the rest the
    /// failover order. Always lists every shard.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        let mut out = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                out.push(shard);
                if out.len() == self.shards {
                    break;
                }
            }
        }
        out
    }

    /// The primary owner of `key`.
    pub fn primary(&self, key: u64) -> usize {
        self.candidates(key)[0]
    }

    /// The replica target for `key` (`None` on a single-shard ring).
    pub fn successor(&self, key: u64) -> Option<usize> {
        self.candidates(key).get(1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny seeded LCG so the key sample is deterministic.
    pub(crate) fn lcg_keys(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn candidates_are_distinct_exhaustive_and_stable() {
        let ring = Ring::new(5);
        for key in lcg_keys(7, 200) {
            let c = ring.candidates(key);
            assert_eq!(c.len(), 5);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "candidates must be distinct");
            assert_eq!(c, ring.candidates(key), "routing must be deterministic");
            assert_eq!(ring.primary(key), c[0]);
            assert_eq!(ring.successor(key), Some(c[1]));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(4);
        let mut owned = [0u32; 4];
        for key in lcg_keys(11, 8000) {
            owned[ring.primary(key)] += 1;
        }
        for (shard, n) in owned.iter().enumerate() {
            // Perfect balance is 2000 per shard; virtual nodes keep the
            // skew well under 2x.
            assert!(
                (1000..3000).contains(n),
                "shard {shard} owns {n} of 8000 keys — ring is badly skewed: {owned:?}"
            );
        }
    }

    #[test]
    fn adding_one_shard_remaps_at_most_two_nths_of_keys() {
        for n in [3usize, 5, 8] {
            let before = Ring::new(n);
            let after = Ring::new(n + 1);
            let keys = lcg_keys(42, 10_000);
            let moved = keys
                .iter()
                .filter(|&&k| before.primary(k) != after.primary(k))
                .count();
            let bound = 2 * keys.len() / (n + 1);
            assert!(
                moved <= bound,
                "{n} -> {} shards moved {moved} of {} keys (bound {bound})",
                n + 1,
                keys.len()
            );
            // And every moved key moved *to the new shard*, not between
            // existing ones.
            for &k in &keys {
                if before.primary(k) != after.primary(k) {
                    assert_eq!(after.primary(k), n, "keys may only move to the new shard");
                }
            }
        }
    }

    #[test]
    fn ejecting_a_shard_moves_only_its_keys_to_their_successor() {
        let ring = Ring::new(4);
        let dead = 2usize;
        for key in lcg_keys(99, 4000) {
            let candidates = ring.candidates(key);
            let with_dead: Vec<usize> = candidates.iter().copied().filter(|&s| s != dead).collect();
            if candidates[0] == dead {
                // Keys owned by the dead shard fall to their successor —
                // the shard already holding their replicated entries.
                assert_eq!(with_dead[0], candidates[1]);
            } else {
                assert_eq!(with_dead[0], candidates[0], "other keys must not move");
            }
        }
    }
}
