//! Cluster end-to-end tests: real shard daemons (in-process servers on
//! real sockets) behind a real router.
//!
//! The contracts pinned here:
//!
//! * a reorder served through the router is **byte-identical** to a
//!   single daemon's answer and to the in-process pipeline, proof
//!   certificates included — batched or not;
//! * a cacheable response is replicated to its ring successor, and
//!   after the primary shard is killed the same request is served from
//!   the replica (a cache hit on the successor, a failover at the
//!   router, zero client-visible errors);
//! * a request repeated past the hot threshold is answered from the
//!   router's memo without touching a shard;
//! * `brs1` frames draw a structured mismatch error naming both
//!   protocols, and the same connection then succeeds with `brs2`;
//! * draining the router propagates the shutdown to every shard.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use br_cluster::ring::Ring;
use br_cluster::router::{Router, RouterConfig, RouterMetrics};
use br_ir::print_module;
use br_minic::{compile, HeuristicSet, Options};
use br_serve::proto::Frame;
use br_serve::proto2::{self, module_hash, Client2, Frame2, ModuleRef};
use br_serve::server::{ServeConfig, Server};

struct Shard {
    addr: String,
    metrics: Arc<br_serve::metrics::Metrics>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

fn start_shard(cache_dir: Option<std::path::PathBuf>) -> Shard {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        cache_dir,
        ..ServeConfig::default()
    })
    .expect("bind shard");
    let addr = server.addr().to_string();
    let metrics = server.metrics();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.wait().expect("clean shard shutdown"));
    Shard {
        addr,
        metrics,
        shutdown,
        thread,
    }
}

fn start_router(shards: &[&Shard], config: RouterConfig) -> (Router, String) {
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shards.iter().map(|s| s.addr.clone()).collect(),
        ..config
    })
    .expect("bind router");
    let addr = router.addr().to_string();
    (router, addr)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("br-cluster-it-{tag}-{}", std::process::id()))
}

fn workload_operands(name: &str, train_size: usize) -> (Arc<String>, Vec<u8>) {
    let w = br_workloads::by_name(name).expect("workload exists");
    let mut module =
        compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    br_opt::optimize(&mut module);
    (
        Arc::new(print_module(&module)),
        w.training_input(train_size),
    )
}

fn shutdown_router(addr: &str) {
    let mut c = Client2::connect(addr).expect("connect for shutdown");
    let bye = c
        .call(&Frame2::request(proto2::kind::SHUTDOWN, &[]))
        .expect("shutdown answered");
    assert_eq!(bye.kind, proto2::kind::OK, "{}", bye.payload_text());
}

fn router_counter(addr: &str, name: &str) -> u64 {
    let mut c = Client2::connect(addr).expect("connect for metrics");
    let m = c
        .call(&Frame2::request(proto2::kind::METRICS, &[]))
        .expect("metrics answered");
    assert_eq!(m.kind, proto2::kind::OK);
    RouterMetrics::parse_counter(&m.payload_text(), name)
        .unwrap_or_else(|| panic!("counter {name} missing from:\n{}", m.payload_text()))
}

#[test]
fn routed_reorder_is_byte_identical_to_single_daemon_and_in_process() {
    let shard_a = start_shard(None);
    let shard_b = start_shard(None);
    let lone = start_shard(None);
    let (router, router_addr) = start_router(
        &[&shard_a, &shard_b],
        RouterConfig {
            replicate: false,
            hot_threshold: 0,
            ..RouterConfig::default()
        },
    );
    let router_thread = std::thread::spawn(move || router.wait().expect("router drains"));

    let mut via_router = Client2::connect(&router_addr).expect("connect router");
    let mut direct = Client2::connect(&lone.addr).expect("connect lone daemon");
    for name in ["wc", "cb", "grep"] {
        let (module_text, train) = workload_operands(name, 512);
        let modules = vec![ModuleRef::new(
            proto2::sec::MODULE,
            Arc::clone(&module_text),
        )];
        let plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &train)];
        let routed = via_router
            .call_interned(proto2::kind::REORDER, &modules, &plain)
            .expect("routed call");
        assert_eq!(
            routed.kind,
            proto2::kind::OK,
            "{name}: {}",
            routed.payload_text()
        );
        let lone_response = direct
            .call_interned(proto2::kind::REORDER, &modules, &plain)
            .expect("direct call");
        assert_eq!(
            routed.payload, lone_response.payload,
            "{name}: the cluster must answer byte-identically to a single daemon"
        );

        // And both match the in-process pipeline, certificates included.
        let as_v1 = Frame {
            kind: "ok".to_string(),
            payload: routed.payload.clone(),
        };
        let sections = as_v1.sections().expect("structured response");
        let served = br_serve::proto::section(&sections, "module")
            .expect("module section")
            .text()
            .expect("utf8");
        let w = br_workloads::by_name(name).unwrap();
        let mut module =
            compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
        br_opt::optimize(&mut module);
        let opts = br_reorder::ReorderOptions {
            validate: true,
            certify: true,
            ..br_reorder::ReorderOptions::default()
        };
        let local = br_reorder::reorder_module(&module, &train, &opts).expect("pipeline runs");
        assert_eq!(
            served,
            print_module(&local.module),
            "{name}: routed answer must match the in-process pipeline bit-for-bit"
        );
        let certs = br_serve::proto::section(&sections, "certs").expect("certs section");
        assert!(!certs.bytes.is_empty(), "{name}: certs must travel");
    }

    // Batched through the router: same bytes, split across shards.
    let (wc_text, wc_train) = workload_operands("wc", 512);
    let (cb_text, cb_train) = workload_operands("cb", 512);
    let wc_modules = vec![ModuleRef::new(proto2::sec::MODULE, wc_text)];
    let cb_modules = vec![ModuleRef::new(proto2::sec::MODULE, cb_text)];
    let wc_plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &wc_train)];
    let cb_plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &cb_train)];
    let replies = via_router
        .call_batch(&[
            (proto2::kind::REORDER, &wc_modules, &wc_plain),
            (proto2::kind::REORDER, &cb_modules, &cb_plain),
        ])
        .expect("batched call");
    let mut direct2 = Client2::connect(&lone.addr).expect("connect lone daemon");
    for (i, (k, modules, plain)) in [
        (proto2::kind::REORDER, &wc_modules, &wc_plain),
        (proto2::kind::REORDER, &cb_modules, &cb_plain),
    ]
    .iter()
    .enumerate()
    {
        assert_eq!(replies[i].kind, proto2::kind::OK);
        let lone_reply = direct2.call_interned(*k, modules, plain).expect("direct");
        assert_eq!(
            replies[i].payload, lone_reply.payload,
            "batch item {i}: routed batch must be byte-identical"
        );
    }

    // Both shards did real work (the ring spread the modules).
    let served_a = shard_a.metrics.requests_total();
    let served_b = shard_b.metrics.requests_total();
    assert!(
        served_a + served_b >= 5,
        "shards served {served_a} + {served_b} requests"
    );

    shutdown_router(&router_addr);
    router_thread.join().expect("router thread");
    // Drain propagated: the shards' wait() loops observe the shutdown.
    shard_a.thread.join().expect("shard a drained");
    shard_b.thread.join().expect("shard b drained");
    lone.shutdown.store(true, Ordering::SeqCst);
    lone.thread.join().expect("lone daemon drained");
}

#[test]
fn replicated_cache_entries_survive_killing_the_primary_shard() {
    let cache_a = temp_dir("repl-a");
    let cache_b = temp_dir("repl-b");
    let _ = std::fs::remove_dir_all(&cache_a);
    let _ = std::fs::remove_dir_all(&cache_b);
    let shards = [
        start_shard(Some(cache_a.clone())),
        start_shard(Some(cache_b.clone())),
    ];
    let (router, router_addr) = start_router(
        &[&shards[0], &shards[1]],
        RouterConfig {
            replicate: true,
            hot_threshold: 0,
            probe_interval_ms: 50,
            ..RouterConfig::default()
        },
    );
    let router_thread = std::thread::spawn(move || router.wait().expect("router drains"));

    let (module_text, train) = workload_operands("wc", 512);
    let modules = vec![ModuleRef::new(
        proto2::sec::MODULE,
        Arc::clone(&module_text),
    )];
    let plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &train)];
    let ring = Ring::new(2);
    let primary = ring.primary(module_hash(module_text.as_bytes()));
    let successor = 1 - primary;

    let mut client = Client2::connect(&router_addr).expect("connect router");
    let first = client
        .call_interned(proto2::kind::REORDER, &modules, &plain)
        .expect("first call");
    assert_eq!(first.kind, proto2::kind::OK, "{}", first.payload_text());
    assert_ne!(first.aux, 0, "cacheable response carries its key");
    assert_eq!(
        router_counter(&router_addr, "replications"),
        1,
        "the response must be replicated to the ring successor"
    );
    let successor_hits_before = shards[successor].metrics.cache_hits.load(Ordering::Relaxed);

    // Kill the primary: drain it directly, bypassing the router.
    shards[primary].shutdown.store(true, Ordering::SeqCst);
    // The shard's accept loop polls every ~20 ms; its connection
    // threads notice within their 200 ms read timeout.
    std::thread::sleep(Duration::from_millis(500));

    // Same request again: fails over to the successor and is answered
    // from the replicated cache entry — byte-identical, no recompute.
    let survived = client
        .call_interned(proto2::kind::REORDER, &modules, &plain)
        .expect("failover call");
    assert_eq!(
        survived.kind,
        proto2::kind::OK,
        "request must survive the primary's death: {}",
        survived.payload_text()
    );
    assert_eq!(
        survived.payload, first.payload,
        "replica must be byte-identical"
    );
    // Either the send failed over mid-request, or the prober had
    // already ejected the corpse and routing skipped it up front —
    // both are the designed reaction to a dead primary.
    let failovers = router_counter(&router_addr, "failovers");
    let ejections = router_counter(&router_addr, "ejections");
    assert!(
        failovers >= 1 || ejections >= 1,
        "the router must have routed around the dead primary (failovers {failovers}, ejections {ejections})"
    );
    let successor_hits_after = shards[successor].metrics.cache_hits.load(Ordering::Relaxed);
    assert!(
        successor_hits_after > successor_hits_before,
        "the successor must serve from the replicated entry (hits {successor_hits_before} -> {successor_hits_after})"
    );

    // The prober (50 ms interval, two strikes) has ejected the corpse.
    for _ in 0..100 {
        if router_counter(&router_addr, "ejections") >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        router_counter(&router_addr, "ejections") >= 1,
        "prober must eject"
    );

    shutdown_router(&router_addr);
    router_thread.join().expect("router thread");
    let [a, b] = shards;
    a.thread.join().expect("shard a");
    b.thread.join().expect("shard b");
    let _ = std::fs::remove_dir_all(&cache_a);
    let _ = std::fs::remove_dir_all(&cache_b);
}

#[test]
fn hot_requests_are_answered_from_the_router_memo() {
    let shard = start_shard(None);
    let (router, router_addr) = start_router(
        &[&shard],
        RouterConfig {
            replicate: false,
            hot_threshold: 2,
            ..RouterConfig::default()
        },
    );
    let router_thread = std::thread::spawn(move || router.wait().expect("router drains"));

    let (module_text, train) = workload_operands("wc", 256);
    let modules = vec![ModuleRef::new(proto2::sec::MODULE, module_text)];
    let plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &train)];
    let mut client = Client2::connect(&router_addr).expect("connect");
    let mut payloads = Vec::new();
    for _ in 0..5 {
        let r = client
            .call_interned(proto2::kind::REORDER, &modules, &plain)
            .expect("call");
        assert_eq!(r.kind, proto2::kind::OK, "{}", r.payload_text());
        payloads.push(r.payload);
    }
    assert!(
        payloads.windows(2).all(|w| w[0] == w[1]),
        "answers must not drift"
    );
    let memo_hits = router_counter(&router_addr, "memo_hits");
    assert!(
        memo_hits >= 2,
        "repeats past the threshold must be served router-side (memo_hits {memo_hits})"
    );

    shutdown_router(&router_addr);
    router_thread.join().expect("router thread");
    shard.thread.join().expect("shard drained");
}

#[test]
fn brs1_frame_draws_structured_mismatch_and_connection_recovers_with_brs2() {
    let shard = start_shard(None);
    let (router, router_addr) = start_router(&[&shard], RouterConfig::default());
    let router_thread = std::thread::spawn(move || router.wait().expect("router drains"));

    let mut stream = std::net::TcpStream::connect(&router_addr).expect("connect");
    Frame::text("health", "")
        .write_to(&mut stream)
        .expect("send v1");
    let refused = Frame::read_from(&mut stream)
        .expect("answered in v1")
        .expect("not EOF");
    assert_eq!(refused.kind, "error");
    let text = refused.payload_text();
    assert!(
        text.contains("brs2") && text.contains("brs1"),
        "mismatch must name both protocols: {text}"
    );
    // Same connection, correct protocol: routed and served.
    Frame2::request(proto2::kind::HEALTH, &[])
        .write_to(&mut stream)
        .expect("send v2");
    let ok = Frame2::read_from(&mut stream).expect("v2 answer");
    assert_eq!(ok.kind, proto2::kind::OK);
    drop(stream);
    assert_eq!(router_counter(&router_addr, "mismatch"), 1);

    shutdown_router(&router_addr);
    router_thread.join().expect("router thread");
    shard.thread.join().expect("shard drained");
}
