//! The 10x acceptance bench: a warm cluster behind the router must
//! sustain >= 10,000 reorder requests/second — ten times the PR-5
//! single-daemon closed-loop baseline of ~1,000 req/s.
//!
//! Ignored by default (it is a benchmark, not a correctness test);
//! run it in release mode:
//!
//! ```text
//! cargo test -p br-cluster --release --test throughput -- --ignored --nocapture
//! ```
//!
//! Where the 10x comes from, on one box: the `brs2` binary framing
//! removes text parsing, batching amortizes a round trip over 64
//! requests, warm shard response caches remove recompute, and the
//! router's hot-key memo serves repeats without a shard round trip at
//! all. The numbers are recorded in EXPERIMENTS.md §"Cluster".

use br_cluster::router::{Router, RouterConfig};
use br_serve::loadgen::{run_loadgen, LoadgenConfig};
use br_serve::server::{ServeConfig, Server};

#[test]
#[ignore = "benchmark: run in release with -- --ignored"]
fn warm_cluster_sustains_10x_the_single_daemon_baseline() {
    let mut shards = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue: 512,
            cache_dir: None,
            ..ServeConfig::default()
        })
        .expect("bind shard");
        addrs.push(server.addr().to_string());
        shards.push((
            server.shutdown_handle(),
            std::thread::spawn(move || server.wait().expect("shard drains")),
        ));
    }
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: addrs,
        replicate: true,
        hot_threshold: 2,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let router_addr = router.addr().to_string();
    let router_thread = std::thread::spawn(move || router.wait().expect("router drains"));

    // Warm pass: every distinct request computed once, shard caches and
    // the router memo populated.
    let warm = LoadgenConfig {
        addr: router_addr.clone(),
        connections: 4,
        passes: 3,
        train_size: 512,
        input_size: 512,
        reorder_only: true,
        shutdown_after: false,
        brs2: true,
        batch: 1,
    };
    let warm_report = run_loadgen(&warm).expect("warm pass");
    assert_eq!(warm_report.errors, 0, "{:?}", warm_report.error_samples);

    // Measured pass: closed loop, 64-deep batches.
    let measured = LoadgenConfig {
        passes: 200,
        batch: 64,
        ..warm
    };
    let report = run_loadgen(&measured).expect("measured pass");
    assert_eq!(report.errors, 0, "{:?}", report.error_samples);
    assert_eq!(report.shed, 0, "shed under closed-loop warm load");
    println!(
        "cluster throughput: {:.1} req/s over {} requests in {:.2?}",
        report.throughput(),
        report.sent,
        report.elapsed
    );
    assert!(
        report.throughput() >= 10_000.0,
        "sustained {:.1} req/s < 10,000 (10x the PR-5 baseline) over {} requests in {:.2?}",
        report.throughput(),
        report.sent,
        report.elapsed
    );

    let mut bye = br_serve::Client2::connect(&router_addr).expect("connect");
    let drained = bye
        .call(&br_serve::Frame2::request(
            br_serve::proto2::kind::SHUTDOWN,
            &[],
        ))
        .expect("shutdown answered");
    assert_eq!(drained.kind, br_serve::proto2::kind::OK);
    router_thread.join().expect("router thread");
    for (_, thread) in shards {
        thread.join().expect("shard drained");
    }
}
