//! Content-addressed artifact cache.
//!
//! Every expensive pipeline stage (training/reorder, measurement) is
//! keyed by a 64-bit FNV-1a hash over *everything that determines its
//! result*: a stage tag, a format version, the printed IR of the input
//! module, the relevant option strings, and the raw input bytes. Two
//! sweep cells that agree on all of those produce the same artifact, so
//! the stage is computed once and replayed from disk everywhere else —
//! including across separate sweep invocations.
//!
//! Artifacts are small versioned text files (see [`crate::artifact`]);
//! anything that fails to parse is treated as a miss and recomputed, so
//! a stale or truncated cache can only cost time, never correctness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Incremented whenever an artifact format or a stage's semantics
/// change, so old cache directories are silently invalidated.
/// (`v2`: reorder artifacts carry proof certificates. `v3`: sequence
/// records carry the deployed dispatch structure — Set IV.)
pub const FORMAT_VERSION: &str = "v3";

/// 64-bit FNV-1a over a sequence of length-delimited parts.
///
/// Parts are length-delimited (the length bytes are hashed before the
/// part) so `["ab", "c"]` and `["a", "bc"]` cannot collide by
/// concatenation.
pub fn fnv1a(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    h
}

/// An on-disk artifact store with hit/miss counters.
///
/// `None` as the directory disables the store (every lookup misses and
/// stores go nowhere) — used by `--no-cache` and by tests that want
/// cold-path behaviour.
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// A cache rooted at `dir`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn at(dir: &Path) -> io::Result<ArtifactCache> {
        fs::create_dir_all(dir)?;
        Ok(ArtifactCache {
            dir: Some(dir.to_path_buf()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// A disabled cache: every lookup is a miss, nothing is written.
    pub fn disabled() -> ArtifactCache {
        ArtifactCache {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn path(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.art")))
    }

    /// Look up an artifact; counts a hit or a miss.
    pub fn get(&self, key: u64) -> Option<String> {
        let text = self.path(key).and_then(|p| fs::read_to_string(p).ok());
        match &text {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        text
    }

    /// Store an artifact. Write failures are deliberately swallowed: a
    /// read-only or full cache directory degrades to recomputation.
    pub fn put(&self, key: u64, text: &str) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let Some(path) = self.path(key) else { return };
        // Write-then-rename so concurrent writers of the same key (or a
        // reader racing a writer) never observe a torn artifact. The
        // temp name must be unique per *attempt*, not per content: two
        // writers racing identical bytes would otherwise share a temp
        // file and could publish a torn interleaving of two writes.
        let tmp = path.with_extension(format!(
            "tmp{:x}-{:x}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// A hit/miss counter can be recorded retroactively when a cached
    /// artifact turns out to be unparseable (counted as a hit by
    /// [`ArtifactCache::get`] but actually recomputed).
    pub fn demote_hit(&self) {
        self.hits.fetch_sub(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_length_delimited() {
        assert_ne!(fnv1a(&[b"ab", b"c"]), fnv1a(&[b"a", b"bc"]));
        assert_ne!(fnv1a(&[b"ab"]), fnv1a(&[b"ab", b""]));
        assert_eq!(fnv1a(&[b"ab", b"c"]), fnv1a(&[b"ab", b"c"]));
    }

    #[test]
    fn disabled_cache_always_misses() {
        let c = ArtifactCache::disabled();
        c.put(1, "text");
        assert_eq!(c.get(1), None);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn roundtrip_and_counters() {
        let dir = std::env::temp_dir().join(format!("br-sweep-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let c = ArtifactCache::at(&dir).expect("cache dir");
        assert_eq!(c.get(42), None);
        c.put(42, "hello\n");
        assert_eq!(c.get(42).as_deref(), Some("hello\n"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }
}
