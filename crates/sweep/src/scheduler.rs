//! A work-stealing-free, dependency-free parallel map.
//!
//! The sweep grid is an array of independent cells, so scheduling needs
//! nothing fancier than an atomic cursor over the work list: each worker
//! repeatedly claims the next unclaimed index and runs it. Cells finish
//! in a nondeterministic order, but every result is delivered **by
//! index**, so the output vector — and everything derived from it — is
//! identical no matter how many workers ran or how the OS scheduled
//! them. That property is what lets `brc sweep --threads N` promise
//! byte-identical result files for every `N`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`parallel_map`] with per-item panic isolation: an item whose `f`
/// panics yields `Err(panic message)` in its slot, and the worker that
/// caught it moves on to the next item — one poisoned cell cannot take
/// the rest of the grid down with it.
pub fn parallel_map_isolated<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run =
        |i: usize, item: &T| catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(panic_message);
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| run(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    let mut slots: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let run = &run;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A send can only fail if the receiver is gone, which
                // only happens when the scope is unwinding already.
                let _ = tx.send((i, run(i, item)));
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

/// Apply `f` to every item on `threads` workers, returning results in
/// item order regardless of completion order.
///
/// `threads == 1` runs inline on the caller's thread (no spawn), which
/// keeps single-threaded runs easy to profile and debug.
///
/// # Panics
///
/// Panics if a worker panics (the first panicking item's message is
/// re-raised on the caller's thread). Use [`parallel_map_isolated`]
/// when one item's panic must not abort the rest.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_isolated(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("worker panicked: {msg}")))
        .collect()
}

/// The worker count to use when the user did not pick one: the machine's
/// available parallelism, or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1, 2], 16, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn isolated_map_turns_panics_into_errors_and_keeps_going() {
        let items: Vec<usize> = (0..24).collect();
        for threads in [1, 4] {
            let out = parallel_map_isolated(&items, threads, |_, &x| {
                assert!(x % 5 != 3, "cell {x} poisoned");
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (x, r) in items.iter().zip(&out) {
                if x % 5 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains(&format!("cell {x} poisoned")), "{msg}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(x * 2));
                }
            }
        }
    }

    #[test]
    fn plain_map_still_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&[1, 2, 3], 2, |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("boom"), "{msg}");
    }
}
