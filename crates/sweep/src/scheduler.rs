//! A work-stealing-free, dependency-free parallel map.
//!
//! The sweep grid is an array of independent cells, so scheduling needs
//! nothing fancier than an atomic cursor over the work list: each worker
//! repeatedly claims the next unclaimed index and runs it. Cells finish
//! in a nondeterministic order, but every result is delivered **by
//! index**, so the output vector — and everything derived from it — is
//! identical no matter how many workers ran or how the OS scheduled
//! them. That property is what lets `brc sweep --threads N` promise
//! byte-identical result files for every `N`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Apply `f` to every item on `threads` workers, returning results in
/// item order regardless of completion order.
///
/// `threads == 1` runs inline on the caller's thread (no spawn), which
/// keeps single-threaded runs easy to profile and debug.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A send can only fail if the receiver is gone, which
                // only happens when the scope is unwinding already.
                let _ = tx.send((i, f(i, item)));
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

/// The worker count to use when the user did not pick one: the machine's
/// available parallelism, or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1, 2], 16, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
