//! Versioned text serialization for cached pipeline artifacts.
//!
//! Two artifact kinds exist, one per cached stage:
//!
//! * **reorder** — the result of the training + reordering stage: every
//!   [`SequenceRecord`], the proof certificates the certifying pipeline
//!   emitted for the committed reorderings, plus the reordered module as
//!   printed IR. The restored report carries the certificates (and the
//!   proven/value-class counts) but not the failure list — artifacts are
//!   only written for cleanly certified runs, so there is nothing to
//!   record. Carrying the certificates is what lets a warm sweep
//!   *re-check* every cached reordering with the independent
//!   `br_analysis::cert::check` before trusting the artifact.
//! * **measure** — the result of one measurement run: exit value, the
//!   eleven architectural counters, every predictor result, the static
//!   instruction count of the measured module, and the output bytes.
//!
//! Formats are line-oriented and human-inspectable on purpose: a cache
//! directory full of `*.art` files doubles as a record of what the sweep
//! actually computed. Any parse failure is reported as `None` and the
//! caller recomputes, so format evolution never corrupts results.

use br_ir::{parse_module, print_module, BlockId, FuncId};
use br_reorder::pipeline::{SequenceKind, SequenceRecord};
use br_reorder::{ReorderReport, SequenceCertificate, SequenceOutcome, ValidationSummary};
use br_vm::{ExecStats, PredictorConfig, PredictorResult, Scheme};

use crate::MeasuredCell;

fn scheme_str(s: Scheme) -> String {
    match s {
        Scheme::OneBit => "onebit".to_string(),
        Scheme::TwoBit => "twobit".to_string(),
        Scheme::Gshare(bits) => format!("gshare:{bits}"),
    }
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    match s {
        "onebit" => Some(Scheme::OneBit),
        "twobit" => Some(Scheme::TwoBit),
        _ => s.strip_prefix("gshare:")?.parse().ok().map(Scheme::Gshare),
    }
}

/// A stable one-line description of a predictor configuration — also
/// used as part of measurement cache keys.
pub fn predictor_str(c: &PredictorConfig) -> String {
    format!("{} {}", scheme_str(c.scheme), c.entries)
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Serialize a reorder report (sequence records + reordered module IR).
pub fn write_reorder(report: &ReorderReport) -> String {
    let mut out = format!("reorder {}\n", crate::cache::FORMAT_VERSION);
    out.push_str(&format!("sequences {}\n", report.sequences.len()));
    for s in &report.sequences {
        let kind = match s.kind {
            SequenceKind::RangeConditions => "range",
            SequenceKind::CommonSuccessor => "common",
        };
        let outcome = match s.outcome {
            SequenceOutcome::Reordered {
                new_branches,
                new_compares,
                original_cost,
                new_cost,
            } => format!("reordered {new_branches} {new_compares} {original_cost:?} {new_cost:?}"),
            SequenceOutcome::NeverExecuted => "never".to_string(),
            SequenceOutcome::NoImprovement => "noimp".to_string(),
        };
        out.push_str(&format!(
            "{kind} {} {} {} {} {} {} {outcome}\n",
            s.structure,
            s.func.0,
            s.head.0,
            s.original_branches,
            s.conditions,
            s.training_executions
        ));
    }
    let empty = Vec::new();
    let (proven, value_classes, certs) = match &report.validation {
        Some(v) => (v.proven, v.value_classes, &v.certificates),
        None => (0, 0, &empty),
    };
    out.push_str(&format!(
        "certs {} proven {proven} classes {value_classes}\n",
        certs.len()
    ));
    for c in certs {
        out.push_str(&format!(
            "cert {} {} {:016x} {}\n",
            c.func.0,
            c.head.0,
            c.sig,
            c.text.lines().count()
        ));
        out.push_str(&c.text);
        if !c.text.ends_with('\n') {
            out.push('\n');
        }
    }
    out.push_str("module\n");
    out.push_str(&print_module(&report.module));
    out
}

/// Restore a reorder report; `None` on any format mismatch.
pub fn read_reorder(text: &str) -> Option<ReorderReport> {
    let mut lines = text.lines();
    if lines.next()? != format!("reorder {}", crate::cache::FORMAT_VERSION) {
        return None;
    }
    let n: usize = lines.next()?.strip_prefix("sequences ")?.parse().ok()?;
    let mut sequences = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines.next()?;
        let mut f = line.split(' ');
        let kind = match f.next()? {
            "range" => SequenceKind::RangeConditions,
            "common" => SequenceKind::CommonSuccessor,
            _ => return None,
        };
        let structure = br_reorder::DispatchStructure::parse(f.next()?)?;
        let func = FuncId(f.next()?.parse().ok()?);
        let head = BlockId(f.next()?.parse().ok()?);
        let original_branches = f.next()?.parse().ok()?;
        let conditions = f.next()?.parse().ok()?;
        let training_executions = f.next()?.parse().ok()?;
        let outcome = match f.next()? {
            "reordered" => SequenceOutcome::Reordered {
                new_branches: f.next()?.parse().ok()?,
                new_compares: f.next()?.parse().ok()?,
                original_cost: f.next()?.parse().ok()?,
                new_cost: f.next()?.parse().ok()?,
            },
            "never" => SequenceOutcome::NeverExecuted,
            "noimp" => SequenceOutcome::NoImprovement,
            _ => return None,
        };
        sequences.push(SequenceRecord {
            kind,
            structure,
            func,
            head,
            original_branches,
            conditions,
            training_executions,
            outcome,
        });
    }
    let mut cf = lines.next()?.strip_prefix("certs ")?.split(' ');
    let n_certs: usize = cf.next()?.parse().ok()?;
    let proven: usize = cf
        .next()
        .filter(|&k| k == "proven")
        .and(cf.next())?
        .parse()
        .ok()?;
    let value_classes: usize = cf
        .next()
        .filter(|&k| k == "classes")
        .and(cf.next())?
        .parse()
        .ok()?;
    let mut certificates = Vec::with_capacity(n_certs);
    for _ in 0..n_certs {
        let mut f = lines.next()?.strip_prefix("cert ")?.split(' ');
        let func = FuncId(f.next()?.parse().ok()?);
        let head = BlockId(f.next()?.parse().ok()?);
        let sig = u64::from_str_radix(f.next()?, 16).ok()?;
        let cert_lines: usize = f.next()?.parse().ok()?;
        let mut cert_text = String::new();
        for _ in 0..cert_lines {
            cert_text.push_str(lines.next()?);
            cert_text.push('\n');
        }
        certificates.push(SequenceCertificate {
            func,
            head,
            text: cert_text,
            sig,
        });
    }
    if lines.next()? != "module" {
        return None;
    }
    let module_text = text.split_once("\nmodule\n")?.1;
    let module = parse_module(module_text).ok()?;
    Some(ReorderReport {
        module,
        sequences,
        validation: Some(ValidationSummary {
            proven,
            value_classes,
            failures: Vec::new(),
            certificates,
        }),
    })
}

/// Serialize one measured run plus the measured module's static size.
pub fn write_measure(cell: &MeasuredCell) -> String {
    let st = &cell.run.stats;
    let mut out = format!("measure {}\n", crate::cache::FORMAT_VERSION);
    out.push_str(&format!("exit {}\n", cell.run.exit));
    out.push_str(&format!("static {}\n", cell.static_size));
    out.push_str(&format!(
        "stats {} {} {} {} {} {} {} {} {} {} {}\n",
        st.insts,
        st.cond_branches,
        st.taken_branches,
        st.uncond_jumps,
        st.indirect_jumps,
        st.compares,
        st.loads,
        st.stores,
        st.calls,
        st.returns,
        st.delay_stalls
    ));
    out.push_str(&format!("predictors {}\n", cell.run.predictors.len()));
    for p in &cell.run.predictors {
        out.push_str(&format!(
            "{} {} {}\n",
            predictor_str(&p.config),
            p.predictions,
            p.mispredictions
        ));
    }
    out.push_str(&format!("output {}\n", hex(&cell.run.output)));
    out
}

/// Restore one measured run; `None` on any format mismatch.
pub fn read_measure(text: &str) -> Option<MeasuredCell> {
    let mut lines = text.lines();
    if lines.next()? != format!("measure {}", crate::cache::FORMAT_VERSION) {
        return None;
    }
    let exit = lines.next()?.strip_prefix("exit ")?.parse().ok()?;
    let static_size = lines.next()?.strip_prefix("static ")?.parse().ok()?;
    let mut nums = lines.next()?.strip_prefix("stats ")?.split(' ');
    let mut next = || -> Option<u64> { nums.next()?.parse().ok() };
    let stats = ExecStats {
        insts: next()?,
        cond_branches: next()?,
        taken_branches: next()?,
        uncond_jumps: next()?,
        indirect_jumps: next()?,
        compares: next()?,
        loads: next()?,
        stores: next()?,
        calls: next()?,
        returns: next()?,
        delay_stalls: next()?,
    };
    let n: usize = lines.next()?.strip_prefix("predictors ")?.parse().ok()?;
    let mut predictors = Vec::with_capacity(n);
    for _ in 0..n {
        let mut f = lines.next()?.split(' ');
        predictors.push(PredictorResult {
            config: PredictorConfig {
                scheme: parse_scheme(f.next()?)?,
                entries: f.next()?.parse().ok()?,
            },
            predictions: f.next()?.parse().ok()?,
            mispredictions: f.next()?.parse().ok()?,
        });
    }
    let output = unhex(lines.next()?.strip_prefix("output ")?)?;
    Some(MeasuredCell {
        run: br_harness::MeasuredRun {
            exit,
            output,
            stats,
            predictors,
        },
        static_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_roundtrips() {
        let cell = MeasuredCell {
            run: br_harness::MeasuredRun {
                exit: -3,
                output: vec![0, 255, 10, 65],
                stats: ExecStats {
                    insts: 1,
                    cond_branches: 2,
                    taken_branches: 3,
                    uncond_jumps: 4,
                    indirect_jumps: 5,
                    compares: 6,
                    loads: 7,
                    stores: 8,
                    calls: 9,
                    returns: 10,
                    delay_stalls: 11,
                },
                predictors: vec![
                    PredictorResult {
                        config: PredictorConfig {
                            scheme: Scheme::Gshare(6),
                            entries: 256,
                        },
                        predictions: 100,
                        mispredictions: 17,
                    },
                    PredictorResult {
                        config: PredictorConfig {
                            scheme: Scheme::TwoBit,
                            entries: 2048,
                        },
                        predictions: 100,
                        mispredictions: 4,
                    },
                ],
            },
            static_size: 321,
        };
        let text = write_measure(&cell);
        let back = read_measure(&text).expect("parses");
        assert_eq!(back.run.exit, cell.run.exit);
        assert_eq!(back.run.output, cell.run.output);
        assert_eq!(back.run.stats, cell.run.stats);
        assert_eq!(back.run.predictors, cell.run.predictors);
        assert_eq!(back.static_size, cell.static_size);
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        assert!(read_measure("measure v0\nexit 0\n").is_none());
        assert!(read_reorder("bogus").is_none());
        assert!(read_measure("").is_none());
        // A v1-era artifact (no certs block) must read as a miss.
        assert!(read_reorder("reorder v1\nsequences 0\nmodule\n").is_none());
    }

    #[test]
    fn reorder_artifact_roundtrips_certificates() {
        let w = br_workloads::by_name("wc").expect("wc exists");
        let mut m = br_minic::compile(
            w.source,
            &br_minic::Options::with_heuristics(br_minic::HeuristicSet::SET_I),
        )
        .expect("wc compiles");
        br_opt::optimize(&mut m);
        let opts = br_reorder::ReorderOptions {
            certify: true,
            ..Default::default()
        };
        let report =
            br_reorder::reorder_module(&m, &w.training_input(512), &opts).expect("pipeline runs");
        let summary = report.validation.as_ref().expect("certify mode validates");
        assert!(
            !summary.certificates.is_empty(),
            "wc must commit a certified reordering"
        );

        let text = write_reorder(&report);
        let back = read_reorder(&text).expect("parses");
        let restored = back.validation.as_ref().expect("certs restored");
        assert_eq!(restored.certificates, summary.certificates);
        assert_eq!(restored.proven, summary.proven);
        assert_eq!(restored.value_classes, summary.value_classes);
        for c in &restored.certificates {
            let checked = br_analysis::check(&c.text).expect("restored certificate checks");
            assert_eq!(checked.sig, c.sig);
        }
        assert_eq!(
            print_module(&back.module),
            print_module(&report.module),
            "module must survive the round trip"
        );
    }

    #[test]
    fn costs_roundtrip_exactly() {
        // f64 costs are serialized with Debug, which is shortest
        // round-trip: parsing must restore the identical bits.
        for v in [0.0f64, 1.5, 2.0 / 3.0, 1e-17, 123456.789] {
            let s = format!("{v:?}");
            let back: f64 = s.parse().expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }
}
