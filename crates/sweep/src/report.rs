//! Deterministic result-file writer.
//!
//! Everything written here is a pure function of the sweep grid and the
//! measured results: no timestamps, no timings, no thread counts, no
//! cache statistics. That is the engine's determinism contract — `brc
//! sweep --threads 1` and `--threads 16` must produce byte-identical
//! files, and CI diffs two runs to enforce it.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;

use br_harness::{csv, tables, SuiteResult};

use crate::{LayoutRow, StabilityRow, SweepConfig};

/// The suite Tables 5–7 are computed from: the paper used heuristic Set
/// II for its prediction and execution-time studies, so prefer it; fall
/// back to the first configured set on reduced grids.
fn timing_suite(suites: &[SuiteResult]) -> &SuiteResult {
    suites
        .iter()
        .find(|s| s.heuristics.name == "II")
        .unwrap_or(&suites[0])
}

/// The `FAILED cells` report section: empty when nothing failed, so a
/// clean run's report stays byte-identical to what it was before panic
/// isolation existed.
pub fn render_failed(failed: &[String]) -> String {
    if failed.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "FAILED cells ({}):", failed.len());
    for f in failed {
        let _ = writeln!(out, "  {f}");
    }
    let _ = writeln!(out, "Tables below aggregate the surviving cells only.");
    let _ = writeln!(out);
    out
}

/// The full human-readable report: the paper's static tables for
/// context, then every measured table and figure from this grid.
pub fn render_report(
    config: &SweepConfig,
    suites: &[SuiteResult],
    layout_rows: &[LayoutRow],
    failed: &[String],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Branch-reordering reproduction sweep");
    let _ = writeln!(out, "grid: {}", config.descriptor());
    let _ = writeln!(
        out,
        "regenerate: cargo run --release --bin brc -- sweep (see EXPERIMENTS.md)"
    );
    let _ = writeln!(out);
    out.push_str(&render_failed(failed));
    for section in [tables::table1(), tables::table2(), tables::table3()] {
        out.push_str(&section);
        out.push('\n');
    }
    out.push_str(&tables::table4(suites));
    out.push('\n');
    let t = timing_suite(suites);
    for section in [tables::table5(t), tables::table6(t), tables::table7(t)] {
        out.push_str(&section);
        out.push('\n');
    }
    out.push_str(&tables::table8(suites));
    out.push('\n');
    out.push_str(&tables::advisor(suites));
    out.push('\n');
    // The Set IV column study: deployed dispatch structures and the
    // expected-cost comparison against Set III's Theorem 3 chains.
    let iv = tables::set_iv(suites);
    if !iv.is_empty() {
        out.push_str(&iv);
        out.push('\n');
    }
    // The layout dimension: does ext-TSP block layout compose with
    // branch reordering, or give back what reordering won?
    let interaction = render_interaction(config, layout_rows);
    if !interaction.is_empty() {
        out.push_str(&interaction);
        out.push('\n');
    }
    for s in suites {
        out.push_str(&tables::figures(s));
        out.push('\n');
    }
    out
}

/// `layout.csv`: one row per seed-0 (layout, set, workload) cell, the
/// raw data behind the interaction table.
pub fn render_layout_csv(rows: &[LayoutRow]) -> String {
    let mut out = String::from("layout,set,program,taken_pct,insts_pct,cycles_pct\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.4},{:.4}",
            r.layout, r.set, r.workload, r.taken_pct, r.insts_pct, r.cycles_pct
        );
    }
    out
}

/// The layout × reordering interaction study: per (layout, set), the
/// mean headline percentages over surviving workloads, then a verdict
/// per set comparing each alternative layout against the first
/// configured one. "compose" means the alternative removed additional
/// dynamic taken branches on top of what reordering already removed;
/// "cannibalize" means it gave some back.
pub fn render_interaction(config: &SweepConfig, rows: &[LayoutRow]) -> String {
    if rows.is_empty() || config.layouts.len() < 2 {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "Layout x reordering interaction (seed 0)");
    let _ = writeln!(
        out,
        "mean % change vs the unreordered original, over surviving workloads"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<4} {:>3} {:>10} {:>10} {:>10}",
        "layout", "set", "n", "taken%", "insts%", "cycles%"
    );
    // (layout, set) means, in the configured grid order.
    let mut means: Vec<(&str, &str, f64)> = Vec::new();
    for layout in &config.layouts {
        for set in &config.sets {
            let cell: Vec<&LayoutRow> = rows
                .iter()
                .filter(|r| r.layout == layout.name() && r.set == set.name)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let n = cell.len() as f64;
            let taken = cell.iter().map(|r| r.taken_pct).sum::<f64>() / n;
            let insts = cell.iter().map(|r| r.insts_pct).sum::<f64>() / n;
            let cycles = cell.iter().map(|r| r.cycles_pct).sum::<f64>() / n;
            let _ = writeln!(
                out,
                "{:<8} {:<4} {:>3} {:>10.4} {:>10.4} {:>10.4}",
                layout.name(),
                set.name,
                cell.len(),
                taken,
                insts,
                cycles
            );
            means.push((layout.name(), set.name, taken));
        }
    }
    let base_layout = config.layouts[0].name();
    for layout in &config.layouts[1..] {
        for set in &config.sets {
            let base = means
                .iter()
                .find(|(l, s, _)| *l == base_layout && *s == set.name);
            let alt = means
                .iter()
                .find(|(l, s, _)| *l == layout.name() && *s == set.name);
            let (Some((_, _, base)), Some((_, _, alt))) = (base, alt) else {
                continue;
            };
            let delta = alt - base;
            let verdict = if delta < 0.0 {
                "compose"
            } else if delta > 0.0 {
                "cannibalize"
            } else {
                "neutral"
            };
            let _ = writeln!(
                out,
                "verdict set {}: {} vs {} taken% delta {:+.4} -> {}",
                set.name,
                layout.name(),
                base_layout,
                delta,
                verdict
            );
        }
    }
    out
}

/// `stability.csv`: the headline percentages per input seed, for eyeing
/// how much of the result is input-generator luck.
pub fn render_stability(rows: &[StabilityRow]) -> String {
    let mut out = String::from("set,program,seed,insts_pct,branches_pct\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.4}",
            r.set, r.workload, r.seed, r.insts_pct, r.branches_pct
        );
    }
    out
}

/// Write every result file under [`SweepConfig::out_dir`] and return the
/// paths, in a fixed order.
///
/// # Errors
///
/// Returns the first I/O error encountered.
pub fn write_all(
    config: &SweepConfig,
    suites: &[SuiteResult],
    stability: &[StabilityRow],
    layout_rows: &[LayoutRow],
    failed: &[String],
) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(&config.out_dir)?;
    let t = timing_suite(suites);
    let files: Vec<(&str, String)> = vec![
        (
            "report.txt",
            render_report(config, suites, layout_rows, failed),
        ),
        ("table4.csv", csv::table4(suites)),
        ("table5.csv", csv::table5(t)),
        ("table6.csv", csv::table6(t)),
        ("table7.csv", csv::table7(t)),
        ("table8.csv", csv::table8(suites)),
        ("figures.csv", csv::figures(suites)),
        ("stability.csv", render_stability(stability)),
        ("layout.csv", render_layout_csv(layout_rows)),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (name, text) in files {
        let path = config.out_dir.join(name);
        fs::write(&path, text)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_have_no_failed_section() {
        assert_eq!(render_failed(&[]), "");
    }

    #[test]
    fn failed_section_lists_every_cell() {
        let failed = vec![
            "I/wc/seed0: worker panicked: boom".to_string(),
            "II/grep/seed1: worker panicked: bang".to_string(),
        ];
        let section = render_failed(&failed);
        assert!(section.starts_with("FAILED cells (2):\n"), "{section}");
        for f in &failed {
            assert!(section.contains(f.as_str()), "{section}");
        }
    }
}
