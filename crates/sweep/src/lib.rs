//! # br-sweep
//!
//! The parallel paper-scale reproduction engine: one invocation fans the
//! whole experiment grid — workload × switch-translation heuristic set ×
//! input seed — across CPU cores and regenerates every results table of
//! the paper's evaluation (Tables 4–8 plus the sequence-length figures)
//! into versioned files under `results/`.
//!
//! Three properties make the engine worth having over a `for` loop
//! around [`br_harness::run_suite`]:
//!
//! * **Parallel scheduling.** Grid cells are independent, so a
//!   dependency-free atomic-cursor scheduler ([`scheduler::parallel_map`])
//!   keeps every core busy. Results are delivered by grid index, so the
//!   report — and every file written — is **byte-identical regardless of
//!   thread count**.
//! * **Content-addressed caching.** The expensive stages (the
//!   training-and-reordering pipeline and the measurement runs) are
//!   cached on disk keyed by a hash of the printed module IR, the stage
//!   options, and the input bytes ([`cache::ArtifactCache`]). A re-run
//!   after editing only documentation is almost free; a re-run after
//!   touching the optimizer recomputes exactly the cells whose inputs
//!   changed. Reorder artifacts carry the proof certificates the
//!   certifying pipeline emitted, and a cache hit is trusted only after
//!   every certificate passes the independent checker
//!   (`br_analysis::cert::check`) — a tampered artifact silently demotes
//!   to a recomputation.
//! * **Seed replication.** `--seeds K` re-runs the grid under K
//!   perturbed input seeds and reports the spread of the headline
//!   numbers (`stability.csv`), separating the transformation's effect
//!   from input-generator luck.
//!
//! ```no_run
//! use br_sweep::{run_sweep, SweepConfig};
//!
//! let mut config = SweepConfig::smoke();
//! config.out_dir = std::env::temp_dir().join("sweep-results");
//! config.cache_dir = Some(std::env::temp_dir().join("sweep-cache"));
//! let outcome = run_sweep(&config).expect("sweep succeeds");
//! println!(
//!     "{} cells in {:?}; {} cache hits; wrote {} files",
//!     outcome.cells,
//!     outcome.elapsed,
//!     outcome.cache_hits,
//!     outcome.files.len(),
//! );
//! ```

pub mod artifact;
pub mod cache;
pub mod report;
pub mod scheduler;

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use br_harness::{MeasuredRun, ProgramResult, SuiteResult};
use br_ir::print_module;
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, LayoutMode, ReorderOptions};
use br_vm::{pct_change, run, PredictorConfig, Scheme, TimeModel, VmOptions};
use br_workloads::{InputSpec, Workload};

use cache::{fnv1a, ArtifactCache, FORMAT_VERSION};

/// Configuration for one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Heuristic sets to sweep (columns of Table 4/8).
    pub sets: Vec<HeuristicSet>,
    /// Block-layout passes to sweep. The first entry fills the paper
    /// tables and `stability.csv`; every entry contributes to the
    /// layout-interaction study (`layout.csv` and the report's
    /// interaction table), which quantifies whether branch reordering
    /// and profile-guided layout compose or cannibalize.
    pub layouts: Vec<LayoutMode>,
    /// Workload names to run; empty means all 17.
    pub workloads: Vec<String>,
    /// Input-seed replications; seed 0 is the canonical paper grid,
    /// further seeds perturb the input generators.
    pub seeds: u32,
    /// Worker threads; 0 picks the machine's available parallelism.
    pub threads: usize,
    /// Bytes of training input per workload.
    pub train_size: usize,
    /// Bytes of test input per workload.
    pub test_size: usize,
    /// Use the exhaustive ordering search instead of the greedy one.
    pub exhaustive: bool,
    /// Directory the result files are written into.
    pub out_dir: PathBuf,
    /// Artifact cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl SweepConfig {
    /// The full paper grid: all sets, all workloads, paper input sizes.
    pub fn full() -> SweepConfig {
        SweepConfig {
            sets: HeuristicSet::ALL.to_vec(),
            layouts: vec![LayoutMode::Greedy, LayoutMode::ExtTsp],
            workloads: Vec::new(),
            seeds: 1,
            threads: 0,
            train_size: 12 * 1024,
            test_size: 16 * 1024,
            exhaustive: false,
            out_dir: PathBuf::from("results"),
            cache_dir: Some(PathBuf::from("target/sweep-cache")),
        }
    }

    /// The full grid at reduced input sizes, for quick local runs.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            train_size: 3 * 1024,
            test_size: 4 * 1024,
            ..SweepConfig::full()
        }
    }

    /// A tiny grid for CI smoke tests: three branch-heavy workloads,
    /// three heuristic sets (including Set IV, so the dispatch-synthesis
    /// path and its certificates are exercised), quick input sizes, two
    /// threads.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            sets: vec![
                HeuristicSet::SET_I,
                HeuristicSet::SET_II,
                HeuristicSet::SET_IV,
            ],
            workloads: vec!["wc".into(), "cb".into(), "grep".into()],
            threads: 2,
            ..SweepConfig::quick()
        }
    }

    /// A stable one-line description of the grid, embedded in the report
    /// header (never includes thread count or timings, which must not
    /// influence the output bytes).
    pub fn descriptor(&self) -> String {
        let workloads = if self.workloads.is_empty() {
            "all".to_string()
        } else {
            self.workloads.join(",")
        };
        let sets: Vec<&str> = self.sets.iter().map(|s| s.name).collect();
        let layouts: Vec<&str> = self.layouts.iter().map(|l| l.name()).collect();
        format!(
            "sets={} layouts={} workloads={} seeds={} train={} test={} search={}",
            sets.join(","),
            layouts.join(","),
            workloads,
            self.seeds,
            self.train_size,
            self.test_size,
            if self.exhaustive {
                "exhaustive"
            } else {
                "greedy"
            },
        )
    }
}

/// A sweep failure: configuration, pipeline, or I/O.
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Human-readable description, prefixed with the cell it came from.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SweepError {}

/// One measured run together with the static size of the module that
/// produced it (cached as a single artifact so a warm sweep never needs
/// to re-parse the module).
#[derive(Clone, Debug)]
pub struct MeasuredCell {
    /// The measured run.
    pub run: MeasuredRun,
    /// Static instruction count of the measured module.
    pub static_size: usize,
}

/// Stage timings and cache outcomes for one grid cell — diagnostics
/// only, reported on stderr and never written into result files.
#[derive(Clone, Debug)]
pub struct CellMetrics {
    /// Heuristic set name.
    pub set: &'static str,
    /// Layout mode name.
    pub layout: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Input seed replication index.
    pub seed: u32,
    /// Wall-clock time of the training + reordering stage.
    pub reorder_time: Duration,
    /// Combined wall-clock time of both measurement runs.
    pub measure_time: Duration,
    /// Whether the reorder stage was replayed from the cache.
    pub reorder_cached: bool,
    /// How many of the two measurement runs were replayed.
    pub measures_cached: u32,
}

/// Per-seed headline numbers for `stability.csv`.
#[derive(Clone, Debug)]
pub struct StabilityRow {
    /// Heuristic set name.
    pub set: &'static str,
    /// Workload name.
    pub workload: String,
    /// Input seed replication index.
    pub seed: u32,
    /// `%` change in dynamic instructions at this seed.
    pub insts_pct: f64,
    /// `%` change in conditional branches at this seed.
    pub branches_pct: f64,
}

/// One cell of the reordering × layout interaction study (`layout.csv`),
/// seed 0 only: how the reordered module compares to the original under
/// each layout mode, so adjacent rows isolate what layout adds on top of
/// reordering.
#[derive(Clone, Debug)]
pub struct LayoutRow {
    /// Layout mode name.
    pub layout: &'static str,
    /// Heuristic set name.
    pub set: &'static str,
    /// Workload name.
    pub workload: String,
    /// `%` change in dynamic taken branches (the layout headline).
    pub taken_pct: f64,
    /// `%` change in dynamic instructions.
    pub insts_pct: f64,
    /// `%` change in modelled Ultra-SPARC cycles (Table 7's model).
    pub cycles_pct: f64,
}

/// Compute a [`LayoutRow`] from one measured program under one
/// (set, layout) cell.
fn layout_row(layout: LayoutMode, set: HeuristicSet, p: &ProgramResult) -> LayoutRow {
    let model = TimeModel::ultra_sparc();
    let cfg = PredictorConfig::ultra_sparc();
    let base_core = model.core_cycles(&p.original.stats, p.original.mispredictions(cfg));
    let base = model.total_cycles(&p.original.stats, p.original.mispredictions(cfg), base_core);
    let new = model.total_cycles(
        &p.reordered.stats,
        p.reordered.mispredictions(cfg),
        base_core,
    );
    LayoutRow {
        layout: layout.name(),
        set: set.name,
        workload: p.name.clone(),
        taken_pct: pct_change(
            p.reordered.stats.taken_branches,
            p.original.stats.taken_branches,
        ),
        insts_pct: p.insts_pct(),
        cycles_pct: pct_change(new, base),
    }
}

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Seed-0 suite results, one per heuristic set, in config order.
    /// A suite whose every cell panicked is dropped (see [`SweepOutcome::failed`]).
    pub suites: Vec<SuiteResult>,
    /// Per-seed headline spread (all seeds, including 0), first
    /// configured layout only.
    pub stability: Vec<StabilityRow>,
    /// The seed-0 reordering × layout interaction rows, in grid order.
    pub layout_rows: Vec<LayoutRow>,
    /// Result files written, in a fixed order.
    pub files: Vec<PathBuf>,
    /// Per-cell stage metrics, in grid order.
    pub metrics: Vec<CellMetrics>,
    /// Artifact-cache hits across the whole run.
    pub cache_hits: u64,
    /// Artifact-cache misses across the whole run.
    pub cache_misses: u64,
    /// Grid cells executed.
    pub cells: usize,
    /// Cells whose worker panicked, labelled
    /// `{set}/{layout}/{workload}/seed{N}: worker panicked: {message}`,
    /// in grid order. A panic is isolated
    /// to its cell: the rest of the grid completes, the failed cells are
    /// listed in `report.txt`, and the tables aggregate only the
    /// surviving cells.
    pub failed: Vec<String>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

/// The paper's full predictor sweep (Table 6): (0,1) and (0,2) at every
/// table size.
fn predictor_sweep() -> Vec<PredictorConfig> {
    let mut predictors = PredictorConfig::sweep(Scheme::OneBit);
    predictors.extend(PredictorConfig::sweep(Scheme::TwoBit));
    predictors
}

/// Input spec for replication `seed`: seed 0 is the workload's canonical
/// spec, others shift the generator seed by a fixed odd stride.
fn replicated(spec: InputSpec, seed: u32) -> InputSpec {
    InputSpec::new(spec.kind, spec.seed + 7919 * u64::from(seed))
}

struct Cell {
    set: HeuristicSet,
    layout: LayoutMode,
    workload: Workload,
    seed: u32,
}

/// Whether every certificate in a restored reorder artifact passes the
/// independent checker with its recorded content address. A cached
/// artifact is trusted only under this predicate.
fn certificates_hold(report: &br_reorder::ReorderReport) -> bool {
    let Some(summary) = &report.validation else {
        return false;
    };
    summary
        .certificates
        .iter()
        .all(|c| br_analysis::check(&c.text).is_ok_and(|checked| checked.sig == c.sig))
}

struct CellOutput {
    program: ProgramResult,
    metrics: CellMetrics,
}

/// Run one grid cell: compile, train + reorder (cached), measure
/// original and reordered (cached), and package a [`ProgramResult`].
fn run_cell(
    config: &SweepConfig,
    cache: &ArtifactCache,
    cell: &Cell,
) -> Result<CellOutput, SweepError> {
    let label = format!(
        "{}/{}/{}/seed{}",
        cell.set.name,
        cell.layout.name(),
        cell.workload.name,
        cell.seed
    );
    let err = |message: String| SweepError {
        message: format!("{label}: {message}"),
    };

    let mut module = compile(cell.workload.source, &Options::with_heuristics(cell.set))
        .map_err(|e| err(format!("compile error: {e}")))?;
    br_opt::optimize(&mut module);
    let module_text = print_module(&module);

    let train = replicated(cell.workload.training, cell.seed).generate(config.train_size);
    let test = replicated(cell.workload.test, cell.seed).generate(config.test_size);

    // Stage 1: training + reordering, cached on (module, input, search).
    // The pipeline runs in `certify` mode, so the artifact carries one
    // proof certificate per committed reordering; a cache hit replays
    // the artifact only after every certificate passes the independent
    // checker — a corrupted or forged artifact is demoted to a miss and
    // the stage recomputes.
    let search = if config.exhaustive {
        "exhaustive"
    } else {
        "greedy"
    };
    // Sets III and IV compile to identical module text (Set IV differs
    // only in the reorderer's structure planning), so the dispatch mode
    // must be part of the key or their cells would collide.
    let dispatch = if cell.set.opt_tree {
        "opttree"
    } else {
        "chain"
    };
    let reorder_key = fnv1a(&[
        b"reorder",
        FORMAT_VERSION.as_bytes(),
        module_text.as_bytes(),
        &train,
        search.as_bytes(),
        dispatch.as_bytes(),
        cell.layout.name().as_bytes(),
    ]);
    let reorder_start = Instant::now();
    let mut reorder_cached = true;
    let cached = cache.get(reorder_key).and_then(|text| {
        let parsed = artifact::read_reorder(&text).filter(certificates_hold);
        if parsed.is_none() {
            cache.demote_hit();
        }
        parsed
    });
    let report = match cached {
        Some(report) => report,
        None => {
            reorder_cached = false;
            let opts = ReorderOptions {
                exhaustive: config.exhaustive,
                certify: true,
                opt_tree: cell.set.opt_tree,
                layout: cell.layout,
                ..ReorderOptions::default()
            };
            let report = reorder_module(&module, &train, &opts)
                .map_err(|e| err(format!("training run trapped: {e}")))?;
            match &report.validation {
                Some(v) if v.is_clean() => {}
                Some(v) => {
                    return Err(err(format!(
                        "reordering failed certification: {}",
                        v.failures[0]
                    )))
                }
                None => return Err(err("pipeline returned no validation summary".to_string())),
            }
            cache.put(reorder_key, &artifact::write_reorder(&report));
            report
        }
    };
    let reorder_time = reorder_start.elapsed();
    let reordered_text = print_module(&report.module);

    // Stage 2: measurement, cached on (module, input, vm options). The
    // original module's artifact is shared by every seed that generates
    // the same test input, and by every future sweep over this module.
    let vm = VmOptions {
        predictors: predictor_sweep(),
        ..VmOptions::default()
    };
    let vm_desc = {
        let preds: Vec<String> = vm.predictors.iter().map(artifact::predictor_str).collect();
        format!(
            "ijump={} preds=[{}]",
            vm.indirect_jump_insts,
            preds.join(",")
        )
    };
    let mut measures_cached = 0u32;
    let measure_start = Instant::now();
    let mut measure = |m: &br_ir::Module, text: &str| -> Result<MeasuredCell, SweepError> {
        let key = fnv1a(&[
            b"measure",
            FORMAT_VERSION.as_bytes(),
            text.as_bytes(),
            &test,
            vm_desc.as_bytes(),
        ]);
        let cached = cache.get(key).and_then(|text| {
            let parsed = artifact::read_measure(&text);
            if parsed.is_none() {
                cache.demote_hit();
            }
            parsed
        });
        if let Some(cell) = cached {
            measures_cached += 1;
            return Ok(cell);
        }
        let out = run(m, &test, &vm).map_err(|e| err(format!("test run trapped: {e}")))?;
        let cell = MeasuredCell {
            run: MeasuredRun {
                exit: out.exit,
                output: out.output,
                stats: out.stats,
                predictors: out.predictor_results,
            },
            static_size: m.static_size(),
        };
        cache.put(key, &artifact::write_measure(&cell));
        Ok(cell)
    };
    let original = measure(&module, &module_text)?;
    let reordered = measure(&report.module, &reordered_text)?;
    let measure_time = measure_start.elapsed();

    if original.run.exit != reordered.run.exit || original.run.output != reordered.run.output {
        return Err(err("reordering changed observable behaviour".to_string()));
    }

    Ok(CellOutput {
        metrics: CellMetrics {
            set: cell.set.name,
            layout: cell.layout.name(),
            workload: cell.workload.name,
            seed: cell.seed,
            reorder_time,
            measure_time,
            reorder_cached,
            measures_cached,
        },
        program: ProgramResult {
            name: cell.workload.name.to_string(),
            original_static: original.static_size,
            reordered_static: reordered.static_size,
            original: original.run,
            reordered: reordered.run,
            report,
        },
    })
}

/// Resolve the configured workload names against the registry.
fn selected_workloads(config: &SweepConfig) -> Result<Vec<Workload>, SweepError> {
    if config.workloads.is_empty() {
        return Ok(br_workloads::all());
    }
    config
        .workloads
        .iter()
        .map(|name| {
            br_workloads::by_name(name).ok_or_else(|| SweepError {
                message: format!("unknown workload `{name}`"),
            })
        })
        .collect()
}

/// Run the whole sweep: build the grid, fan it across workers, assemble
/// the per-set suites, and write every result file under
/// [`SweepConfig::out_dir`].
///
/// Result files depend only on the grid configuration — never on thread
/// count, cache state, or timing — so two runs of the same config
/// produce byte-identical files.
///
/// A cell whose worker *panics* does not abort the sweep: the panic is
/// caught, the cell is recorded in [`SweepOutcome::failed`] and listed
/// in `report.txt`, and the rest of the grid keeps running.
///
/// # Errors
///
/// Fails on an unknown workload name, the first cell whose pipeline
/// traps, an I/O error writing the results, or a grid where every
/// seed-0 cell panicked.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepOutcome, SweepError> {
    let start = Instant::now();
    let workloads = selected_workloads(config)?;
    if config.sets.is_empty() || config.layouts.is_empty() || config.seeds == 0 {
        return Err(SweepError {
            message: "empty grid: need at least one heuristic set, one layout mode, and one seed"
                .to_string(),
        });
    }
    let cache = match &config.cache_dir {
        Some(dir) => ArtifactCache::at(dir).map_err(|e| SweepError {
            message: format!("cannot create cache dir {}: {e}", dir.display()),
        })?,
        None => ArtifactCache::disabled(),
    };

    // Grid order is the report order: seed-major, then layout, then set,
    // then the paper's workload order. parallel_map returns results by
    // index, so everything downstream is deterministic.
    let mut grid = Vec::new();
    for seed in 0..config.seeds {
        for &layout in &config.layouts {
            for &set in &config.sets {
                for &workload in &workloads {
                    grid.push(Cell {
                        set,
                        layout,
                        workload,
                        seed,
                    });
                }
            }
        }
    }
    let threads = if config.threads == 0 {
        scheduler::default_threads()
    } else {
        config.threads
    };
    // Panic isolation: a cell whose worker panics becomes a failed-cell
    // record instead of tearing the whole grid down. Pipeline *errors*
    // (trapping runs, behaviour divergence) still abort the sweep — they
    // indicate a broken configuration, not one poisoned input.
    let results =
        scheduler::parallel_map_isolated(&grid, threads, |_, cell| run_cell(config, &cache, cell));

    let mut programs: Vec<Option<ProgramResult>> = Vec::with_capacity(results.len());
    let mut metrics = Vec::with_capacity(results.len());
    let mut failed = Vec::new();
    for (r, cell) in results.into_iter().zip(&grid) {
        match r {
            Ok(Ok(out)) => {
                metrics.push(out.metrics);
                programs.push(Some(out.program));
            }
            Ok(Err(e)) => return Err(e),
            Err(panic_msg) => {
                failed.push(format!(
                    "{}/{}/{}/seed{}: worker panicked: {panic_msg}",
                    cell.set.name,
                    cell.layout.name(),
                    cell.workload.name,
                    cell.seed
                ));
                programs.push(None);
            }
        }
    }

    // Seed 0 under the first configured layout fills the paper tables,
    // and every (seed, first-layout) cell contributes a stability row —
    // so those outputs keep their pre-layout-dimension meaning. Every
    // seed-0 (layout, set) cell additionally contributes an interaction
    // row. `programs` is in grid order, so chunks of `workloads.len()`
    // are (seed, layout, set) suites; failed cells leave gaps that are
    // simply absent from their suite.
    let per_suite = workloads.len();
    let suites_per_seed = config.layouts.len() * config.sets.len();
    let mut suites = Vec::new();
    let mut stability = Vec::new();
    let mut layout_rows = Vec::new();
    for (chunk_idx, chunk) in programs.chunks(per_suite).enumerate() {
        let seed = (chunk_idx / suites_per_seed) as u32;
        let layout = config.layouts[(chunk_idx % suites_per_seed) / config.sets.len()];
        let set = config.sets[chunk_idx % config.sets.len()];
        let survivors: Vec<ProgramResult> = chunk.iter().flatten().cloned().collect();
        if layout == config.layouts[0] {
            for p in &survivors {
                stability.push(StabilityRow {
                    set: set.name,
                    workload: p.name.clone(),
                    seed,
                    insts_pct: p.insts_pct(),
                    branches_pct: p.branches_pct(),
                });
            }
        }
        if seed == 0 {
            for p in &survivors {
                layout_rows.push(layout_row(layout, set, p));
            }
            if layout == config.layouts[0] && !survivors.is_empty() {
                suites.push(SuiteResult {
                    heuristics: set,
                    programs: survivors,
                });
            }
        }
    }
    if suites.is_empty() {
        return Err(SweepError {
            message: format!(
                "every seed-0 cell failed; first failure: {}",
                failed.first().map_or("<none>", |s| s.as_str())
            ),
        });
    }

    let files =
        report::write_all(config, &suites, &stability, &layout_rows, &failed).map_err(|e| {
            SweepError {
                message: format!("writing results: {e}"),
            }
        })?;

    Ok(SweepOutcome {
        suites,
        stability,
        layout_rows,
        files,
        metrics,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cells: grid.len(),
        failed,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(tag: &str, cache: bool) -> SweepConfig {
        let base = std::env::temp_dir().join(format!("br-sweep-{tag}-{}", std::process::id()));
        SweepConfig {
            sets: vec![HeuristicSet::SET_I],
            layouts: vec![LayoutMode::Greedy],
            workloads: vec!["wc".into()],
            seeds: 2,
            threads: 2,
            train_size: 512,
            test_size: 768,
            exhaustive: false,
            out_dir: base.join("out"),
            cache_dir: cache.then(|| base.join("cache")),
        }
    }

    fn cleanup(config: &SweepConfig) {
        let _ = std::fs::remove_dir_all(config.out_dir.parent().unwrap());
    }

    #[test]
    fn layout_dimension_expands_the_grid_and_fills_interaction_rows() {
        let mut config = test_config("layout-dim", false);
        config.layouts = vec![LayoutMode::Greedy, LayoutMode::ExtTsp];
        config.seeds = 1;
        let outcome = run_sweep(&config).expect("sweep");
        assert_eq!(outcome.cells, 2, "1 seed x 2 layouts x 1 set x 1 workload");
        // One interaction row per seed-0 cell, grid order: greedy first.
        assert_eq!(outcome.layout_rows.len(), 2);
        assert_eq!(outcome.layout_rows[0].layout, "greedy");
        assert_eq!(outcome.layout_rows[1].layout, "exttsp");
        // Tables and stability keep their pre-layout meaning: first
        // configured layout only.
        assert_eq!(outcome.suites.len(), 1);
        assert_eq!(outcome.stability.len(), 1);
        let report =
            std::fs::read_to_string(config.out_dir.join("report.txt")).expect("report.txt");
        assert!(
            report.contains("Layout x reordering interaction"),
            "{report}"
        );
        assert!(report.contains("verdict set I:"), "{report}");
        let csv = std::fs::read_to_string(config.out_dir.join("layout.csv")).expect("layout.csv");
        assert!(
            csv.starts_with("layout,set,program,taken_pct,insts_pct,cycles_pct\n"),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 3, "{csv}");
        cleanup(&config);
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut config = test_config("unknown", false);
        config.workloads = vec!["no-such-program".into()];
        let err = run_sweep(&config).unwrap_err();
        assert!(err.message.contains("no-such-program"), "{err}");
        cleanup(&config);
    }

    #[test]
    fn sweep_is_deterministic_and_cache_replays() {
        let config = test_config("det", true);
        let first = run_sweep(&config).expect("first run");
        assert_eq!(first.cells, 2);
        assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
        let snapshot: Vec<(PathBuf, Vec<u8>)> = first
            .files
            .iter()
            .map(|f| (f.clone(), std::fs::read(f).expect("result file")))
            .collect();

        // Second run: same bytes, now served from the cache.
        let second = run_sweep(&config).expect("second run");
        assert!(second.cache_hits > 0, "warm cache must hit");
        for (path, bytes) in &snapshot {
            assert_eq!(
                &std::fs::read(path).expect("result file"),
                bytes,
                "{path:?}"
            );
        }

        // Single-threaded, cache off: still the same bytes.
        let mut uncached = config.clone();
        uncached.threads = 1;
        uncached.cache_dir = None;
        run_sweep(&uncached).expect("uncached run");
        for (path, bytes) in &snapshot {
            assert_eq!(
                &std::fs::read(path).expect("result file"),
                bytes,
                "{path:?}"
            );
        }
        cleanup(&config);
    }

    #[test]
    fn tampered_cached_certificates_are_recomputed() {
        let config = test_config("cert-tamper", true);
        let first = run_sweep(&config).expect("first run");
        let snapshot: Vec<(PathBuf, Vec<u8>)> = first
            .files
            .iter()
            .map(|f| (f.clone(), std::fs::read(f).expect("result file")))
            .collect();

        // Corrupt every cached reorder artifact inside a certificate
        // body (same line count, so the artifact still parses — only the
        // independent checker can catch it).
        let cache_dir = config.cache_dir.clone().expect("cache configured");
        let mut tampered = 0u64;
        for entry in std::fs::read_dir(&cache_dir).expect("cache dir") {
            let path = entry.expect("dir entry").path();
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if !text.starts_with("reorder v") || !text.contains("\ncert ") {
                continue;
            }
            let forged = text.replacen("brcert v1", "brcert v9", 1);
            assert_ne!(forged, text, "reorder artifact must embed a certificate");
            std::fs::write(&path, forged).expect("tamper write");
            tampered += 1;
        }
        assert!(tampered > 0, "no reorder artifacts found to tamper");

        // The warm run must notice (demoted hits → recomputation) and
        // still produce byte-identical results.
        let second = run_sweep(&config).expect("second run");
        assert!(
            second.cache_misses >= tampered,
            "tampered artifacts must be recomputed, not replayed \
             ({} misses, {tampered} tampered)",
            second.cache_misses
        );
        for (path, bytes) in &snapshot {
            assert_eq!(
                &std::fs::read(path).expect("result file"),
                bytes,
                "{path:?}"
            );
        }
        cleanup(&config);
    }
}
