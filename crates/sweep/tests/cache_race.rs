//! Concurrent cache sharing: two [`ArtifactCache`] handles — as two
//! sweep processes or the serve daemon and a sweep would hold — race on
//! one directory. The write-then-rename discipline must guarantee that
//! a reader never observes a torn artifact, and that the loser of a
//! rename race still finds a complete entry under the key.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

use br_sweep::cache::ArtifactCache;

/// An artifact body large enough that a torn write would be observable:
/// a self-describing header plus a page-crossing payload whose content
/// is derived from the key.
fn artifact(key: u64) -> String {
    let line = format!("artifact {key:016x} ");
    let mut text = format!("begin {key:016x}\n");
    for i in 0..256 {
        text.push_str(&line);
        text.push_str(&i.to_string());
        text.push('\n');
    }
    text.push_str(&format!("end {key:016x}\n"));
    text
}

/// A read value must be exactly the complete artifact — any prefix,
/// suffix, or interleaving is a torn read.
fn assert_intact(key: u64, got: &str) {
    assert_eq!(
        got,
        artifact(key),
        "torn artifact read back for key {key:016x}"
    );
}

#[test]
fn two_handles_racing_on_one_directory_never_tear() {
    let dir = std::env::temp_dir().join(format!("br-sweep-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const KEYS: u64 = 32;
    const ROUNDS: u64 = 20;
    let reads = AtomicU64::new(0);
    let writers_live = AtomicUsize::new(2);
    let barrier = Barrier::new(4);
    std::thread::scope(|scope| {
        // Two writers with independent handles keep rewriting the same
        // small key set, so renames of the same destination collide.
        for _ in 0..2 {
            let dir = &dir;
            let barrier = &barrier;
            let writers_live = &writers_live;
            scope.spawn(move || {
                let cache = ArtifactCache::at(dir).expect("cache dir");
                barrier.wait();
                for round in 0..ROUNDS {
                    for key in 0..KEYS {
                        cache.put(key, &artifact(key));
                        // The rename-race loser must still read a
                        // complete entry written by *somebody*.
                        if round > 0 {
                            let got = cache.get(key).expect("key written every round");
                            assert_intact(key, &got);
                        }
                    }
                }
                writers_live.fetch_sub(1, Ordering::Release);
            });
        }
        // Two readers with their own handles poll the same keys for as
        // long as the writers keep racing (plus one final sweep, which
        // is guaranteed to find every key); every successful read must
        // be complete.
        for _ in 0..2 {
            let dir = &dir;
            let barrier = &barrier;
            let reads = &reads;
            let writers_live = &writers_live;
            scope.spawn(move || {
                let cache = ArtifactCache::at(dir).expect("cache dir");
                barrier.wait();
                let sweep = |reads: &AtomicU64| {
                    for key in 0..KEYS {
                        if let Some(got) = cache.get(key) {
                            assert_intact(key, &got);
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                while writers_live.load(Ordering::Acquire) > 0 {
                    sweep(reads);
                }
                sweep(reads);
            });
        }
    });
    assert!(
        reads.load(Ordering::Relaxed) >= KEYS,
        "the final reader sweep must find every key"
    );

    // After the dust settles every key holds one complete artifact and
    // no temporary files leak.
    let survivor = ArtifactCache::at(&dir).expect("cache dir");
    for key in 0..KEYS {
        assert_intact(key, &survivor.get(key).expect("entry survives"));
    }
    for entry in std::fs::read_dir(&dir).expect("cache dir listing") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            name.ends_with(".art"),
            "leaked temporary file in cache dir: {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
