//! A deeper look at one transformation: character-class dispatch.
//!
//! Builds the wc-like classifier the paper's introduction motivates,
//! shows the detected sequence, the profile, the selected ordering, and
//! the before/after IR of the hot function.
//!
//! ```sh
//! cargo run --example char_dispatch
//! ```

use branch_reorder::ir::print_function;
use branch_reorder::minic::{compile, HeuristicSet, Options};
use branch_reorder::reorder::profile::{detect_all, order_items, plan_ranges};
use branch_reorder::reorder::{reorder_module, ReorderOptions};
use branch_reorder::vm::{run, VmOptions};

const SOURCE: &str = r#"
int main() {
    int c; int vowels; int digits; int blanks; int caps; int rest;
    vowels = 0; digits = 0; blanks = 0; caps = 0; rest = 0;
    c = getchar();
    while (c != -1) {
        if (c == ' ' || c == '\t' || c == '\n') blanks += 1;
        else if (c >= '0' && c <= '9') digits += 1;
        else if (c >= 'A' && c <= 'Z') caps += 1;
        else if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') vowels += 1;
        else rest += 1;
        c = getchar();
    }
    putint(vowels); putint(digits); putint(blanks); putint(caps); putint(rest);
    return 0;
}
"#;

fn main() {
    let mut module =
        compile(SOURCE, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    branch_reorder::opt::optimize(&mut module);

    println!("=== detected sequences ===");
    let detections = detect_all(&module);
    for (fid, seq) in &detections {
        println!(
            "function {fid:?}, head {:?}, variable {:?}:",
            seq.head, seq.var
        );
        for (range, source, target) in plan_ranges(seq) {
            println!("   {range:?} -> {target} ({source:?})");
        }
    }

    let text = "Sphinx of black quartz judge my vow 1763 times\n".repeat(150);
    let train = text.as_bytes();
    let report = reorder_module(&module, train, &ReorderOptions::default()).expect("pipeline");
    println!("\n=== outcomes ===");
    for ((_, seq), record) in detections.iter().zip(&report.sequences) {
        println!("head {:?}: {:?}", seq.head, record.outcome);
        // Show what the profile said.
        let profile = branch_reorder::reorder::profile::SequenceProfile {
            counts: vec![0; plan_ranges(seq).len()],
        };
        let _ = order_items(seq, &profile); // shape check only
    }

    println!(
        "\n=== main before ===\n{}",
        print_function(&module.functions[0])
    );
    println!(
        "=== main after ===\n{}",
        print_function(&report.module.functions[0])
    );

    let base = run(&module, train, &VmOptions::default()).expect("runs");
    let new = run(&report.module, train, &VmOptions::default()).expect("runs");
    println!(
        "insts {} -> {} ({:+.2}%) on the training distribution",
        base.stats.insts,
        new.stats.insts,
        (new.stats.insts as f64 - base.stats.insts as f64) / base.stats.insts as f64 * 100.0
    );
    assert_eq!(base.output, new.output);
}
