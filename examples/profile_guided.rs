//! Train/test sensitivity: the same program reordered with a matching
//! and with a mismatched training profile (the paper's `hyphen`
//! observation — a profile from the wrong distribution can make the
//! reordered code slightly slower).
//!
//! ```sh
//! cargo run --example profile_guided
//! ```

use branch_reorder::minic::{compile, HeuristicSet, Options};
use branch_reorder::reorder::{reorder_module, ReorderOptions};
use branch_reorder::vm::{run, VmOptions};
use branch_reorder::workloads::{InputKind, InputSpec};

const SOURCE: &str = r#"
int main() {
    int c; int digits; int lowers; int uppers; int others;
    digits = 0; lowers = 0; uppers = 0; others = 0;
    c = getchar();
    while (c != -1) {
        if (c >= '0' && c <= '9') digits += 1;
        else if (c >= 'a' && c <= 'z') lowers += 1;
        else if (c >= 'A' && c <= 'Z') uppers += 1;
        else others += 1;
        c = getchar();
    }
    putint(digits); putint(lowers); putint(uppers); putint(others);
    return 0;
}
"#;

fn measure(module: &branch_reorder::ir::Module, input: &[u8]) -> u64 {
    run(module, input, &VmOptions::default())
        .expect("runs")
        .stats
        .insts
}

fn main() {
    let mut module =
        compile(SOURCE, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    branch_reorder::opt::optimize(&mut module);

    // The real workload: prose (lowercase letters dominate).
    let test = InputSpec::new(InputKind::Prose, 99).generate(24 * 1024);
    // A representative training input and a misleading one.
    let good_train = InputSpec::new(InputKind::Prose, 7).generate(12 * 1024);
    // A misleading training input: almost entirely digits.
    let bad_train: Vec<u8> = b"8601935274 420 77 5309\n".repeat(512);

    let baseline = measure(&module, &test);
    let good = reorder_module(&module, &good_train, &ReorderOptions::default()).expect("ok");
    let bad = reorder_module(&module, &bad_train, &ReorderOptions::default()).expect("ok");
    let good_insts = measure(&good.module, &test);
    let bad_insts = measure(&bad.module, &test);

    let pct = |v: u64| (v as f64 - baseline as f64) / baseline as f64 * 100.0;
    println!("baseline:                {baseline:>10} insts");
    println!(
        "matched-profile reorder: {good_insts:>10} insts ({:+.2}%)",
        pct(good_insts)
    );
    println!(
        "mismatched-profile:      {bad_insts:>10} insts ({:+.2}%)",
        pct(bad_insts)
    );
    println!(
        "\nA profile from the wrong input distribution reorders for the \
         wrong ordering; behaviour is still identical, but the speedup \
         shrinks or reverses (the paper saw this on `hyphen`)."
    );
    assert!(good_insts < baseline);
    assert!(bad_insts > good_insts);
}
