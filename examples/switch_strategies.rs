//! The paper's Table 2 in action: the same `switch` statement translated
//! under all three heuristic sets, and what reordering does to each.
//!
//! ```sh
//! cargo run --example switch_strategies
//! ```

use branch_reorder::harness::{run_program_experiment, ExperimentConfig};
use branch_reorder::minic::HeuristicSet;

/// A dense 8-case switch over a skewed value distribution: Set I turns
/// it into an indirect jump (no reorderable sequence), Set II into a
/// binary search (short reorderable leaves), Set III into a linear
/// search (one long reorderable sequence).
const SOURCE: &str = r#"
int counts[8];
int main() {
    int c; int i; int sum;
    c = getchar();
    while (c != -1) {
        switch (c / 16) {
            case 0: counts[0] += 1; break;
            case 1: counts[1] += 1; break;
            case 2: counts[2] += 1; break;
            case 3: counts[3] += 1; break;
            case 4: counts[4] += 1; break;
            case 5: counts[5] += 1; break;
            case 6: counts[6] += 1; break;
            case 7: counts[7] += 1; break;
        }
        c = getchar();
    }
    sum = 0;
    for (i = 0; i < 8; i += 1) sum += (i + 1) * counts[i];
    putint(sum);
    return 0;
}
"#;

fn main() {
    let text = "most characters are lowercase letters, bucket six!\n".repeat(250);
    let train = text.as_bytes();
    let text2 = "and the test distribution looks much the same here\n".repeat(250);
    let test = text2.as_bytes();

    println!(
        "{:<5} {:>12} {:>12} {:>9} {:>9}",
        "Set", "orig insts", "new insts", "insts%", "branches%"
    );
    for h in HeuristicSet::ALL {
        let config = ExperimentConfig::with_heuristics(h);
        let r = run_program_experiment("switch", SOURCE, train, test, &config)
            .expect("compiles and runs");
        println!(
            "{:<5} {:>12} {:>12} {:>8.2}% {:>8.2}%",
            h.name,
            r.original.stats.insts,
            r.reordered.stats.insts,
            r.insts_pct(),
            r.branches_pct()
        );
    }
    println!(
        "\nSet I keeps the indirect jump (nothing to reorder); Set III's \
         linear search exposes the whole switch to profile-guided \
         reordering — the paper's central observation about switch \
         translation heuristics."
    );
}
