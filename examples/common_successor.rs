//! The paper's Section 10 extension: reordering branches with a common
//! successor (its Figure 14) — short-circuit `&&`/`||` chains over
//! *different* variables, profiled with joint-outcome counters.
//!
//! ```sh
//! cargo run --example common_successor
//! ```

use branch_reorder::minic::{compile, Options};
use branch_reorder::reorder::pipeline::SequenceKind;
use branch_reorder::reorder::{reorder_module, ReorderOptions};
use branch_reorder::vm::{run, VmOptions};

/// Figure 14's shape: `if (a != 0 && f() == 1 && b == 2 || c == 3 && d == 4)`
/// minus the call (calls are side effects and end a sequence). The three
/// conditions compare three different variables; the last one is by far
/// the most likely to fail.
const SOURCE: &str = r#"
int main() {
    int c; int a; int b; int d; int taken;
    a = 0; b = 0; d = 0; taken = 0;
    c = getchar();
    while (c != -1) {
        a = (a + c) % 5;        // 0..4, rarely what we need
        b = (b + 3) % 7;        // cycles
        d = c % 101;            // almost never 100
        if (a == 1 && b == 2 && d == 100) taken += 1;
        c = getchar();
    }
    putint(taken);
    return 0;
}
"#;

fn main() {
    let mut module = compile(SOURCE, &Options::default()).expect("compiles");
    branch_reorder::opt::optimize(&mut module);

    let text: Vec<u8> = (0..20_000u32).map(|i| (i * 37 % 127) as u8).collect();
    let test: Vec<u8> = (0..24_000u32).map(|i| (i * 53 % 127) as u8).collect();

    let base = run(&module, &test, &VmOptions::default()).expect("runs");

    for (label, enabled) in [
        ("core transformation only", false),
        ("with Section 10 extension", true),
    ] {
        let opts = ReorderOptions {
            common_successor: enabled,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&module, &text, &opts).expect("pipeline");
        let new = run(&report.module, &test, &VmOptions::default()).expect("runs");
        assert_eq!(base.output, new.output, "behaviour must not change");
        let common = report
            .sequences
            .iter()
            .filter(|s| s.kind == SequenceKind::CommonSuccessor)
            .count();
        println!(
            "{label:28}: {:>9} insts ({:+.2}%), {} common-successor sequence(s)",
            new.stats.insts,
            (new.stats.insts as f64 - base.stats.insts as f64) / base.stats.insts as f64 * 100.0,
            common
        );
    }
    println!(
        "\nThe `d == 100` test almost always fails, so evaluating it first \
         short-circuits the whole conjunction — but only the joint-outcome \
         profile of Section 10 can see that."
    );
}
