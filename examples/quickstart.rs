//! Quickstart: compile a mini-C program, profile it, reorder its branch
//! sequences, and compare dynamic costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use branch_reorder::harness::{run_program_experiment, ExperimentConfig};
use branch_reorder::minic::HeuristicSet;

/// The paper's Figure 1: a read loop whose comparisons are written in
/// "natural" source order — blank, newline, EOF — even though ordinary
/// characters are by far the most common.
const SOURCE: &str = r#"
int main() {
    int c; int blanks; int lines; int others;
    blanks = 0; lines = 0; others = 0;
    c = getchar();
    while (c != -1) {
        if (c == ' ') blanks += 1;
        else if (c == '\n') lines += 1;
        else others += 1;
        c = getchar();
    }
    putint(blanks);
    putint(lines);
    putint(others);
    return 0;
}
"#;

fn main() {
    // Any text works; letters dominating is what makes reordering pay.
    let text = "the quick brown fox jumps over the lazy dog\n".repeat(200);
    let train = text.as_bytes();
    // A different test input, same flavour (the paper trains and tests
    // on different data).
    let text2 = "pack my box with five dozen liquor jugs again\n".repeat(220);
    let test = text2.as_bytes();

    let config = ExperimentConfig::with_heuristics(HeuristicSet::SET_I);
    let result = run_program_experiment("quickstart", SOURCE, train, test, &config)
        .expect("program compiles and runs");

    println!("output (unchanged by the transformation):");
    println!("{}", String::from_utf8_lossy(&result.original.output));
    println!(
        "dynamic instructions: {:>10} -> {:>10}  ({:+.2}%)",
        result.original.stats.insts,
        result.reordered.stats.insts,
        result.insts_pct()
    );
    println!(
        "conditional branches: {:>10} -> {:>10}  ({:+.2}%)",
        result.original.stats.cond_branches,
        result.reordered.stats.cond_branches,
        result.branches_pct()
    );
    println!(
        "static instructions:  {:>10} -> {:>10}  ({:+.2}%)",
        result.original_static,
        result.reordered_static,
        result.static_pct()
    );
    for s in &result.report.sequences {
        println!(
            "sequence at {:?}/{:?}: {} conditions, {:?}",
            s.func, s.head, s.conditions, s.outcome
        );
    }
    assert_eq!(result.original.output, result.reordered.output);
    assert!(result.insts_pct() < 0.0, "reordering should help here");
}
